//! Hermetic stand-in for the `rayon` crate.
//!
//! Provides the `par_iter().map(..).collect()` shape the sweep engine uses,
//! implemented with `std::thread::scope` and an atomic work-stealing cursor.
//! Results are always collected **in input order**, independent of thread
//! scheduling, so parallel execution is observably identical to serial
//! execution for pure per-item work — the property the sweep determinism
//! tests rely on.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The rayon-style prelude: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
    pub use crate::IntoParallelRefMutIterator;
}

/// Number of worker threads a parallel map will use for a large input.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Conversion of `&collection` into a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The element type iterated over.
    type Item: Sync + 'data;

    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Conversion of `&mut collection` into a mutable parallel iterator.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type iterated over.
    type Item: Send + 'data;

    /// Returns a parallel iterator over mutable references to the elements.
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

/// A mutably borrowing parallel iterator over a slice.
pub struct ParIterMut<'data, T: Send> {
    items: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Applies `f` to every element on the worker pool.
    ///
    /// The slice is statically partitioned into one contiguous span per
    /// worker — the right shape for the workspace's use (sorting same-sized
    /// chunks, where per-item cost is uniform).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.items.len();
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        let span = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for chunk in self.items.chunks_mut(span) {
                let f = &f;
                scope.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                });
            }
        });
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element through `f` on the worker pool.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'data, T: Sync, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map on the worker pool and collects results in input order.
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_ordered_vec(par_map_ordered(self.items, &self.f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelResults<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered_vec(results: Vec<R>) -> Self {
        results
    }
}

impl<T, E> FromParallelResults<Result<T, E>> for Result<Vec<T>, E> {
    /// Folds to the first error in input order.
    ///
    /// Unlike real rayon this does **not** short-circuit the in-flight work:
    /// every item is computed before the fold. An acceptable trade for this
    /// workspace, where batch errors are rare and batches are modest.
    fn from_ordered_vec(results: Vec<Result<T, E>>) -> Self {
        results.into_iter().collect()
    }
}

fn par_map_ordered<'data, T, R>(items: &'data [T], f: &(impl Fn(&'data T) -> R + Sync)) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker thread panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collects_results_to_first_error_in_input_order() {
        let input: Vec<i32> = vec![1, 2, 3];
        let ok: Result<Vec<i32>, String> = input.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap(), vec![2, 3, 4]);
        let err: Result<Vec<i32>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut items: Vec<Vec<u32>> = (0..37).map(|i| vec![i, 1000 - i]).collect();
        items.par_iter_mut().for_each(|chunk| chunk.sort_unstable());
        for (i, chunk) in items.iter().enumerate() {
            assert!(chunk.windows(2).all(|w| w[0] <= w[1]), "chunk {i}");
            assert_eq!(chunk.len(), 2);
        }
        let mut empty: Vec<u64> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x += 1);
        assert!(empty.is_empty());
    }
}
