//! Hermetic stand-in for the `criterion` crate.
//!
//! Implements the API shape the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box` — with a
//! plain wall-clock timer: a short warm-up followed by `sample_size` timed
//! samples, reporting the fastest sample (the least noisy point estimate a
//! simple harness can give). No statistics, plots or baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts (and ignores) criterion-style command-line options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), self.sample_size, f);
        self
    }

    /// Prints the closing summary (a no-op for this harness).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping the fastest of the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up pass (also primes caches the first sample would pay for).
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.best = Some(match self.best {
                Some(best) => best.min(elapsed),
                None => elapsed,
            });
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        best: None,
    };
    f(&mut bencher);
    match bencher.best {
        Some(best) => println!(
            "  {label}: {:.3} ms (best of {samples})",
            best.as_secs_f64() * 1e3
        ),
        None => println!("  {label}: no measurement"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().configure_from_args();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // one warm-up + three samples
        assert_eq!(runs, 4);
        c.final_summary();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
