//! Hermetic stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: range and tuple
//! strategies, `prop_map` / `prop_flat_map`, `collection::vec`, the
//! `proptest!` macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-case seed so failures are reproducible; there is no
//! shrinking — a failing case reports its inputs via the panic message of the
//! assertion that fired.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the generator for test case number `case`.
    pub fn deterministic(case: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(0xc0ff_ee00_dead_beef ^ case.wrapping_mul(0x9e37_79b9)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn next_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed; the test panics with this message.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy built by [`prop_oneof!`]: picks one of several alternatives
/// uniformly, then generates from it.
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`OneOf`].
pub fn boxed_strategy<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements specification: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self {
                start: range.start,
                end: range.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.start..self.size.end).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual proptest prelude.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        OneOf, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines deterministic property tests over strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rejected: u32 = 0;
            for __case in 0..(__config.cases as u64) {
                let mut __rng = $crate::TestRng::deterministic(__case);
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        ::std::assert!(
                            __rejected < 4 * __config.cases,
                            "too many prop_assume! rejections"
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::std::panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, y in 0u64..3, f in -1.0f32..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..4, 0u32..4).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 4);
        }

        #[test]
        fn flat_map_derives_dependent_values(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..8)
        })) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn explicit_config_is_used(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::deterministic(3);
        let mut b = TestRng::deterministic(3);
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
