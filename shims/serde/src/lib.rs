//! Hermetic stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so
//! `#[derive(Serialize, Deserialize)]` compiles without network access, and
//! defines the matching marker traits (blanket-implemented, since no code in
//! the workspace serialises through serde yet).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
