//! No-op stand-ins for serde's `Serialize` / `Deserialize` derive macros.
//!
//! The workspace builds hermetically (no crates.io access), and nothing in it
//! actually serialises data yet — the derives on config/report types exist so
//! downstream tooling can be added without touching every struct. These
//! macros therefore accept any item and emit nothing.

use proc_macro::TokenStream;

/// Accepts any derive input and generates no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts any derive input and generates no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
