//! Hermetic stand-in for the `rand` crate.
//!
//! Implements the small API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` — on top
//! of a SplitMix64 generator. Everything is deterministic given the seed,
//! which is all the synthetic-dataset generators require; statistical quality
//! beyond "well mixed" is not a goal.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `rng.gen()` surface).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges samplable by `rng.gen_range(..)`.
///
/// Parameterised over the element type (like the real rand crate) so type
/// inference flows from the expected output to the range literals.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the small spans used here and
                // keeps the generator deterministic and branch-free.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type (`let x: f64 = rng.gen();`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }

    /// Draws a uniform value from a half-open range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12) — but deterministic,
    /// well-mixed and dependency-free, which is what the seeded synthetic
    /// datasets need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self {
                // Pre-mix so consecutive seeds do not yield correlated
                // opening values.
                state: state ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
