//! Quickstart: simulate a GCN on a (scaled-down) Cora through GNNerator and
//! compare the feature-blocked dataflow against the conventional one.
//!
//! Run with `cargo run --release --example quickstart`.

use gnnerator::{DataflowConfig, GnneratorConfig, Simulator};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Synthesise a dataset with Cora's published statistics (Table II).
    //    Use `.spec()` without `.scaled(..)` for the full-size graph.
    let spec = DatasetKind::Cora.spec().scaled(0.25);
    println!("Dataset: {spec}");
    let dataset = spec.synthesize(42)?;

    // 2. Build the paper's GCN configuration: one hidden layer of width 16.
    let model = NetworkKind::Gcn.build_paper_config(dataset.features.dim(), 7)?;
    println!("Model:   {model}");

    // 3. Simulate on the Table IV GNNerator configuration with the
    //    feature-dimension-blocking dataflow (B = 64).
    let config = GnneratorConfig::paper_default();
    println!("Target:  {config}");
    let blocked = Simulator::new(config.clone())?.simulate(&model, &dataset)?;
    println!();
    println!("--- feature-blocked dataflow (B = 64) ---");
    println!("{blocked}");

    // 4. Compare with the conventional dataflow (the whole feature vector
    //    stays on-chip, so far fewer nodes fit per shard).
    let conventional = Simulator::with_dataflow(config, DataflowConfig::conventional())?
        .simulate(&model, &dataset)?;
    println!("--- conventional dataflow (B = D) ---");
    println!("{conventional}");

    println!(
        "Feature blocking speedup: {:.2}x (DRAM traffic {:.1} MB -> {:.1} MB)",
        blocked.speedup_over(&conventional),
        conventional.dram_bytes() as f64 / 1e6,
        blocked.dram_bytes() as f64 / 1e6,
    );
    Ok(())
}
