//! Quickstart: compile a GCN-on-Cora workload once into a [`SimSession`],
//! then execute it under the feature-blocked and conventional dataflows.
//!
//! Run with `cargo run --release --example quickstart`.

use gnnerator::{DataflowConfig, GnneratorConfig, SimSession, Simulator};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Synthesise a dataset with Cora's published statistics (Table II).
    //    Use `.spec()` without `.scaled(..)` for the full-size graph.
    let spec = DatasetKind::Cora.spec().scaled(0.25);
    println!("Dataset: {spec}");
    let dataset = spec.synthesize(42)?;

    // 2. Build the paper's GCN configuration: one hidden layer of width 16.
    let model = NetworkKind::Gcn.build_paper_config(dataset.features.dim(), 7)?;
    println!("Model:   {model}");

    // 3. Open a session: the model and graph are validated once, and every
    //    configuration compiled from here shares the session's shard plans.
    let session = SimSession::new(model, &dataset)?;
    let config = GnneratorConfig::paper_default();
    println!("Target:  {config}");

    // 4. Compile + execute the Table IV platform with the
    //    feature-dimension-blocking dataflow (B = 64).
    let blocked_workload = session.compile(&config, DataflowConfig::paper_default())?;
    let blocked = Simulator::execute(&blocked_workload)?;
    println!();
    println!("--- feature-blocked dataflow (B = 64) ---");
    println!("{blocked}");

    // 5. Compare with the conventional dataflow (the whole feature vector
    //    stays on-chip, so far fewer nodes fit per shard). The session
    //    reshards only because the shard parameter changes; identical
    //    parameters would reuse the cached plan.
    let conventional = session.simulate(&config, DataflowConfig::conventional())?;
    println!("--- conventional dataflow (B = D) ---");
    println!("{conventional}");

    println!(
        "Feature blocking speedup: {:.2}x (DRAM traffic {:.1} MB -> {:.1} MB)",
        blocked.speedup_over(&conventional),
        conventional.dram_bytes() as f64 / 1e6,
        blocked.dram_bytes() as f64 / 1e6,
    );
    // The sparse shard grid tracks how many cells actually hold edges; the
    // simulator's occupancy-aware walk visits only those.
    println!(
        "Shard occupancy: blocked {:.0}% ({} shards), conventional {:.0}% ({} shards)",
        blocked.shard_occupancy() * 100.0,
        blocked.occupied_shards(),
        conventional.shard_occupancy() * 100.0,
        conventional.occupied_shards(),
    );
    println!(
        "{session} ({:.2} ms spent sharding)",
        session.shard_build_seconds() * 1e3
    );
    Ok(())
}
