//! Design-space exploration in the spirit of Section VI-B (Figure 5): where
//! should the next generation of GNNerator spend additional hardware —
//! on-chip graph memory, Dense Engine compute, or memory bandwidth — and how
//! does the answer change with the network's hidden dimension?
//!
//! Run with `cargo run --release --example design_space`.

use gnnerator::{DataflowConfig, GnneratorConfig, Simulator};
use gnnerator_bench::rows::{format_speedup, Table};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let dataset = DatasetKind::Pubmed.spec().scaled(0.25).synthesize(3)?;
    println!("Workload: GCN on {}", dataset.spec);

    let base = GnneratorConfig::paper_default();
    let candidates = [
        ("baseline", base.clone()),
        ("2x graph memory", base.with_double_graph_memory()),
        ("2x dense compute", base.with_double_dense_compute()),
        ("2x bandwidth", base.with_double_feature_bandwidth()),
    ];

    let mut table = Table::new(
        "Scaling study: speedup over the baseline configuration",
        &["configuration", "hidden 16", "hidden 128", "hidden 1024"],
    );
    let dataflow = DataflowConfig::paper_default();
    for (name, config) in &candidates {
        let mut cells = vec![name.to_string()];
        for hidden in [16usize, 128, 1024] {
            let model = NetworkKind::Gcn.build(dataset.features.dim(), hidden, 3, 1)?;
            let baseline_report = Simulator::with_dataflow(base.clone(), dataflow)?
                .simulate(&model, &dataset)?;
            let report =
                Simulator::with_dataflow(config.clone(), dataflow)?.simulate(&model, &dataset)?;
            cells.push(format_speedup(
                baseline_report.total_cycles as f64 / report.total_cycles as f64,
            ));
        }
        table.add_row(cells);
    }
    println!();
    println!("{table}");
    println!(
        "Paper reference (Figure 5): extra bandwidth pays off at small hidden sizes, extra Dense Engine compute at large hidden sizes."
    );

    // Engine utilisation breakdown for the baseline at the extremes, showing
    // *why* the best investment flips.
    for hidden in [16usize, 1024] {
        let model = NetworkKind::Gcn.build(dataset.features.dim(), hidden, 3, 1)?;
        let report = Simulator::with_dataflow(base.clone(), dataflow)?.simulate(&model, &dataset)?;
        let l0 = &report.layers[0];
        println!(
            "hidden {hidden:>4}: layer-0 dense engine {:>4.0}% busy, graph engine {:>4.0}% busy, {:.1} MB DRAM",
            l0.dense_engine_utilization() * 100.0,
            l0.graph_engine_utilization() * 100.0,
            l0.dram_bytes() as f64 / 1e6,
        );
    }
    Ok(())
}
