//! Design-space exploration in the spirit of Section VI-B (Figure 5): where
//! should the next generation of GNNerator spend additional hardware —
//! on-chip graph memory, Dense Engine compute, or memory bandwidth — and how
//! does the answer change with the network's hidden dimension? The whole
//! 12-point (configuration × hidden-dimension) grid runs as one parallel
//! sweep.
//!
//! Run with `cargo run --release --example design_space`.

use gnnerator::{DataflowConfig, GnneratorConfig, ScenarioSpec, SweepRunner};
use gnnerator_bench::rows::{format_speedup, Table};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let spec = DatasetKind::Pubmed.spec().scaled(0.25);
    println!("Workload: GCN on {spec}");

    let base = GnneratorConfig::paper_default();
    let candidates = [
        ("baseline", base.clone()),
        ("2x graph memory", base.with_double_graph_memory()),
        ("2x dense compute", base.with_double_dense_compute()),
        ("2x bandwidth", base.with_double_feature_bandwidth()),
    ];
    let hidden_dims = [16usize, 128, 1024];
    let dataflow = DataflowConfig::paper_default();

    // Enumerate the full grid, then run it as one parallel batch: sessions
    // are keyed by (dataset, model shape), so the four configurations of one
    // hidden dimension share a single compiled session.
    let mut scenarios = Vec::new();
    for (_, config) in &candidates {
        for &hidden in &hidden_dims {
            scenarios.push(ScenarioSpec::new(
                NetworkKind::Gcn,
                spec,
                3,
                hidden,
                3,
                config.clone(),
                dataflow,
            ));
        }
    }
    let runner = SweepRunner::new();
    let results = runner.run(&scenarios)?;

    let mut table = Table::new(
        "Scaling study: speedup over the baseline configuration",
        &["configuration", "hidden 16", "hidden 128", "hidden 1024"],
    );
    let baseline_rows = &results[0..hidden_dims.len()];
    for ((name, _), group) in candidates
        .iter()
        .zip(results.chunks_exact(hidden_dims.len()))
    {
        let mut cells = vec![name.to_string()];
        for (run, baseline) in group.iter().zip(baseline_rows) {
            let (run_report, baseline_report) = (
                run.report.as_ref().expect("accelerator point"),
                baseline.report.as_ref().expect("accelerator point"),
            );
            cells.push(format_speedup(
                baseline_report.total_cycles as f64 / run_report.total_cycles as f64,
            ));
        }
        table.add_row(cells);
    }
    println!();
    println!("{table}");
    println!(
        "Paper reference (Figure 5): extra bandwidth pays off at small hidden sizes, extra Dense Engine compute at large hidden sizes."
    );

    // Engine utilisation breakdown for the baseline at the extremes, showing
    // *why* the best investment flips.
    for (i, &hidden) in hidden_dims.iter().enumerate() {
        if hidden == 128 {
            continue;
        }
        let report = baseline_rows[i].report.as_ref().expect("accelerator point");
        let l0 = &report.layers[0];
        println!(
            "hidden {hidden:>4}: layer-0 dense engine {:>4.0}% busy, graph engine {:>4.0}% busy, {:.1} MB DRAM",
            l0.dense_engine_utilization() * 100.0,
            l0.graph_engine_utilization() * 100.0,
            l0.dram_bytes() as f64 / 1e6,
        );
    }
    println!(
        "Sweep reused {} dataset and {} compiled sessions across {} points.",
        runner.cached_datasets(),
        runner.cached_sessions(),
        scenarios.len()
    );
    Ok(())
}
