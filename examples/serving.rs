//! Serving quickstart: boot the session server, answer simulate requests
//! for the same workload on all three platforms, and watch the warm
//! [`SessionPool`](gnnerator_serve::SessionPool) absorb repeated traffic.
//!
//! Run with `cargo run --release --example serving`.

use gnnerator_serve::{client, Json, ServeConfig, SessionServer};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Start the server on an ephemeral port. In production you would run
    //    the `serve` binary instead:
    //    `cargo run -p gnnerator-serve --release --bin serve -- --addr 127.0.0.1:8642`
    let server = SessionServer::start("127.0.0.1:0", ServeConfig::default())?;
    let addr = server.local_addr();
    println!("session server listening on http://{addr}");

    // 2. One workload, three platforms — the backend dispatch the sweep
    //    engine uses is the same one behind the HTTP front door.
    for backend in ["gnnerator", "gpu-roofline", "hygcn"] {
        let body = format!(
            "{{\"dataset\": \"cora\", \"network\": \"gcn\", \"backend\": \"{backend}\", \
             \"scale\": 0.25, \"seed\": 42}}"
        );
        let response = client::post(addr, "/simulate", &body).map_err(io_error)?;
        let point = response.json().ok_or("response was not JSON")?;
        println!(
            "  {:<14} {:>12.6} ms  (session_reused: {})",
            backend,
            point
                .get("seconds")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN)
                * 1e3,
            point
                .get("session_reused")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        );
    }

    // 3. All three requests shared one compiled session (the session key is
    //    the dataset + model shape; the backend only changes evaluation).
    let stats = client::get(addr, "/stats").map_err(io_error)?;
    let stats = stats.json().ok_or("stats were not JSON")?;
    let pool = stats.get("pool").ok_or("stats carry a pool section")?;
    println!(
        "pool: {} session(s) built, {} hit(s), {} miss(es)",
        render(pool.get("sessions_built")),
        render(pool.get("hits")),
        render(pool.get("misses")),
    );

    // 4. Clean shutdown: in-flight work finishes, threads join.
    server.shutdown();
    println!("server shut down cleanly");
    Ok(())
}

fn render(value: Option<&Json>) -> String {
    value
        .and_then(Json::as_u64)
        .map_or_else(|| "?".to_string(), |v| v.to_string())
}

fn io_error(message: String) -> Box<dyn Error> {
    message.into()
}
