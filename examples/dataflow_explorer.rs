//! Explores the dataflow design space the paper discusses in Section IV:
//! feature-block size (Figure 4), shard-traversal order (Table I) and their
//! effect on DRAM traffic and execution time, on a single workload — swept
//! as one parallel scenario batch through the sweep engine.
//!
//! Run with `cargo run --release --example dataflow_explorer`.

use gnnerator::{cost, DataflowConfig, GnneratorConfig, ScenarioSpec, SweepRunner};
use gnnerator_bench::rows::Table;
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::TraversalOrder;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Citeseer has the paper's widest features (3703 dims), which makes it
    // the most dataflow-sensitive workload.
    let spec = DatasetKind::Citeseer.spec().scaled(0.5);
    let config = GnneratorConfig::paper_default();
    let scenario = |dataflow: DataflowConfig| {
        ScenarioSpec::new(NetworkKind::Gcn, spec, 7, 16, 6, config.clone(), dataflow)
    };
    println!("Workload: GCN on {spec}");
    println!();

    // --- Block-size sweep (Figure 4) + traversal orders, one batch ---
    let block_sizes = [32usize, 64, 128, 256, 1024, 4096];
    let mut scenarios: Vec<ScenarioSpec> = block_sizes
        .iter()
        .map(|&b| scenario(DataflowConfig::blocked(b)))
        .collect();
    scenarios.push(scenario(DataflowConfig::conventional()));
    scenarios.push(scenario(
        DataflowConfig::conventional().with_traversal(TraversalOrder::DestinationStationary),
    ));
    scenarios.push(scenario(
        DataflowConfig::conventional().with_traversal(TraversalOrder::SourceStationary),
    ));

    let runner = SweepRunner::new();
    let results = runner.run(&scenarios)?;
    let (blocked, rest) = results.split_at(block_sizes.len());
    let (conventional, orders) = rest.split_first().expect("conventional point present");
    // All points are accelerator scenarios, so every result carries a
    // cycle-level report.
    let report_of = |run: &gnnerator::ScenarioResult| {
        run.report
            .clone()
            .expect("accelerator point carries a report")
    };
    let baseline = report_of(&blocked[1]).total_cycles as f64; // B = 64

    let mut table = Table::new(
        "Feature-block size sweep",
        &[
            "dataflow",
            "cycles",
            "DRAM MB",
            "grid S (layer 0)",
            "vs B=64",
        ],
    );
    for (b, run) in block_sizes.iter().zip(blocked) {
        let report = report_of(run);
        table.add_row(vec![
            format!("B={b}"),
            report.total_cycles.to_string(),
            format!("{:.1}", report.dram_bytes() as f64 / 1e6),
            report.layers[0].grid_dim.to_string(),
            format!("{:.2}x", report.total_cycles as f64 / baseline),
        ]);
    }
    let conventional_report = report_of(conventional);
    table.add_row(vec![
        "conventional".to_string(),
        conventional_report.total_cycles.to_string(),
        format!("{:.1}", conventional_report.dram_bytes() as f64 / 1e6),
        conventional_report.layers[0].grid_dim.to_string(),
        format!("{:.2}x", conventional_report.total_cycles as f64 / baseline),
    ]);
    println!("{table}");

    // --- Traversal-order comparison (Table I in practice) ---
    let mut table = Table::new(
        "Shard traversal order (conventional dataflow)",
        &["order", "cycles", "DRAM reads MB", "DRAM writes MB"],
    );
    for run in orders {
        let order = run.scenario.dataflow.traversal.expect("order pinned");
        let report = report_of(run);
        table.add_row(vec![
            order.to_string(),
            report.total_cycles.to_string(),
            format!("{:.1}", report.dram_read_bytes() as f64 / 1e6),
            format!("{:.1}", report.dram_write_bytes() as f64 / 1e6),
        ]);
    }
    println!("{table}");

    // --- The analytical model behind the choice (Table I) ---
    let s = conventional_report.layers[0].grid_dim as u64;
    let src = cost::source_stationary(s, 1);
    let dst = cost::destination_stationary(s, 1);
    println!("Analytical Table I at S={s}, I=1: src-stationary {src}, dst-stationary {dst}");
    println!("Chosen order: {}", cost::choose_order(s, 1));
    println!(
        "Sweep reused one dataset and {} compiled session(s) across {} points.",
        runner.cached_sessions(),
        scenarios.len()
    );
    Ok(())
}
