//! Explores the dataflow design space the paper discusses in Section IV:
//! feature-block size (Figure 4), shard-traversal order (Table I) and their
//! effect on DRAM traffic and execution time, on a single workload.
//!
//! Run with `cargo run --release --example dataflow_explorer`.

use gnnerator::{cost, DataflowConfig, GnneratorConfig, Simulator};
use gnnerator_bench::rows::Table;
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::TraversalOrder;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Citeseer has the paper's widest features (3703 dims), which makes it
    // the most dataflow-sensitive workload.
    let dataset = DatasetKind::Citeseer.spec().scaled(0.5).synthesize(7)?;
    let model = NetworkKind::Gcn.build_paper_config(dataset.features.dim(), 6)?;
    let config = GnneratorConfig::paper_default();
    println!("Workload: GCN on {}", dataset.spec);
    println!();

    // --- Block-size sweep (Figure 4) ---
    let mut table = Table::new(
        "Feature-block size sweep",
        &["dataflow", "cycles", "DRAM MB", "grid S (layer 0)", "vs B=64"],
    );
    let baseline = Simulator::with_dataflow(config.clone(), DataflowConfig::blocked(64))?
        .simulate(&model, &dataset)?;
    for b in [32usize, 64, 128, 256, 1024, 4096] {
        let report = Simulator::with_dataflow(config.clone(), DataflowConfig::blocked(b))?
            .simulate(&model, &dataset)?;
        table.add_row(vec![
            format!("B={b}"),
            report.total_cycles.to_string(),
            format!("{:.1}", report.dram_bytes() as f64 / 1e6),
            report.layers[0].grid_dim.to_string(),
            format!("{:.2}x", report.total_cycles as f64 / baseline.total_cycles as f64),
        ]);
    }
    let conventional = Simulator::with_dataflow(config.clone(), DataflowConfig::conventional())?
        .simulate(&model, &dataset)?;
    table.add_row(vec![
        "conventional".to_string(),
        conventional.total_cycles.to_string(),
        format!("{:.1}", conventional.dram_bytes() as f64 / 1e6),
        conventional.layers[0].grid_dim.to_string(),
        format!(
            "{:.2}x",
            conventional.total_cycles as f64 / baseline.total_cycles as f64
        ),
    ]);
    println!("{table}");

    // --- Traversal-order comparison (Table I in practice) ---
    let mut table = Table::new(
        "Shard traversal order (conventional dataflow)",
        &["order", "cycles", "DRAM reads MB", "DRAM writes MB"],
    );
    for order in [
        TraversalOrder::DestinationStationary,
        TraversalOrder::SourceStationary,
    ] {
        let report = Simulator::with_dataflow(
            config.clone(),
            DataflowConfig::conventional().with_traversal(order),
        )?
        .simulate(&model, &dataset)?;
        table.add_row(vec![
            order.to_string(),
            report.total_cycles.to_string(),
            format!("{:.1}", report.dram_read_bytes() as f64 / 1e6),
            format!("{:.1}", report.dram_write_bytes() as f64 / 1e6),
        ]);
    }
    println!("{table}");

    // --- The analytical model behind the choice (Table I) ---
    let s = conventional.layers[0].grid_dim as u64;
    let src = cost::source_stationary(s, 1);
    let dst = cost::destination_stationary(s, 1);
    println!("Analytical Table I at S={s}, I=1: src-stationary {src}, dst-stationary {dst}");
    println!("Chosen order: {}", cost::choose_order(s, 1));
    Ok(())
}
