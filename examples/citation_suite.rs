//! Runs the paper's nine-benchmark citation suite (three datasets × three
//! networks) end to end: GNNerator with and without feature blocking, the GPU
//! roofline baseline and the HyGCN baseline — the data behind Figure 3 and
//! Table V.
//!
//! Run with `cargo run --release --example citation_suite` (add
//! `-- --scale 0.25` for scaled-down graphs; the default uses the paper's
//! full-size datasets because the accelerator-versus-HyGCN relationship is
//! scale dependent — small graphs fit in HyGCN's on-chip memory and hide the
//! dataflow differences the paper measures).

use gnnerator_bench::rows::{format_ms, format_speedup, geomean, Table};
use gnnerator_bench::suite::{full_suite, scale_from_args, SuiteContext, SuiteOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let scale = scale_from_args(std::env::args());
    println!("Synthesising the citation datasets at scale {scale}...");
    let ctx = SuiteContext::materialize(&SuiteOptions::paper().with_scale(scale))?;

    let mut table = Table::new(
        "Citation suite: runtimes and speedups",
        &[
            "benchmark",
            "gnnerator",
            "w/o blocking",
            "gpu",
            "hygcn",
            "vs gpu",
            "vs hygcn",
        ],
    );
    let mut vs_gpu = Vec::new();
    let mut vs_hygcn = Vec::new();
    for workload in full_suite() {
        let result = ctx.run_workload(&workload)?;
        vs_gpu.push(result.speedup_blocked_vs_gpu());
        vs_hygcn.push(result.speedup_blocked_vs_hygcn());
        table.add_row(vec![
            workload.label(),
            format_ms(result.gnnerator_blocked.seconds()),
            format_ms(result.gnnerator_unblocked.seconds()),
            format_ms(result.gpu.seconds),
            format_ms(result.hygcn.seconds),
            format_speedup(result.speedup_blocked_vs_gpu()),
            format_speedup(result.speedup_blocked_vs_hygcn()),
        ]);
    }
    table.add_row(vec![
        "Gmean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format_speedup(geomean(&vs_gpu)),
        format_speedup(geomean(&vs_hygcn)),
    ]);
    println!();
    println!("{table}");
    println!("Paper reference: 8.0x geomean over the GPU, 3.15x average over HyGCN.");
    Ok(())
}
