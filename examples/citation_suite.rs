//! Runs the paper's nine-benchmark citation suite (three datasets × three
//! networks) end to end as one parallel scenario sweep: GNNerator with and
//! without feature blocking, the GPU roofline baseline and the HyGCN
//! baseline — the data behind Figure 3 and Table V.
//!
//! Run with `cargo run --release --example citation_suite` (add
//! `-- --scale 0.25` for scaled-down graphs; the default uses the paper's
//! full-size datasets because the accelerator-versus-HyGCN relationship is
//! scale dependent — small graphs fit in HyGCN's on-chip memory and hide the
//! dataflow differences the paper measures).

use gnnerator_bench::rows::{format_ms, format_speedup, geomean, Table};
use gnnerator_bench::suite::{scale_from_args, SuiteContext, SuiteOptions};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let scale = scale_from_args(std::env::args());
    println!("Synthesising the citation datasets at scale {scale}...");
    let ctx = SuiteContext::materialize(&SuiteOptions::paper().with_scale(scale))?;

    // All 18 GNNerator scenario points (9 workloads x 2 dataflows) run as a
    // single parallel sweep over compile-once sessions.
    let start = Instant::now();
    let results = ctx.run_suite()?;
    let sweep_seconds = start.elapsed().as_secs_f64();

    let mut table = Table::new(
        "Citation suite: runtimes and speedups",
        &[
            "benchmark",
            "gnnerator",
            "w/o blocking",
            "gpu",
            "hygcn",
            "vs gpu",
            "vs hygcn",
        ],
    );
    let mut vs_gpu = Vec::new();
    let mut vs_hygcn = Vec::new();
    for result in &results {
        vs_gpu.push(result.speedup_blocked_vs_gpu());
        vs_hygcn.push(result.speedup_blocked_vs_hygcn());
        table.add_row(vec![
            result.workload.label(),
            format_ms(result.gnnerator_blocked.seconds()),
            format_ms(result.gnnerator_unblocked.seconds()),
            format_ms(result.gpu.seconds),
            format_ms(result.hygcn.seconds),
            format_speedup(result.speedup_blocked_vs_gpu()),
            format_speedup(result.speedup_blocked_vs_hygcn()),
        ]);
    }
    table.add_row(vec![
        "Gmean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format_speedup(geomean(&vs_gpu)),
        format_speedup(geomean(&vs_hygcn)),
    ]);
    println!();
    println!("{table}");
    println!("Paper reference: 8.0x geomean over the GPU, 3.15x average over HyGCN.");
    println!(
        "Swept {} scenario points in {:.2} s ({} datasets, {} compiled sessions cached).",
        results.len() * 2,
        sweep_seconds,
        ctx.runner().cached_datasets(),
        ctx.runner().cached_sessions(),
    );
    Ok(())
}
