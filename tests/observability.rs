//! Integration tests for the unified observability surface: `GET /metrics`
//! exposition correctness under concurrent scrapes, counter monotonicity,
//! histogram coherence, per-request provenance, graceful drain, and the
//! load-bearing guarantee that telemetry never perturbs simulation results.

use gnnerator::{ScenarioSpec, SweepRunner};
use gnnerator_observe::Recorder;
use gnnerator_serve::{client, scenario_from_json, Json, ServeConfig, SessionServer};
use std::collections::HashMap;
use std::net::SocketAddr;

fn body(dataset: &str, backend: &str) -> String {
    format!(
        "{{\"dataset\": \"{dataset}\", \"network\": \"gcn\", \"backend\": \"{backend}\", \
         \"scale\": 0.03, \"seed\": 9, \"hidden_dim\": 8, \"out_dim\": 4}}"
    )
}

fn scenario(dataset: &str, backend: &str) -> ScenarioSpec {
    scenario_from_json(&Json::parse(&body(dataset, backend)).expect("valid JSON"))
        .expect("valid scenario")
}

fn start_server() -> (SessionServer, SocketAddr) {
    let server = SessionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            pool_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

/// Parses a Prometheus text exposition into `series name{labels} -> value`,
/// asserting every line is either a comment or a well-formed sample.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut samples = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unknown comment line: {line:?}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without a value: {line:?}"));
        let value: f64 = value
            .parse()
            .or_else(|_| match value {
                "+Inf" => Ok(f64::INFINITY),
                "-Inf" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                other => other.parse(),
            })
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
        samples.insert(series.to_string(), value);
    }
    samples
}

fn scrape(addr: SocketAddr) -> (String, HashMap<String, f64>) {
    let response = client::get(addr, "/metrics").expect("scrape succeeds");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(
        response
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "Prometheus text content type"
    );
    let samples = parse_exposition(&response.body);
    (response.body, samples)
}

#[test]
fn concurrent_scrapes_parse_and_counters_stay_monotonic() {
    let (server, addr) = start_server();
    // Put some traffic through first so histograms have samples.
    for _ in 0..3 {
        let response = client::post(addr, "/simulate", &body("cora", "gnnerator")).unwrap();
        assert!(response.is_ok(), "{}", response.body);
    }

    // Concurrent scrapes must each be a complete, parseable exposition.
    let expositions: Vec<HashMap<String, f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || scrape(addr).1))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for samples in &expositions {
        for series in [
            "gnnerator_requests_total",
            "gnnerator_queue_wait_seconds_count",
            "gnnerator_evaluate_seconds_count",
            "gnnerator_serialize_seconds_count",
            "gnnerator_session_build_seconds_count",
            "gnnerator_pool_hits_total",
            "gnnerator_pool_misses_total",
            "gnnerator_workers_alive",
            "gnnerator_window_hits_total",
            "gnnerator_memory_peak_resident_bytes",
            "gnnerator_breaker_trips_total",
        ] {
            assert!(samples.contains_key(series), "missing series {series}");
        }
        assert_eq!(samples["gnnerator_workers_alive"], 2.0);
        assert!(samples["gnnerator_evaluate_seconds_count"] >= 3.0);
    }

    // Counters are monotonic across sequential scrapes with traffic between.
    let (_, before) = scrape(addr);
    let response = client::post(addr, "/simulate", &body("cora", "gnnerator")).unwrap();
    assert!(response.is_ok());
    let (_, after) = scrape(addr);
    for series in [
        "gnnerator_requests_total",
        "gnnerator_evaluate_seconds_count",
        "gnnerator_pool_hits_total",
        "gnnerator_solo_requests_total",
    ] {
        assert!(
            after[series] >= before[series],
            "{series} went backwards: {} -> {}",
            before[series],
            after[series]
        );
    }
    assert!(
        after["gnnerator_requests_total"] > before["gnnerator_requests_total"],
        "the extra request must be visible"
    );
    server.shutdown();
}

#[test]
fn histogram_families_are_coherent_in_the_exposition() {
    let (server, addr) = start_server();
    for _ in 0..5 {
        let response = client::post(addr, "/simulate", &body("cora", "gnnerator")).unwrap();
        assert!(response.is_ok(), "{}", response.body);
    }
    let (text, samples) = scrape(addr);
    for family in [
        "gnnerator_queue_wait_seconds",
        "gnnerator_session_build_seconds",
        "gnnerator_evaluate_seconds",
        "gnnerator_serialize_seconds",
    ] {
        let count = samples[&format!("{family}_count")];
        let inf_bucket = samples[&format!("{family}_bucket{{le=\"+Inf\"}}")];
        assert_eq!(
            inf_bucket, count,
            "{family}: the +Inf bucket must equal _count"
        );
        assert!(
            samples[&format!("{family}_sum")] >= 0.0,
            "{family}_sum is non-negative"
        );
        // Cumulative buckets never decrease.
        let mut last = -1.0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{le=\"")) {
                let value: f64 = rest
                    .rsplit_once(' ')
                    .map(|(_, v)| v.parse().unwrap())
                    .unwrap();
                assert!(value >= last, "{family} buckets must be cumulative");
                last = value;
            }
        }
    }
    server.shutdown();
}

#[test]
fn provenance_is_opt_in_and_carries_the_stage_spans() {
    let (server, addr) = start_server();
    let plain = client::post(addr, "/simulate", &body("cora", "gnnerator")).unwrap();
    assert!(plain.is_ok(), "{}", plain.body);
    let plain_json = plain.json().unwrap();
    assert!(
        plain_json.get("provenance").is_none(),
        "provenance is opt-in: {}",
        plain.body
    );

    let traced = client::request_with_headers(
        addr,
        "POST",
        "/simulate",
        &body("cora", "gnnerator"),
        &[("X-Provenance", "1")],
    )
    .unwrap();
    assert!(traced.is_ok(), "{}", traced.body);
    let traced_json = traced.json().unwrap();
    let provenance = traced_json
        .get("provenance")
        .expect("provenance attached when requested");
    assert_eq!(
        provenance.get("backend").and_then(Json::as_str),
        Some("gnnerator")
    );
    assert!(provenance
        .get("session_key")
        .and_then(Json::as_str)
        .is_some_and(|k| k.contains("cora")));
    assert_eq!(
        provenance.get("session_reused").and_then(Json::as_bool),
        Some(true),
        "the plain request warmed the pool"
    );
    let spans = provenance
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans array");
    let stages: Vec<&str> = spans
        .iter()
        .filter_map(|span| span.get("stage").and_then(Json::as_str))
        .collect();
    assert_eq!(
        stages,
        ["queue_wait", "session_build", "evaluate", "serialize"],
        "stages in request order"
    );
    for span in spans {
        let seconds = span.get("seconds").and_then(Json::as_f64).unwrap();
        assert!(seconds >= 0.0 && seconds.is_finite());
    }

    // The evaluated point itself is identical with and without tracing.
    assert_eq!(
        plain_json.get("seconds"),
        traced_json.get("seconds"),
        "provenance must not perturb the result"
    );
    assert_eq!(
        plain_json.get("total_cycles"),
        traced_json.get("total_cycles")
    );
    server.shutdown();
}

#[test]
fn sweep_results_are_bit_identical_with_and_without_a_scoped_recorder() {
    let scenarios = [
        scenario("cora", "gnnerator"),
        scenario("cora", "gpu-roofline"),
        scenario("citeseer", "gnnerator"),
    ];
    // Windowed residency over a shared artifact cache on every runner: the
    // telemetry-heavy fault path is exercised (window hits/misses), and all
    // three runners stay symmetric so results must still match bit for bit.
    let dir = std::env::temp_dir().join(format!("gnnerator-observe-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = std::sync::Arc::new(gnnerator_graph::ArtifactCache::new(&dir));
    let windowed = |runner: SweepRunner| {
        runner
            .with_artifact_cache(std::sync::Arc::clone(&cache))
            .with_residency(gnnerator_graph::GridResidency::Windowed)
            .with_memory_budget(gnnerator_graph::MemoryBudget::bytes(16 << 10))
    };
    let plain = windowed(SweepRunner::new());
    let scoped = windowed(SweepRunner::new()).with_recorder(Recorder::scoped());
    let detached = windowed(SweepRunner::new()).with_recorder(Recorder::detached());
    for spec in &scenarios {
        let reference = plain.run_one(spec).expect("plain run succeeds");
        for (label, runner) in [("scoped", &scoped), ("detached", &detached)] {
            let traced = runner.run_one(spec).expect("traced run succeeds");
            assert_eq!(
                reference, traced,
                "{label}: results must be equal (telemetry excluded from Eq)"
            );
            assert_eq!(
                reference.seconds().to_bits(),
                traced.seconds().to_bits(),
                "{label}: modeled seconds must be bit-identical"
            );
            assert_eq!(
                reference.evaluation.total_cycles, traced.evaluation.total_cycles,
                "{label}: cycle counts must be bit-identical"
            );
        }
    }
    // Both explicit recorders actually observed their runners' windowed
    // shard traffic, isolated from each other and the global recorder.
    let scoped_stats = scoped.recorder().expect("recorder set").memory_stats();
    let detached_stats = detached.recorder().expect("recorder set").memory_stats();
    assert!(
        scoped_stats.window_hits + scoped_stats.window_misses > 0,
        "scoped recorder saw the windowed walks: {scoped_stats:?}"
    );
    assert!(
        detached_stats.window_hits + detached_stats.window_misses > 0,
        "detached recorder saw the windowed walks: {detached_stats:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_flips_readiness_refuses_work_and_closes_the_listener() {
    let (server, addr) = start_server();
    let warm = client::post(addr, "/simulate", &body("cora", "gnnerator")).unwrap();
    assert!(warm.is_ok(), "{}", warm.body);
    let ready = client::get(addr, "/readyz").unwrap();
    assert_eq!(ready.status, 200, "{}", ready.body);

    let drain = client::post(addr, "/drain", "").unwrap();
    assert_eq!(drain.status, 200, "{}", drain.body);
    assert!(drain.body.contains("\"draining\": true"), "{}", drain.body);
    assert!(server.is_draining());

    // Readiness reports 503 with the draining gate named (while the
    // listener is still up; it closes shortly after the queue empties).
    if let Ok(not_ready) = client::get(addr, "/readyz") {
        assert_eq!(not_ready.status, 503, "{}", not_ready.body);
        assert!(
            not_ready.body.contains("\"draining\": true"),
            "{}",
            not_ready.body
        );
    }
    // New evaluation work is refused while draining.
    if let Ok(refused) = client::post(addr, "/simulate", &body("cora", "gnnerator")) {
        assert_eq!(refused.status, 503, "{}", refused.body);
        assert!(refused.body.contains("draining"), "{}", refused.body);
    }

    // With nothing in flight the drain completes: the listener closes and
    // new connections fail. Bounded wait, no sleep-forever.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(1)) {
            Err(_) => break, // listener is gone
            Ok(_) if std::time::Instant::now() > deadline => {
                panic!("listener still accepting after drain")
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    server.wait();
}
