//! Connection-lifecycle tests for the serving layer: keep-alive reuse,
//! pipelining, idle-timeout reaping, malformed requests mid-stream, header
//! and body caps, and clean shutdown with persistent connections open.

use gnnerator_serve::{client, client::ClientConnection, Json, ServeConfig, SessionServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn simulate_body() -> String {
    "{\"dataset\": \"cora\", \"network\": \"gcn\", \"scale\": 0.03, \"seed\": 9, \
     \"hidden_dim\": 8, \"out_dim\": 4}"
        .to_string()
}

fn start_server(config: ServeConfig) -> (SessionServer, SocketAddr) {
    let server =
        SessionServer::start("127.0.0.1:0", config).expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        pool_capacity: 4,
        idle_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

/// Reads everything until EOF (the server closes non-keep-alive sockets).
fn read_to_end(stream: &mut TcpStream) -> String {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap_or_default();
    raw
}

#[test]
fn one_keep_alive_connection_serves_many_requests() {
    let (server, addr) = start_server(quick_config());
    let mut connection = ClientConnection::new(addr);
    for round in 0..4 {
        let response = connection
            .post("/simulate", &simulate_body())
            .expect("keep-alive request succeeds");
        assert!(response.is_ok(), "round {round}: {}", response.body);
        assert!(
            response.keep_alive(),
            "round {round}: the connection must persist"
        );
    }
    let stats = connection.get("/stats").expect("stats over keep-alive");
    let json = stats.json().expect("stats JSON");
    let admission = json.get("admission").expect("admission section");
    assert_eq!(
        admission.get("total_connections").and_then(Json::as_u64),
        Some(1),
        "five requests rode one connection"
    );
    assert_eq!(
        admission.get("active_connections").and_then(Json::as_u64),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_socket() {
    let (server, addr) = start_server(quick_config());
    let body = simulate_body();
    let mut connection = ClientConnection::new(addr);
    let responses = connection
        .pipeline(&[
            ("POST", "/simulate", body.as_str()),
            ("GET", "/stats", ""),
            ("POST", "/simulate", body.as_str()),
            ("GET", "/stats", ""),
        ])
        .expect("pipelined requests succeed");
    assert_eq!(responses.len(), 4);
    for (index, response) in responses.iter().enumerate() {
        assert!(response.is_ok(), "response {index}: {}", response.body);
        assert!(response.keep_alive(), "response {index} keeps the socket");
    }
    // In-order: responses 0 and 2 are points, 1 and 3 are stats bodies.
    for index in [0usize, 2] {
        let point = responses[index].json().expect("point JSON");
        assert!(point.get("seconds").and_then(Json::as_f64).is_some());
    }
    for index in [1usize, 3] {
        let stats = responses[index].json().expect("stats JSON");
        assert!(stats.get("uptime_seconds").and_then(Json::as_f64).is_some());
    }
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_reaped_quietly() {
    let (server, addr) = start_server(quick_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    // Say nothing. The server must close the socket after its idle timeout
    // without writing any response (no request means nothing to answer).
    let raw = read_to_end(&mut stream);
    assert_eq!(raw, "", "an idle connection closes silently");
    server.shutdown();
}

#[test]
fn a_stalled_partial_request_gets_408_and_a_close() {
    let (server, addr) = start_server(quick_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    // First bytes arrive, then the client stalls forever: the server must
    // answer 408 on a closing connection once the read deadline expires.
    stream
        .write_all(b"POST /simulate HT")
        .expect("partial head");
    let raw = read_to_end(&mut stream);
    assert!(raw.starts_with("HTTP/1.1 408 "), "got: {raw:?}");
    assert!(raw.contains("Connection: close\r\n"), "got: {raw:?}");
    server.shutdown();
}

#[test]
fn malformed_request_line_mid_keep_alive_closes_after_a_400() {
    let (server, addr) = start_server(quick_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    // A well-formed request first...
    stream
        .write_all(b"GET /stats HTTP/1.1\r\n\r\n")
        .expect("first request");
    let mut head = [0u8; 12];
    stream.read_exact(&mut head).expect("first status line");
    assert_eq!(&head, b"HTTP/1.1 200");
    // ...drain the first response body so the parser is at a boundary.
    let mut drained = Vec::new();
    let mut byte = [0u8; 1];
    while !drained.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        drained.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&drained);
    let content_length: usize = text
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("content length");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body");
    assert!(text.contains("Connection: keep-alive"), "got: {text:?}");
    // ...then garbage on the same socket: a 400 on a closing connection.
    stream.write_all(b"GARBAGE\r\n\r\n").expect("garbage write");
    let raw = read_to_end(&mut stream);
    assert!(raw.starts_with("HTTP/1.1 400 "), "got: {raw:?}");
    assert!(raw.contains("Connection: close\r\n"), "got: {raw:?}");
    server.shutdown();
}

#[test]
fn oversized_heads_and_bodies_get_431_and_413() {
    let (server, addr) = start_server(quick_config());
    // A declared body over the 8 MiB cap is refused before allocation.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream
        .write_all(b"POST /simulate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .expect("oversized body declaration");
    let raw = read_to_end(&mut stream);
    assert!(raw.starts_with("HTTP/1.1 413 "), "got: {raw:?}");
    assert!(raw.contains("Connection: close\r\n"), "got: {raw:?}");
    // A request head over the 16 KiB cap is refused with 431.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let huge = format!(
        "GET /stats HTTP/1.1\r\nPadding: {}\r\n\r\n",
        "x".repeat(32 * 1024)
    );
    stream.write_all(huge.as_bytes()).expect("oversized head");
    let raw = read_to_end(&mut stream);
    assert!(raw.starts_with("HTTP/1.1 431 "), "got: {raw:?}");
    assert!(raw.contains("Connection: close\r\n"), "got: {raw:?}");
    server.shutdown();
}

#[test]
fn shutdown_wakes_open_persistent_connections_and_drains_promptly() {
    let (server, addr) = start_server(ServeConfig {
        workers: 2,
        pool_capacity: 4,
        // A long idle timeout: shutdown must NOT wait it out.
        idle_timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    });
    // Two persistent connections sit idle mid-keep-alive...
    let mut idle_connections: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
            stream
                .write_all(b"GET /stats HTTP/1.1\r\n\r\n")
                .expect("request");
            let mut probe = [0u8; 12];
            stream.read_exact(&mut probe).expect("response starts");
            assert_eq!(&probe, b"HTTP/1.1 200");
            stream
        })
        .collect();
    // ...while a third client posts /shutdown.
    let response = client::post(addr, "/shutdown", "").expect("shutdown request");
    assert!(response.is_ok());
    let started = std::time::Instant::now();
    server.wait();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "shutdown must wake idle keep-alive readers, not wait out their timeout"
    );
    // The idle connections were closed by the server.
    for stream in &mut idle_connections {
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap_or_default();
    }
    // And the port no longer answers.
    assert!(client::get(addr, "/stats").is_err());
}
