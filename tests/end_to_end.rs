//! Cross-crate integration tests: dataset synthesis → model construction →
//! compilation → cycle-level simulation → baselines, exercised the way the
//! examples and benchmark harness use the workspace.

use gnnerator::{Compiler, DataflowConfig, GnneratorConfig, Simulator};
use gnnerator_baselines::{GpuModel, HygcnModel};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::TraversalOrder;

fn tiny(kind: DatasetKind, seed: u64) -> gnnerator_graph::datasets::Dataset {
    kind.spec().scaled(0.05).synthesize(seed).unwrap()
}

#[test]
fn every_dataset_and_network_simulates_end_to_end() {
    let sim = Simulator::new(GnneratorConfig::paper_default()).unwrap();
    for kind in DatasetKind::ALL {
        let dataset = tiny(kind, 7);
        for network in NetworkKind::ALL {
            let model = network
                .build_paper_config(dataset.features.dim(), 7)
                .unwrap();
            let report = sim.simulate(&model, &dataset).unwrap();
            assert!(report.total_cycles > 0, "{kind}/{network}");
            assert_eq!(report.layers.len(), 2);
            assert!(report.dram_bytes() > 0);
        }
    }
}

#[test]
fn compiled_program_structure_matches_the_model() {
    let dataset = tiny(DatasetKind::Cora, 3);
    let model = NetworkKind::GraphsagePool
        .build_paper_config(dataset.features.dim(), 7)
        .unwrap();
    let compiler = Compiler::new(
        GnneratorConfig::paper_default(),
        DataflowConfig::paper_default(),
    )
    .unwrap();
    let program = compiler.compile(&model, &dataset.edge_list).unwrap();
    assert_eq!(program.num_layers(), model.num_layers());
    assert_eq!(program.num_nodes, dataset.num_nodes());
    for plan in &program.layers {
        assert!(
            plan.pre_dense.is_some(),
            "GraphSAGE-Pool layers have a pooling MLP"
        );
        assert!(plan.post_dense.is_some());
        assert!(plan.aggregation.is_some());
        assert!(plan.block_size <= 64);
        assert!(plan.num_blocks * plan.block_size >= plan.aggregated_dim());
    }
}

#[test]
fn feature_blocking_helps_memory_bound_workloads() {
    // Citeseer (3703-dim features) is the paper's most memory-bound
    // workload: blocking must reduce both DRAM traffic and cycles once the
    // graph no longer fits on-chip under the conventional dataflow.
    let dataset = DatasetKind::Citeseer
        .spec()
        .scaled(0.6)
        .synthesize(11)
        .unwrap();
    let model = NetworkKind::Gcn
        .build_paper_config(dataset.features.dim(), 6)
        .unwrap();
    let blocked = Simulator::new(GnneratorConfig::paper_default())
        .unwrap()
        .simulate(&model, &dataset)
        .unwrap();
    let conventional = Simulator::with_dataflow(
        GnneratorConfig::paper_default(),
        DataflowConfig::conventional(),
    )
    .unwrap()
    .simulate(&model, &dataset)
    .unwrap();
    assert!(
        conventional.layers[0].grid_dim > 1,
        "the conventional dataflow should need a multi-shard grid"
    );
    assert_eq!(
        blocked.layers[0].grid_dim, 1,
        "blocking should fit the graph on-chip"
    );
    assert!(blocked.dram_bytes() < conventional.dram_bytes());
    assert!(blocked.total_cycles < conventional.total_cycles);
}

#[test]
fn accelerator_beats_both_baselines_on_the_paper_workloads() {
    // The headline qualitative claim: GNNerator with feature blocking is
    // faster than the GPU and than HyGCN on every paper workload.
    for kind in DatasetKind::ALL {
        let dataset = kind.spec().scaled(0.4).synthesize(5).unwrap();
        let model = NetworkKind::Gcn
            .build_paper_config(dataset.features.dim(), 7)
            .unwrap();
        let accel = Simulator::new(GnneratorConfig::paper_default())
            .unwrap()
            .simulate(&model, &dataset)
            .unwrap();
        let gpu =
            GpuModel::rtx_2080_ti().estimate(&model, dataset.num_nodes(), dataset.num_edges());
        let hygcn =
            HygcnModel::paper_default().estimate(&model, dataset.num_nodes(), dataset.num_edges());
        assert!(
            gpu.seconds > accel.seconds(),
            "{kind}: GPU {} s vs accelerator {} s",
            gpu.seconds,
            accel.seconds()
        );
        assert!(
            hygcn.seconds > accel.seconds(),
            "{kind}: HyGCN {} s vs accelerator {} s",
            hygcn.seconds,
            accel.seconds()
        );
    }
}

#[test]
fn scaled_configurations_never_slow_the_accelerator_down() {
    let dataset = tiny(DatasetKind::Pubmed, 9);
    let base_cfg = GnneratorConfig::paper_default();
    for hidden in [16usize, 256] {
        let model = NetworkKind::Gcn
            .build(dataset.features.dim(), hidden, 3, 1)
            .unwrap();
        let base = Simulator::new(base_cfg.clone())
            .unwrap()
            .simulate(&model, &dataset)
            .unwrap();
        for scaled in [
            base_cfg.with_double_graph_memory(),
            base_cfg.with_double_dense_compute(),
            base_cfg.with_double_feature_bandwidth(),
        ] {
            let report = Simulator::new(scaled.clone())
                .unwrap()
                .simulate(&model, &dataset)
                .unwrap();
            // On this tiny 5%-scale graph the doubled systolic array's longer
            // fill/drain can cost a few percent, so allow a small tolerance;
            // the full-scale Figure 5 study (paper_claims.rs) requires >= 1.0.
            assert!(
                report.total_cycles <= base.total_cycles + base.total_cycles / 10,
                "{}: {} vs {}",
                scaled.name,
                report.total_cycles,
                base.total_cycles
            );
        }
    }
}

#[test]
fn traversal_order_choice_matches_the_analytical_model() {
    // The compiler's automatic order choice must agree with the Table I cost
    // model: destination-stationary for the conventional multi-shard grids.
    let dataset = DatasetKind::Citeseer
        .spec()
        .scaled(0.6)
        .synthesize(2)
        .unwrap();
    let model = NetworkKind::Gcn
        .build_paper_config(dataset.features.dim(), 6)
        .unwrap();
    let compiler = Compiler::new(
        GnneratorConfig::paper_default(),
        DataflowConfig::conventional(),
    )
    .unwrap();
    let program = compiler.compile(&model, &dataset.edge_list).unwrap();
    let layer0 = &program.layers[0];
    assert!(layer0.grid_dim() > 1);
    assert_eq!(layer0.traversal, TraversalOrder::DestinationStationary);
    assert_eq!(
        gnnerator::cost::choose_order(layer0.grid_dim() as u64, 1),
        TraversalOrder::DestinationStationary
    );
}

#[test]
fn reports_render_for_humans_and_tools() {
    let dataset = tiny(DatasetKind::Cora, 1);
    let model = NetworkKind::Gcn
        .build_paper_config(dataset.features.dim(), 7)
        .unwrap();
    let report = Simulator::new(GnneratorConfig::paper_default())
        .unwrap()
        .simulate(&model, &dataset)
        .unwrap();
    // Human-readable display mentions the workload and per-layer rows.
    let text = report.to_string();
    assert!(text.contains("gcn"));
    assert!(text.contains("layer 0"));
    // Debug output exposes the raw fields downstream tooling reads.
    let debug = format!("{report:?}");
    assert!(debug.contains("total_cycles"));
    assert!(debug.contains("dram_read_bytes"));
}
