//! Golden regression tests for the sparse shard-grid refactor.
//!
//! The occupancy-aware simulator must produce **bit-identical** reports to
//! the dense-grid simulator it replaced: empty shards were provably no-ops
//! in the shard pipeline, so skipping them may change nothing. The constants
//! below were captured from the dense-`Vec<Shard>` implementation (the seed
//! of this refactor) and pin total cycles plus DRAM read/write bytes for
//! every Table II dataset under three dataflows, and for a synthetic
//! multi-shard graph (`S = 8`, partially occupied) under both traversal
//! orders.

use gnnerator::{DataflowConfig, GnneratorConfig, SimSession, Simulator};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::{generators, TraversalOrder};

fn network(short: &str) -> NetworkKind {
    NetworkKind::ALL
        .into_iter()
        .find(|n| n.short_name() == short)
        .unwrap_or_else(|| panic!("unknown network {short}"))
}

fn dataflow(name: &str) -> DataflowConfig {
    match name {
        "b16" => DataflowConfig::blocked(16),
        "b32" => DataflowConfig::blocked(32),
        "b64" => DataflowConfig::blocked(64),
        "conv" => DataflowConfig::conventional(),
        "conv-src" => {
            DataflowConfig::conventional().with_traversal(TraversalOrder::SourceStationary)
        }
        other => panic!("unknown dataflow {other}"),
    }
}

/// Golden values from the pre-refactor dense-grid simulator: all Table II
/// datasets (scale 0.05, seed 42) x all networks x three dataflows.
/// Columns: dataset, network, dataflow, total_cycles, read_bytes, write_bytes.
const TABLE2_GOLDENS: &[(&str, &str, &str, u64, u64, u64)] = &[
    ("cora", "gcn", "b64", 9346, 1001916, 12420),
    ("cora", "gcn", "b32", 17208, 1118604, 12420),
    ("cora", "gcn", "conv", 10594, 885228, 12420),
    ("cora", "gsage", "b64", 19276, 1876536, 24840),
    ("cora", "gsage", "b32", 27138, 1993224, 24840),
    ("cora", "gsage", "conv", 20524, 1759848, 24840),
    ("cora", "gsage-max", "b64", 196010, 10873976, 807300),
    ("cora", "gsage-max", "b32", 203872, 10990664, 807300),
    ("cora", "gsage-max", "conv", 197258, 10757288, 807300),
    ("citeseer", "gcn", "b64", 24422, 2999968, 15272),
    ("citeseer", "gcn", "b32", 47063, 3288112, 15272),
    ("citeseer", "gcn", "conv", 29531, 2716792, 15272),
    ("citeseer", "gsage", "b64", 52486, 5706824, 30544),
    ("citeseer", "gsage", "b32", 75127, 5994968, 30544),
    ("citeseer", "gsage", "conv", 57595, 5423648, 30544),
    ("citeseer", "gsage-max", "b64", 1268817, 63026100, 2499960),
    ("citeseer", "gsage-max", "b32", 1291458, 63314244, 2499960),
    ("citeseer", "gsage-max", "conv", 1273926, 62742924, 2499960),
    ("pubmed", "gcn", "b64", 14298, 2457648, 90712),
    ("pubmed", "gcn", "b32", 22511, 2804400, 90712),
    ("pubmed", "gcn", "conv", 21758, 2154240, 90712),
    ("pubmed", "gsage", "b64", 32939, 4525200, 181424),
    ("pubmed", "gsage", "b32", 41152, 4871952, 181424),
    ("pubmed", "gsage", "conv", 40399, 4221792, 181424),
    ("pubmed", "gsage-max", "b64", 125231, 7561328, 2216528),
    ("pubmed", "gsage-max", "b32", 133444, 7908080, 2216528),
    ("pubmed", "gsage-max", "conv", 132691, 7257920, 2216528),
];

#[test]
fn table2_reports_are_bit_identical_to_the_dense_grid_simulator() {
    let config = GnneratorConfig::paper_default();
    for kind in DatasetKind::ALL {
        let dataset = kind.spec().scaled(0.05).synthesize(42).unwrap();
        for net in ["gcn", "gsage", "gsage-max"] {
            let model = network(net)
                .build_paper_config(dataset.features.dim(), 7)
                .unwrap();
            let session = SimSession::new(model, &dataset).unwrap();
            for df in ["b64", "b32", "conv"] {
                let golden = TABLE2_GOLDENS
                    .iter()
                    .find(|g| g.0 == kind.to_string() && g.1 == net && g.2 == df)
                    .unwrap();
                let report = session.simulate(&config, dataflow(df)).unwrap();
                assert_eq!(
                    (
                        report.total_cycles,
                        report.dram_read_bytes(),
                        report.dram_write_bytes(),
                    ),
                    (golden.3, golden.4, golden.5),
                    "{kind}-{net}/{df} diverged from the dense-grid simulator"
                );
            }
        }
    }
}

/// Golden values for a synthetic graph whose conventional-dataflow grid is
/// 8x8 and partially occupied, exercising the occupancy-aware walk under
/// both traversal orders. Columns: network, dataflow, total_cycles,
/// read_bytes, write_bytes, layer-0 grid dim.
const MULTI_SHARD_GOLDENS: &[(&str, &str, u64, u64, u64, usize)] = &[
    ("gcn", "conv", 645654, 103848436, 72000, 8),
    ("gcn", "conv-src", 1424526, 185743984, 102896904, 8),
    ("gcn", "b16", 750871, 72364872, 72000, 1),
    ("gsage", "conv", 1055560, 148995412, 144000, 8),
    ("gsage", "conv-src", 1834432, 230890960, 102968904, 8),
    ("gsage", "b16", 1106487, 116889744, 144000, 1),
    ("gsage-max", "conv", 16600462, 632222100, 44580000, 8),
    ("gsage-max", "conv-src", 17379334, 714117648, 147404904, 8),
    ("gsage-max", "b16", 12183862, 216174580, 44580000, 1),
];

#[test]
fn multi_shard_grids_are_bit_identical_under_both_traversal_orders() {
    let edges = generators::rmat_exact(3000, 12000, 9).unwrap();
    for &(net, df, cycles, reads, writes, grid_dim) in MULTI_SHARD_GOLDENS {
        let model = network(net).build(3703, 16, 6, 0).unwrap();
        let sim = Simulator::with_dataflow(GnneratorConfig::paper_default(), dataflow(df)).unwrap();
        let report = sim.simulate_edges(&model, &edges, "rmat3000").unwrap();
        assert_eq!(report.layers[0].grid_dim, grid_dim, "{net}/{df}");
        assert!(
            grid_dim == 1 || report.shard_occupancy() < 1.0,
            "{net}/{df}: the multi-shard grid should have empty cells to skip"
        );
        assert_eq!(
            (
                report.total_cycles,
                report.dram_read_bytes(),
                report.dram_write_bytes(),
            ),
            (cycles, reads, writes),
            "{net}/{df} diverged from the dense-grid simulator"
        );
    }
}
