//! Golden pins for the backend unification: the new sweep path — baseline
//! platforms as `BackendKind` scenario points, speedups read off the
//! accelerator points' baseline columns — must reproduce the Figure 3 and
//! Table V numbers the pre-refactor harness produced by calling the baseline
//! estimators directly.
//!
//! The constants below were captured from the old code path (per-workload
//! `GpuModel`/`HygcnModel` estimates stitched onto accelerator reports) at
//! `SuiteOptions::quick()` (scale 0.05, seed 42) immediately before the
//! refactor.

// The goldens are printed with 17 significant digits so they round-trip the
// captured f64s exactly; losing digits would weaken the pin.
#![allow(clippy::excessive_precision)]

use gnnerator_baselines::{Backend, GpuRooflineBackend, HygcnBackend};
use gnnerator_bench::experiments;
use gnnerator_bench::suite::{SuiteContext, SuiteOptions, Workload};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use std::sync::OnceLock;

fn context() -> &'static SuiteContext {
    static CONTEXT: OnceLock<SuiteContext> = OnceLock::new();
    CONTEXT.get_or_init(|| SuiteContext::materialize(&SuiteOptions::quick()).expect("synthesis"))
}

/// Figure 3 rows (label, blocked speedup, unblocked speedup) from the old
/// baseline-estimator path at scale 0.05, seed 42.
const FIGURE3_GOLDEN: [(&str, f64, f64); 9] = [
    ("cora-gcn", 1.07122422853362682e1, 9.45031304500214731e0),
    ("cora-gsage", 5.50392543483103580e0, 5.16924901002743375e0),
    (
        "cora-gsage-max",
        4.28510871370645496e0,
        4.25799794671750842e0,
    ),
    ("citeseer-gcn", 6.77108648368955990e0, 5.59953809418908754e0),
    (
        "citeseer-gsage",
        3.51162806094597002e0,
        3.20008906387413283e0,
    ),
    (
        "citeseer-gsage-max",
        3.95935683538648364e0,
        3.94347799687949063e0,
    ),
    ("pub-gcn", 1.21448939889047942e1, 7.96915959441570454e0),
    ("pub-gsage", 5.73644996040113764e0, 4.67393340700476045e0),
    (
        "pub-gsage-max",
        9.43539183414563887e0,
        8.90443396284391753e0,
    ),
];

const FIGURE3_GMEAN_GOLDEN: (f64, f64) = (6.30006160640159507e0, 5.53488037311781156e0);

/// Table V rows (dataset, with blocking, without blocking) from the old
/// path at scale 0.05, seed 42.
const TABLE5_GOLDEN: [(&str, f64, f64); 3] = [
    ("cora", 6.23080705406299229e-1, 5.49680222081109338e-1),
    ("citeseer", 4.37277949547483502e-1, 3.61619149620699021e-1),
    ("pubmed", 1.17169593313198028e0, 7.68836014195511064e-1),
];

fn assert_close(actual: f64, golden: f64, what: &str) {
    let tolerance = 1e-12 * golden.abs();
    assert!(
        (actual - golden).abs() <= tolerance,
        "{what}: {actual} != golden {golden}"
    );
}

#[test]
fn figure3_reproduces_the_pre_backend_refactor_numbers() {
    let (rows, gm_blocked, gm_unblocked) = experiments::figure3(context()).unwrap();
    assert_eq!(rows.len(), FIGURE3_GOLDEN.len());
    for (row, (label, blocked, unblocked)) in rows.iter().zip(FIGURE3_GOLDEN) {
        assert_eq!(row.label, label);
        assert_close(row.gnnerator, blocked, label);
        assert_close(row.without_blocking, unblocked, label);
    }
    assert_close(gm_blocked, FIGURE3_GMEAN_GOLDEN.0, "gmean blocked");
    assert_close(gm_unblocked, FIGURE3_GMEAN_GOLDEN.1, "gmean unblocked");
}

#[test]
fn table5_reproduces_the_pre_backend_refactor_numbers() {
    let rows = experiments::table5(context()).unwrap();
    assert_eq!(rows.len(), TABLE5_GOLDEN.len());
    for (row, (dataset, with_blocking, without_blocking)) in rows.iter().zip(TABLE5_GOLDEN) {
        assert_eq!(row.dataset, dataset);
        assert_close(row.with_blocking, with_blocking, dataset);
        assert_close(row.without_blocking, without_blocking, dataset);
    }
}

#[test]
fn unified_sweep_speedups_equal_direct_model_estimates() {
    // Independent of any golden constants: the speedup columns the unified
    // sweep emits must equal recomputing the old way — a direct baseline
    // model estimate divided by the accelerator report's seconds.
    let ctx = context();
    for dataset in DatasetKind::ALL {
        let workload = Workload::new(dataset, NetworkKind::Gcn);
        let result = ctx.run_workload(&workload).unwrap();
        let graph = ctx.dataset(dataset).unwrap();
        let model = ctx.model_for(&workload).unwrap();
        let gpu = GpuRooflineBackend::rtx_2080_ti()
            .evaluate(&model, graph.num_nodes(), graph.num_edges())
            .unwrap();
        let hygcn = HygcnBackend::for_dataset(graph.spec.name)
            .evaluate(&model, graph.num_nodes(), graph.num_edges())
            .unwrap();
        assert_eq!(
            result.speedup_blocked_vs_gpu(),
            gpu.seconds / result.gnnerator_blocked.seconds(),
            "{workload}"
        );
        assert_eq!(
            result.speedup_blocked_vs_hygcn(),
            hygcn.seconds / result.gnnerator_blocked.seconds(),
            "{workload}"
        );
        assert_eq!(result.gpu.seconds, gpu.seconds, "{workload}");
        assert_eq!(result.hygcn.seconds, hygcn.seconds, "{workload}");
    }
}
