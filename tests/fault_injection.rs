//! Failure-path determinism of the sweep engine under injected faults:
//! [`SweepRunner::run`] reports the lowest-index failing scenario's error —
//! identically to [`SweepRunner::run_serial`], run after run, regardless of
//! thread schedule — and a sweep that suffered artifact-cache faults
//! mid-run still produces (and its warm rerun reproduces) results
//! bit-identical to a clean cold run: cache persistence is best-effort and
//! can never change what is computed.
//!
//! Every test arms the process-global `gnnerator-faults` registry, so they
//! serialise on one mutex and clear the registry on entry.

use gnnerator::{
    BackendKind, DataflowConfig, GnneratorConfig, ScenarioResult, ScenarioSpec, SweepRunner,
};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::ArtifactCache;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialises tests that touch the process-global fault registry.
fn fault_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = gnnerator_faults::lock_recover(&GUARD);
    gnnerator_faults::clear();
    guard
}

fn scratch_dir(label: &str) -> PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gnnerator-fault-cache-{}-{label}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn scenario(kind: DatasetKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(
        NetworkKind::Gcn,
        kind.spec().scaled(0.03),
        seed,
        16,
        4,
        GnneratorConfig::paper_default(),
        DataflowConfig::blocked(64),
    )
}

/// A 6-point mixed-backend grid over two session keys (one per dataset).
fn grid() -> Vec<ScenarioSpec> {
    let mut scenarios = Vec::new();
    for kind in [DatasetKind::Cora, DatasetKind::Citeseer] {
        for backend in [
            BackendKind::Gnnerator,
            BackendKind::GpuRoofline,
            BackendKind::Hygcn,
        ] {
            scenarios.push(scenario(kind, 13).with_backend(backend));
        }
    }
    scenarios
}

fn assert_bit_identical(reference: &[ScenarioResult], observed: &[ScenarioResult], context: &str) {
    assert_eq!(reference.len(), observed.len(), "{context}: result count");
    for (i, (want, got)) in reference.iter().zip(observed).enumerate() {
        assert_eq!(
            want.seconds().to_bits(),
            got.seconds().to_bits(),
            "{context}: point {i} seconds diverged ({} != {})",
            want.seconds(),
            got.seconds()
        );
        assert_eq!(want.evaluation, got.evaluation, "{context}: point {i}");
        assert_eq!(want.num_nodes, got.num_nodes, "{context}: point {i}");
        assert_eq!(want.num_edges, got.num_edges, "{context}: point {i}");
    }
}

#[test]
fn sweep_run_reports_the_lowest_index_error_under_injected_failure() {
    let _guard = fault_guard();
    // Splice a doomed scenario (fresh seed, so an unwarmed session key)
    // into the middle of the healthy grid, plus a key-sharing twin at the
    // tail — the reported error must be the lowest-index one's.
    let mut scenarios = grid();
    let doomed = scenario(DatasetKind::Cora, 99);
    scenarios.insert(2, doomed.clone());
    scenarios.push(doomed);

    let runner = SweepRunner::new();
    // Warm every healthy session key so only the doomed key cold-builds
    // while the fault is armed — its two scenarios are the only failures.
    for healthy in grid() {
        runner.run_one(&healthy).expect("healthy grid runs clean");
    }
    gnnerator_faults::configure("session_build:error", 0).unwrap();

    let parallel = runner.run(&scenarios).unwrap_err().to_string();
    let lowest = runner.run_one(&scenarios[2]).unwrap_err().to_string();
    assert_eq!(
        parallel, lowest,
        "run() must report the lowest-index failing scenario's error"
    );
    assert!(
        parallel.contains("session_build"),
        "the injected failure must stay typed end to end: {parallel}"
    );
    let serial = runner.run_serial(&scenarios).unwrap_err().to_string();
    assert_eq!(parallel, serial, "parallel and serial must agree on errors");
    let again = runner.run(&scenarios).unwrap_err().to_string();
    assert_eq!(
        parallel, again,
        "the reported error must be run-to-run stable"
    );

    // Clearing the fault heals the sweep completely — nothing is cached
    // from the failed attempts.
    gnnerator_faults::clear();
    let results = runner.run(&scenarios).expect("cleared faults run clean");
    assert_eq!(results.len(), scenarios.len());
}

#[test]
fn warm_rerun_after_mid_sweep_cache_faults_matches_a_clean_cold_run() {
    let _guard = fault_guard();
    let scenarios = grid();

    let clean_dir = scratch_dir("clean");
    let clean = SweepRunner::new().with_artifact_cache(Arc::new(ArtifactCache::new(&clean_dir)));
    let reference = clean.run(&scenarios).expect("clean cold run");

    // A cold sweep with every other artifact read and write failing:
    // persistence is best-effort, so the run completes — bit-identically —
    // leaving whatever subset of artifacts happened to survive on disk.
    let faulted_dir = scratch_dir("faulted");
    gnnerator_faults::configure("cache_write:io@2,cache_read:io@2", 0).unwrap();
    let faulted =
        SweepRunner::new().with_artifact_cache(Arc::new(ArtifactCache::new(&faulted_dir)));
    let mid_sweep = faulted.run(&scenarios).expect("faulted sweep completes");
    assert_bit_identical(&reference, &mid_sweep, "mid-sweep cache faults");

    // The warm rerun over that partially-persisted cache, faults cleared:
    // mixed artifact hits and fresh rebuilds must reproduce the clean cold
    // run bit for bit.
    gnnerator_faults::clear();
    let warm = SweepRunner::new().with_artifact_cache(Arc::new(ArtifactCache::new(&faulted_dir)));
    let rerun = warm.run(&scenarios).expect("warm rerun completes");
    assert_bit_identical(&reference, &rerun, "warm rerun after faults");

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&faulted_dir).ok();
}
