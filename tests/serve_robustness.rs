//! Robustness guarantees of the serving layer under injected faults: a
//! panicking eval worker answers its in-flight jobs with a typed `500` and
//! is respawned (and the poisoned locks it leaves behind never wedge later
//! requests — the regression test for replacing `lock().expect(...)` with
//! poison-recovering helpers); `/readyz` flips unready while the admission
//! queue is full; queued requests past their `X-Deadline-Ms` are answered
//! `503` without being evaluated; and repeated cold-build failures trip the
//! per-key circuit breaker, which re-closes after its backoff window.
//!
//! Every test arms the process-global `gnnerator-faults` registry, so they
//! serialise on one mutex and clear the registry on entry.

use gnnerator_serve::{client, BreakerConfig, Json, ServeConfig, SessionServer};
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serialises tests that touch the process-global fault registry.
fn fault_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = gnnerator_faults::lock_recover(&GUARD);
    gnnerator_faults::clear();
    guard
}

/// A tiny scaled-down request so the suite stays fast.
fn body(seed: u64) -> String {
    format!(
        "{{\"dataset\": \"cora\", \"network\": \"gcn\", \"backend\": \"gnnerator\", \
         \"scale\": 0.03, \"seed\": {seed}, \"hidden_dim\": 8, \"out_dim\": 4}}"
    )
}

fn start_server(config: ServeConfig) -> (SessionServer, SocketAddr) {
    let server =
        SessionServer::start("127.0.0.1:0", config).expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

fn stats(addr: SocketAddr) -> Json {
    client::get(addr, "/stats")
        .expect("stats request succeeds")
        .json()
        .expect("stats are JSON")
}

fn stat_u64(stats: &Json, section: &str, key: &str) -> u64 {
    stats
        .get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing stats field {section}.{key}"))
}

/// Mutes the backtraces of *injected* worker panics (they are the test's
/// point, and there are many); every other panic prints as usual.
fn mute_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains("injected panic at failpoint") {
            default_hook(info);
        }
    }));
}

#[test]
fn panicked_workers_answer_500_and_are_respawned() {
    let _guard = fault_guard();
    let (server, addr) = start_server(ServeConfig {
        workers: 2,
        pool_capacity: 4,
        ..ServeConfig::default()
    });
    let warm = body(9);
    let response = client::post(addr, "/simulate", &warm).expect("warm-up succeeds");
    assert_eq!(response.status, 200, "{}", response.body);

    mute_injected_panics();
    gnnerator_faults::configure("eval:panic@2", 0).unwrap();
    // Sequential requests against a warm session: evaluation hits 1..=6,
    // every 2nd one panics its worker mid-batch. The in-flight job must be
    // answered with a typed 500 — never left hanging — and the worker
    // respawned before the next request.
    let mut statuses = Vec::new();
    for _ in 0..6 {
        let response = client::post(addr, "/simulate", &warm).expect("request answered, not hung");
        if response.status == 500 {
            assert!(
                response.body.contains("worker panicked"),
                "untyped 500: {}",
                response.body
            );
        } else {
            assert_eq!(response.status, 200, "{}", response.body);
        }
        statuses.push(response.status);
    }
    assert!(statuses.contains(&500), "eval:panic@2 never surfaced a 500");
    assert!(
        statuses.contains(&200),
        "every request failed; workers were not respawned between panics"
    );

    // Recovery: with the faults cleared, the server serves — and its stats
    // endpoint works — despite every mutex the panicking workers poisoned.
    // (The regression test for poison-recovering locks: before them, the
    // first panic wedged the queue and metrics for every later request.)
    gnnerator_faults::clear();
    let _ = std::panic::take_hook();
    let response = client::post(addr, "/simulate", &warm).expect("post-recovery request");
    assert_eq!(response.status, 200, "{}", response.body);
    let stats = stats(addr);
    let panics = stat_u64(&stats, "workers", "panics");
    assert!(panics > 0, "worker panics were not counted");
    assert_eq!(stat_u64(&stats, "workers", "respawns"), panics);
    assert_eq!(
        stat_u64(&stats, "workers", "alive"),
        stat_u64(&stats, "workers", "configured"),
        "worker pool did not recover to full strength"
    );
    server.shutdown();
}

#[test]
fn readyz_flips_unready_while_the_queue_is_full() {
    let _guard = fault_guard();
    let (server, addr) = start_server(ServeConfig {
        workers: 1,
        queue_depth: 1,
        pool_capacity: 4,
        ..ServeConfig::default()
    });
    let warm = body(11);
    let response = client::post(addr, "/simulate", &warm).expect("warm-up succeeds");
    assert_eq!(response.status, 200, "{}", response.body);
    let ready = client::get(addr, "/readyz").expect("readyz answers");
    assert_eq!(
        ready.status, 200,
        "idle server must be ready: {}",
        ready.body
    );

    // Slow evaluation pins the single worker; a second request then sits in
    // the depth-1 queue, filling it.
    gnnerator_faults::configure("eval:delay=900ms", 0).unwrap();
    let in_flight = std::thread::scope(|scope| {
        let first = scope.spawn(|| client::post(addr, "/simulate", &warm));
        std::thread::sleep(Duration::from_millis(150));
        let second = scope.spawn(|| client::post(addr, "/simulate", &warm));
        std::thread::sleep(Duration::from_millis(150));

        // Mid-flight: liveness stays green, readiness flips with the queue
        // component itemised.
        let health = client::get(addr, "/healthz").expect("healthz answers");
        assert_eq!(health.status, 200, "{}", health.body);
        let ready = client::get(addr, "/readyz").expect("readyz answers");
        assert_eq!(
            ready.status, 503,
            "readyz must flip with the queue full: {}",
            ready.body
        );
        let probe = ready.json().expect("readyz body is JSON");
        assert_eq!(
            probe
                .get("queue")
                .and_then(|q| q.get("ready"))
                .and_then(Json::as_bool),
            Some(false),
            "readyz must name the queue as the unready component: {}",
            ready.body
        );

        [first.join().unwrap(), second.join().unwrap()]
    });
    for outcome in in_flight {
        let response = outcome.expect("queued request answered, not hung");
        assert_eq!(response.status, 200, "{}", response.body);
    }

    gnnerator_faults::clear();
    let ready = client::get(addr, "/readyz").expect("readyz answers");
    assert_eq!(ready.status, 200, "drained server must be ready again");
    server.shutdown();
}

#[test]
fn queued_requests_past_their_deadline_are_answered_503() {
    let _guard = fault_guard();
    let (server, addr) = start_server(ServeConfig {
        workers: 1,
        pool_capacity: 4,
        ..ServeConfig::default()
    });
    let warm = body(13);
    let response = client::post(addr, "/simulate", &warm).expect("warm-up succeeds");
    assert_eq!(response.status, 200, "{}", response.body);

    // Pin the single worker with a slow evaluation, then enqueue a request
    // whose 50 ms budget expires long before the worker frees up.
    gnnerator_faults::configure("eval:delay=700ms", 0).unwrap();
    let expired = std::thread::scope(|scope| {
        let slow = scope.spawn(|| client::post(addr, "/simulate", &warm));
        std::thread::sleep(Duration::from_millis(150));
        let deadline = client::request_with_headers(
            addr,
            "POST",
            "/simulate",
            &warm,
            &[("X-Deadline-Ms", "50")],
        )
        .expect("deadlined request answered, not hung");
        let slow = slow.join().unwrap().expect("slow request answered");
        assert_eq!(slow.status, 200, "{}", slow.body);
        deadline
    });
    assert_eq!(
        expired.status, 503,
        "expired deadline must be a 503: {}",
        expired.body
    );
    assert_eq!(
        expired.header("retry-after"),
        Some("1"),
        "deadline 503s must invite a retry"
    );
    assert!(
        expired.body.contains("deadline"),
        "untyped deadline error: {}",
        expired.body
    );
    assert!(
        stat_u64(&stats(addr), "admission", "expired") >= 1,
        "expired deadlines must be counted"
    );

    gnnerator_faults::clear();
    server.shutdown();
}

#[test]
fn repeated_cold_build_failures_trip_the_breaker_which_recloses_after_backoff() {
    let _guard = fault_guard();
    let (server, addr) = start_server(ServeConfig {
        workers: 2,
        pool_capacity: 4,
        breaker: BreakerConfig {
            threshold: 2,
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(4),
        },
        ..ServeConfig::default()
    });
    gnnerator_faults::configure("session_build:error", 0).unwrap();

    // A fresh session key that can only cold-build: the first two attempts
    // fail (typed 500s), the second trips the breaker, and the third is
    // rejected without a build attempt.
    let doomed = body(77);
    for attempt in 0..2 {
        let response = client::post(addr, "/simulate", &doomed).expect("request answered");
        assert_eq!(response.status, 500, "attempt {attempt}: {}", response.body);
        assert!(
            response.body.contains("session_build"),
            "untyped build failure: {}",
            response.body
        );
    }
    let rejected = client::post(addr, "/simulate", &doomed).expect("request answered");
    assert_eq!(
        rejected.status, 503,
        "breaker must quarantine the key: {}",
        rejected.body
    );
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert!(
        rejected.body.contains("circuit breaker"),
        "untyped rejection: {}",
        rejected.body
    );

    // Clearing the fault does not close the breaker early: the key stays
    // quarantined until its backoff window elapses, then one half-open
    // trial succeeds and the key serves warm again.
    gnnerator_faults::clear();
    let still_open = client::post(addr, "/simulate", &doomed).expect("request answered");
    assert_eq!(still_open.status, 503, "{}", still_open.body);
    std::thread::sleep(Duration::from_millis(1100));
    let trial = client::post(addr, "/simulate", &doomed).expect("request answered");
    assert_eq!(
        trial.status, 200,
        "half-open trial must close the breaker: {}",
        trial.body
    );
    let warm = client::post(addr, "/simulate", &doomed).expect("request answered");
    assert_eq!(warm.status, 200, "{}", warm.body);

    let stats = stats(addr);
    assert!(stat_u64(&stats, "pool", "breaker_trips") >= 1);
    assert!(stat_u64(&stats, "pool", "breaker_rejections") >= 2);
    server.shutdown();
}
