//! Batching-correctness tests: session-keyed coalescing must be invisible
//! in the payload (bit-identical to `SweepRunner::run_one`) and visible in
//! the counters (`batched + solo == total`, `batch_size > 1` under
//! overlapping-key load), and a full admission queue must shed with `429`
//! + `Retry-After` rather than queue unbounded work.

use gnnerator::SweepRunner;
use gnnerator_serve::{
    client::ClientConnection, scenario_from_json, Json, ServeConfig, SessionServer,
};
use std::net::SocketAddr;

fn body(dataset: &str, backend: &str, seed: u64, scale: f64) -> String {
    format!(
        "{{\"dataset\": \"{dataset}\", \"network\": \"gcn\", \"backend\": \"{backend}\", \
         \"scale\": {scale}, \"seed\": {seed}, \"hidden_dim\": 8, \"out_dim\": 4}}"
    )
}

/// The warm, shared-key scenario every test coalesces on.
fn warm_body(backend: &str) -> String {
    body("cora", backend, 9, 0.03)
}

fn start_server(config: ServeConfig) -> (SessionServer, SocketAddr) {
    let server =
        SessionServer::start("127.0.0.1:0", config).expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

fn reference(request_body: &str) -> gnnerator::ScenarioResult {
    let scenario = scenario_from_json(&Json::parse(request_body).expect("valid JSON"))
        .expect("valid scenario");
    SweepRunner::new()
        .run_one(&scenario)
        .expect("reference evaluation succeeds")
}

fn assert_bit_identical(point: &Json, reference: &gnnerator::ScenarioResult, context: &str) {
    let seconds = point
        .get("seconds")
        .and_then(Json::as_f64)
        .expect("seconds field");
    assert_eq!(
        seconds.to_bits(),
        reference.seconds().to_bits(),
        "{context}: seconds must be bit-identical to run_one"
    );
    assert_eq!(
        point.get("total_cycles").and_then(Json::as_u64),
        reference.evaluation.total_cycles,
        "{context}"
    );
    if let Some(expected) = reference.speedup_vs_gpu() {
        let speedup = point
            .get("speedup_vs_gpu")
            .and_then(Json::as_f64)
            .expect("speedup field");
        assert_eq!(
            speedup.to_bits(),
            expected.to_bits(),
            "{context}: speedups must be bit-identical"
        );
    }
}

#[test]
fn concurrent_overlapping_keys_stay_bit_identical_to_run_one() {
    // One evaluation worker maximises queue overlap, hence coalescing.
    let (server, addr) = start_server(ServeConfig {
        workers: 1,
        pool_capacity: 8,
        ..ServeConfig::default()
    });
    // Three bodies, two session keys: the backend is not part of the key,
    // so cora/gnnerator and cora/gpu-roofline coalesce onto one session.
    let bodies = [
        warm_body("gnnerator"),
        warm_body("gpu-roofline"),
        body("citeseer", "gnnerator", 9, 0.03),
    ];
    let references: Vec<gnnerator::ScenarioResult> = bodies.iter().map(|b| reference(b)).collect();
    let rounds = 4;
    let bodies = &bodies;
    let points: Vec<(usize, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..bodies.len() * rounds)
            .map(|i| {
                scope.spawn(move || {
                    let mut connection = ClientConnection::new(addr);
                    let response = connection
                        .post("/simulate", &bodies[i % bodies.len()])
                        .expect("request succeeds");
                    assert!(response.is_ok(), "{}", response.body);
                    (i % bodies.len(), response.json().expect("point JSON"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (index, point) in &points {
        assert_bit_identical(point, &references[*index], &format!("body {index}"));
        let batch_size = point
            .get("batch_size")
            .and_then(Json::as_u64)
            .expect("batch_size field");
        assert!(batch_size >= 1, "batch_size is always at least 1");
    }
    server.shutdown();
}

#[test]
fn pipelined_same_key_requests_coalesce_and_counters_stay_coherent() {
    let (server, addr) = start_server(ServeConfig {
        workers: 1,
        pool_capacity: 8,
        max_batch: 16,
        ..ServeConfig::default()
    });
    let mut connection = ClientConnection::new(addr);
    // Warm the shared-key session so the coalesced batch evaluates fast.
    let warm = warm_body("gnnerator");
    let warmed = connection.post("/simulate", &warm).expect("warm-up");
    assert!(warmed.is_ok(), "{}", warmed.body);
    let expected = reference(&warm);

    // Pipeline a cold blocker (fresh seed → forced session build occupying
    // the single worker) followed by six warm same-key requests: they all
    // queue while the blocker builds, so the worker drains them as one
    // coalesced batch. Timing-dependent in principle, so retry with a new
    // cold seed if a blazing build ever beats the pipelined bytes.
    let mut observed_batch = 0u64;
    for attempt in 0..6u64 {
        let blocker = body("citeseer", "gnnerator", 100 + attempt, 0.05);
        let warm_ref = warm.as_str();
        let requests = [
            ("POST", "/simulate", blocker.as_str()),
            ("POST", "/simulate", warm_ref),
            ("POST", "/simulate", warm_ref),
            ("POST", "/simulate", warm_ref),
            ("POST", "/simulate", warm_ref),
            ("POST", "/simulate", warm_ref),
            ("POST", "/simulate", warm_ref),
        ];
        let responses = connection.pipeline(&requests).expect("pipelined requests");
        assert_eq!(responses.len(), requests.len());
        for (index, response) in responses.iter().enumerate() {
            assert!(response.is_ok(), "response {index}: {}", response.body);
            let point = response.json().expect("point JSON");
            if index > 0 {
                assert_bit_identical(
                    &point,
                    &expected,
                    &format!("attempt {attempt} response {index}"),
                );
            }
            let batch_size = point
                .get("batch_size")
                .and_then(Json::as_u64)
                .expect("batch_size field");
            observed_batch = observed_batch.max(batch_size);
        }
        if observed_batch >= 2 {
            break;
        }
    }
    assert!(
        observed_batch >= 2,
        "overlapping same-key requests never coalesced (best batch_size {observed_batch})"
    );

    // Counters must be coherent: every /simulate that reached a worker is
    // either batched or solo, never both, never neither.
    let stats = connection.get("/stats").expect("stats");
    let json = stats.json().expect("stats JSON");
    let batch = json.get("batch").expect("batch section");
    let batched = batch
        .get("batched_requests")
        .and_then(Json::as_u64)
        .expect("batched_requests");
    let solo = batch
        .get("solo_requests")
        .and_then(Json::as_u64)
        .expect("solo_requests");
    let simulate_requests = json
        .get("endpoints")
        .and_then(|e| e.get("simulate"))
        .and_then(|s| s.get("requests"))
        .and_then(Json::as_u64)
        .expect("simulate endpoint requests");
    assert_eq!(
        batched + solo,
        simulate_requests,
        "batched + solo must equal every /simulate a worker answered"
    );
    let max_batch_size = batch
        .get("max_batch_size")
        .and_then(Json::as_u64)
        .expect("max_batch_size");
    assert!(max_batch_size >= 2, "the coalesced pass shows up in /stats");
    assert!(
        max_batch_size <= 16,
        "never beyond the configured max_batch"
    );
    let latency = json.get("latency").expect("latency section");
    for stage in ["queue_wait", "evaluate", "serialize"] {
        let histogram = latency.get(stage).expect("stage histogram");
        assert!(
            histogram.get("count").and_then(Json::as_u64).unwrap_or(0) > 0,
            "{stage} histogram recorded samples"
        );
        let p50 = histogram.get("p50_seconds").and_then(Json::as_f64).unwrap();
        let p99 = histogram.get("p99_seconds").and_then(Json::as_f64).unwrap();
        assert!(p50 <= p99, "{stage}: p50 {p50} <= p99 {p99}");
    }
    server.shutdown();
}

#[test]
fn a_full_queue_sheds_429_with_retry_after_and_nothing_else_breaks() {
    let (server, addr) = start_server(ServeConfig {
        workers: 1,
        pool_capacity: 8,
        queue_depth: 1,
        connection_inflight: 8,
        ..ServeConfig::default()
    });
    let mut connection = ClientConnection::new(addr);
    // Warm the shared key so post-shed requests answer instantly.
    let warm = warm_body("gnnerator");
    assert!(connection
        .post("/simulate", &warm)
        .expect("warm-up")
        .is_ok());

    // A cold blocker occupies the only worker; with queue depth 1, at most
    // one of the following warm requests queues — the rest must shed.
    let blocker = body("citeseer", "gnnerator", 777, 0.08);
    let warm_ref = warm.as_str();
    let requests = [
        ("POST", "/simulate", blocker.as_str()),
        ("POST", "/simulate", warm_ref),
        ("POST", "/simulate", warm_ref),
        ("POST", "/simulate", warm_ref),
        ("POST", "/simulate", warm_ref),
        ("POST", "/simulate", warm_ref),
    ];
    let responses = connection.pipeline(&requests).expect("pipelined requests");
    let mut shed = 0u64;
    for (index, response) in responses.iter().enumerate() {
        assert!(
            response.status == 200 || response.status == 429,
            "response {index}: unexpected status {} ({})",
            response.status,
            response.body
        );
        if response.status == 429 {
            shed += 1;
            assert_eq!(
                response.header("retry-after"),
                Some("1"),
                "shed responses must carry Retry-After"
            );
            assert!(
                response.keep_alive(),
                "shedding a request must not kill the connection"
            );
        }
    }
    // The connection survived shedding: it still answers.
    let stats = connection.get("/stats").expect("stats after shedding");
    let json = stats.json().expect("stats JSON");
    let admission = json.get("admission").expect("admission section");
    assert_eq!(
        admission.get("shed").and_then(Json::as_u64),
        Some(shed),
        "the shed counter matches the 429s the client saw"
    );
    let peak = admission
        .get("peak_queue_depth")
        .and_then(Json::as_u64)
        .expect("peak_queue_depth");
    assert!(peak <= 1, "queue depth stayed bounded (peak {peak})");
    server.shutdown();
}
