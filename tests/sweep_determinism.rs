//! Cross-crate determinism guarantees of the scenario-sweep engine: parallel
//! execution over compile-once sessions must be observably identical — bit
//! for bit — to serial, freshly-compiled, per-run evaluation, for every
//! backend (the simulated accelerator and both analytical baselines), and
//! must not depend on the order scenarios are enumerated in.

use gnnerator::{
    Backend, BackendEvaluation, BackendKind, DataflowConfig, GnneratorConfig, GpuRooflineBackend,
    HygcnBackend, Report, ScenarioSpec, SimSession, Simulator, SweepRunner,
};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;

/// A 36-point accelerator grid: 3 datasets × 3 networks × 4 dataflow/config
/// variants, at a small scale so the full matrix stays fast.
fn accelerator_grid() -> Vec<ScenarioSpec> {
    let base = GnneratorConfig::paper_default();
    let variants = [
        (base.clone(), DataflowConfig::blocked(64)),
        (base.clone(), DataflowConfig::blocked(32)),
        (base.clone(), DataflowConfig::conventional()),
        (
            base.with_double_feature_bandwidth(),
            DataflowConfig::blocked(64),
        ),
    ];
    let mut scenarios = Vec::new();
    for kind in DatasetKind::ALL {
        for network in NetworkKind::ALL {
            for (config, dataflow) in &variants {
                scenarios.push(ScenarioSpec::new(
                    network,
                    kind.spec().scaled(0.04),
                    13,
                    16,
                    4,
                    config.clone(),
                    *dataflow,
                ));
            }
        }
    }
    scenarios
}

/// The accelerator grid extended with every baseline backend per (dataset,
/// network) pair: a 54-point grid mixing all three `BackendKind`s.
fn mixed_backend_grid() -> Vec<ScenarioSpec> {
    let mut scenarios = accelerator_grid();
    for kind in DatasetKind::ALL {
        for network in NetworkKind::ALL {
            for backend in [BackendKind::GpuRoofline, BackendKind::Hygcn] {
                scenarios.push(
                    ScenarioSpec::new(
                        network,
                        kind.spec().scaled(0.04),
                        13,
                        16,
                        4,
                        GnneratorConfig::paper_default(),
                        DataflowConfig::blocked(64),
                    )
                    .with_backend(backend),
                );
            }
        }
    }
    scenarios
}

/// The pre-session way to run one accelerator scenario: synthesise, build,
/// compile and simulate from scratch with a throwaway `Simulator`.
fn fresh_per_run_report(scenario: &ScenarioSpec) -> Report {
    let dataset = scenario.dataset.synthesize(scenario.seed).unwrap();
    let model = scenario
        .network
        .build(
            dataset.features.dim(),
            scenario.hidden_dim,
            scenario.out_dim,
            scenario.hidden_layers,
        )
        .unwrap();
    Simulator::with_dataflow(scenario.config.clone(), scenario.dataflow)
        .unwrap()
        .simulate(&model, &dataset)
        .unwrap()
}

/// The sweep-free way to evaluate any scenario: a fresh model and a direct
/// backend evaluation, no shared caches.
fn fresh_per_run_evaluation(scenario: &ScenarioSpec) -> BackendEvaluation {
    let dataset = scenario.dataset.synthesize(scenario.seed).unwrap();
    let model = scenario
        .network
        .build(
            dataset.features.dim(),
            scenario.hidden_dim,
            scenario.out_dim,
            scenario.hidden_layers,
        )
        .unwrap();
    match scenario.backend {
        BackendKind::Gnnerator => fresh_per_run_report(scenario).to_evaluation(),
        BackendKind::GpuRoofline => GpuRooflineBackend::rtx_2080_ti()
            .evaluate(&model, dataset.num_nodes(), dataset.num_edges())
            .unwrap(),
        BackendKind::Hygcn => HygcnBackend::for_dataset(scenario.dataset.name)
            .evaluate(&model, dataset.num_nodes(), dataset.num_edges())
            .unwrap(),
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_fresh_serial_simulation() {
    let scenarios = accelerator_grid();
    assert!(scenarios.len() >= 32, "{} points", scenarios.len());

    let runner = SweepRunner::new();
    let parallel = runner.run(&scenarios).unwrap();
    assert_eq!(parallel.len(), scenarios.len());

    for (scenario, result) in scenarios.iter().zip(&parallel) {
        let fresh = fresh_per_run_report(scenario);
        assert_eq!(result.report.as_ref(), Some(&fresh), "{scenario}");
    }
}

#[test]
fn mixed_backend_sweep_is_bit_identical_to_fresh_evaluation() {
    let scenarios = mixed_backend_grid();
    assert_eq!(scenarios.len(), 54);
    for backend in BackendKind::ALL {
        assert!(
            scenarios.iter().any(|s| s.backend == backend),
            "grid must include {backend}"
        );
    }

    let runner = SweepRunner::new();
    let parallel = runner.run(&scenarios).unwrap();
    for (scenario, result) in scenarios.iter().zip(&parallel) {
        let fresh = fresh_per_run_evaluation(scenario);
        assert_eq!(result.evaluation, fresh, "{scenario}");
        assert_eq!(
            result.report.is_some(),
            scenario.backend.is_accelerator(),
            "{scenario}"
        );
    }
}

#[test]
fn mixed_backend_parallel_and_serial_runner_paths_agree() {
    let scenarios = mixed_backend_grid();
    let runner = SweepRunner::new();
    let parallel = runner.run(&scenarios).unwrap();
    let serial = runner.run_serial(&scenarios).unwrap();
    assert_eq!(parallel, serial);
}

#[test]
fn scenario_order_does_not_change_results() {
    let scenarios = mixed_backend_grid();
    let mut reversed = scenarios.clone();
    reversed.reverse();
    // Interleave a third order: odd indices first, then even.
    let mut interleaved: Vec<ScenarioSpec> = scenarios.iter().skip(1).step_by(2).cloned().collect();
    interleaved.extend(scenarios.iter().step_by(2).cloned());

    let forward = SweepRunner::new().run(&scenarios).unwrap();
    let backward = SweepRunner::new().run(&reversed).unwrap();
    let shuffled = SweepRunner::new().run(&interleaved).unwrap();

    let find = |results: &[gnnerator::ScenarioResult], scenario: &ScenarioSpec| {
        results
            .iter()
            .find(|r| &r.scenario == scenario)
            .unwrap_or_else(|| panic!("missing {scenario}"))
            .clone()
    };
    for scenario in &scenarios {
        let a = find(&forward, scenario);
        let b = find(&backward, scenario);
        let c = find(&shuffled, scenario);
        assert_eq!(a, b, "{scenario}");
        assert_eq!(a, c, "{scenario}");
    }
}

#[test]
fn repeated_sweeps_over_one_runner_are_stable() {
    let scenarios = mixed_backend_grid();
    let runner = SweepRunner::new();
    let first = runner.run(&scenarios).unwrap();
    // Second run hits every cache (datasets, sessions, shard plans).
    let second = runner.run(&scenarios).unwrap();
    assert_eq!(first, second);
    assert_eq!(runner.cached_datasets(), 3);
    // Baseline points share the accelerator points' sessions.
    assert_eq!(runner.cached_sessions(), 9);
}

#[test]
fn accelerator_speedup_columns_match_dedicated_baseline_points() {
    // The baseline seconds an accelerator point carries must equal what the
    // dedicated baseline points of the same grid produced — one sweep, one
    // source of truth for every speedup figure.
    let scenarios = mixed_backend_grid();
    let runner = SweepRunner::new();
    let results = runner.run(&scenarios).unwrap();
    let baseline_seconds = |scenario: &ScenarioSpec, backend: BackendKind| {
        results
            .iter()
            .find(|r| {
                r.scenario.backend == backend
                    && r.scenario.dataset == scenario.dataset
                    && r.scenario.network == scenario.network
            })
            .unwrap_or_else(|| panic!("missing {backend} twin for {scenario}"))
            .seconds()
    };
    for result in results.iter().filter(|r| r.backend().is_accelerator()) {
        let columns = result.baseline_seconds.unwrap();
        assert_eq!(
            columns.gpu,
            baseline_seconds(&result.scenario, BackendKind::GpuRoofline),
            "{}",
            result.scenario
        );
        assert_eq!(
            columns.hygcn,
            baseline_seconds(&result.scenario, BackendKind::Hygcn),
            "{}",
            result.scenario
        );
        assert!(result.speedup_vs_gpu().unwrap().is_finite());
        assert!(result.speedup_vs_hygcn().unwrap().is_finite());
    }
}

#[test]
fn session_reuse_matches_fresh_compilation_end_to_end() {
    let dataset = DatasetKind::Pubmed
        .spec()
        .scaled(0.04)
        .synthesize(21)
        .unwrap();
    let model = NetworkKind::GraphsagePool
        .build_paper_config(dataset.features.dim(), 3)
        .unwrap();
    let session = SimSession::new(model.clone(), &dataset).unwrap();
    let config = GnneratorConfig::paper_default();

    // Exercise the same session across many dataflows, interleaved with
    // repeats, and compare every report against a from-scratch compile.
    let dataflows = [
        DataflowConfig::blocked(64),
        DataflowConfig::conventional(),
        DataflowConfig::blocked(16),
        DataflowConfig::blocked(64),
        DataflowConfig::conventional(),
    ];
    for dataflow in dataflows {
        let reused = session.simulate(&config, dataflow).unwrap();
        let fresh_session = SimSession::new(model.clone(), &dataset).unwrap();
        let fresh = fresh_session.simulate(&config, dataflow).unwrap();
        assert_eq!(reused, fresh, "{dataflow}");
    }
    // The repeats above must not have grown the plan cache.
    assert!(session.cached_shard_plans() <= 3);
}
