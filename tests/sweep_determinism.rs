//! Cross-crate determinism guarantees of the scenario-sweep engine: parallel
//! execution over compile-once sessions must be observably identical — bit
//! for bit — to serial, freshly-compiled, per-run simulation, and must not
//! depend on the order scenarios are enumerated in.

use gnnerator::{
    DataflowConfig, GnneratorConfig, Report, ScenarioSpec, SimSession, Simulator, SweepRunner,
};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;

/// A 36-point grid: 3 datasets × 3 networks × 4 dataflow/config variants, at
/// a small scale so the full matrix stays fast.
fn scenario_grid() -> Vec<ScenarioSpec> {
    let base = GnneratorConfig::paper_default();
    let variants = [
        (base.clone(), DataflowConfig::blocked(64)),
        (base.clone(), DataflowConfig::blocked(32)),
        (base.clone(), DataflowConfig::conventional()),
        (
            base.with_double_feature_bandwidth(),
            DataflowConfig::blocked(64),
        ),
    ];
    let mut scenarios = Vec::new();
    for kind in DatasetKind::ALL {
        for network in NetworkKind::ALL {
            for (config, dataflow) in &variants {
                scenarios.push(ScenarioSpec::new(
                    network,
                    kind.spec().scaled(0.04),
                    13,
                    16,
                    4,
                    config.clone(),
                    *dataflow,
                ));
            }
        }
    }
    scenarios
}

/// The pre-session way to run one scenario: synthesise, build, compile and
/// simulate from scratch with a throwaway `Simulator`.
fn fresh_per_run_report(scenario: &ScenarioSpec) -> Report {
    let dataset = scenario.dataset.synthesize(scenario.seed).unwrap();
    let model = scenario
        .network
        .build(
            dataset.features.dim(),
            scenario.hidden_dim,
            scenario.out_dim,
            scenario.hidden_layers,
        )
        .unwrap();
    Simulator::with_dataflow(scenario.config.clone(), scenario.dataflow)
        .unwrap()
        .simulate(&model, &dataset)
        .unwrap()
}

#[test]
fn parallel_sweep_is_bit_identical_to_fresh_serial_simulation() {
    let scenarios = scenario_grid();
    assert!(scenarios.len() >= 32, "{} points", scenarios.len());

    let runner = SweepRunner::new();
    let parallel = runner.run(&scenarios).unwrap();
    assert_eq!(parallel.len(), scenarios.len());

    for (scenario, result) in scenarios.iter().zip(&parallel) {
        let fresh = fresh_per_run_report(scenario);
        assert_eq!(result.report, fresh, "{scenario}");
    }
}

#[test]
fn parallel_and_serial_runner_paths_agree() {
    let scenarios = scenario_grid();
    let runner = SweepRunner::new();
    let parallel = runner.run(&scenarios).unwrap();
    let serial = runner.run_serial(&scenarios).unwrap();
    assert_eq!(parallel, serial);
}

#[test]
fn scenario_order_does_not_change_results() {
    let scenarios = scenario_grid();
    let mut reversed = scenarios.clone();
    reversed.reverse();
    // Interleave a third order: odd indices first, then even.
    let mut interleaved: Vec<ScenarioSpec> = scenarios.iter().skip(1).step_by(2).cloned().collect();
    interleaved.extend(scenarios.iter().step_by(2).cloned());

    let forward = SweepRunner::new().run(&scenarios).unwrap();
    let backward = SweepRunner::new().run(&reversed).unwrap();
    let shuffled = SweepRunner::new().run(&interleaved).unwrap();

    let find = |results: &[gnnerator::ScenarioResult], scenario: &ScenarioSpec| {
        results
            .iter()
            .find(|r| &r.scenario == scenario)
            .unwrap_or_else(|| panic!("missing {scenario}"))
            .report
            .clone()
    };
    for scenario in &scenarios {
        let a = find(&forward, scenario);
        let b = find(&backward, scenario);
        let c = find(&shuffled, scenario);
        assert_eq!(a, b, "{scenario}");
        assert_eq!(a, c, "{scenario}");
    }
}

#[test]
fn repeated_sweeps_over_one_runner_are_stable() {
    let scenarios = scenario_grid();
    let runner = SweepRunner::new();
    let first = runner.run(&scenarios).unwrap();
    // Second run hits every cache (datasets, sessions, shard plans).
    let second = runner.run(&scenarios).unwrap();
    assert_eq!(first, second);
    assert_eq!(runner.cached_datasets(), 3);
    assert_eq!(runner.cached_sessions(), 9);
}

#[test]
fn session_reuse_matches_fresh_compilation_end_to_end() {
    let dataset = DatasetKind::Pubmed
        .spec()
        .scaled(0.04)
        .synthesize(21)
        .unwrap();
    let model = NetworkKind::GraphsagePool
        .build_paper_config(dataset.features.dim(), 3)
        .unwrap();
    let session = SimSession::new(model.clone(), &dataset).unwrap();
    let config = GnneratorConfig::paper_default();

    // Exercise the same session across many dataflows, interleaved with
    // repeats, and compare every report against a from-scratch compile.
    let dataflows = [
        DataflowConfig::blocked(64),
        DataflowConfig::conventional(),
        DataflowConfig::blocked(16),
        DataflowConfig::blocked(64),
        DataflowConfig::conventional(),
    ];
    for dataflow in dataflows {
        let reused = session.simulate(&config, dataflow).unwrap();
        let fresh_session = SimSession::new(model.clone(), &dataset).unwrap();
        let fresh = fresh_session.simulate(&config, dataflow).unwrap();
        assert_eq!(reused, fresh, "{dataflow}");
    }
    // The repeats above must not have grown the plan cache.
    assert!(session.cached_shard_plans() <= 3);
}
