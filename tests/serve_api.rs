//! Integration tests for the serving layer: a real [`SessionServer`] on an
//! ephemeral port, driven over TCP by concurrent clients, checked
//! bit-for-bit against direct [`SweepRunner::run_one`] results.

use gnnerator::SweepRunner;
use gnnerator_serve::{client, scenario_from_json, Json, ServeConfig, SessionServer};
use std::net::SocketAddr;

/// A tiny scaled-down request so the suite stays fast. `out_dim`/`hidden`
/// are pinned explicitly so the direct reference builds the same model.
fn body(dataset: &str, backend: &str) -> String {
    format!(
        "{{\"dataset\": \"{dataset}\", \"network\": \"gcn\", \"backend\": \"{backend}\", \
         \"scale\": 0.03, \"seed\": 9, \"hidden_dim\": 8, \"out_dim\": 4}}"
    )
}

fn start_server() -> (SessionServer, SocketAddr) {
    let server = SessionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            pool_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

fn simulate(addr: SocketAddr, body: &str) -> Json {
    let response = client::post(addr, "/simulate", body).expect("request succeeds");
    assert!(
        response.is_ok(),
        "status {}: {}",
        response.status,
        response.body
    );
    response.json().expect("response body is valid JSON")
}

fn field_f64(point: &Json, key: &str) -> f64 {
    point
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {key}"))
}

/// Served responses must be *bit-identical* to direct sweep results: every
/// numeric column is rendered with Rust's shortest-round-trip `f64`
/// formatting, so parsing it back yields the exact same bits.
fn assert_point_matches(point: &Json, reference: &gnnerator::ScenarioResult, context: &str) {
    assert_eq!(
        point.get("label").and_then(Json::as_str),
        Some(reference.scenario.label().as_str()),
        "{context}"
    );
    assert_eq!(
        point.get("backend").and_then(Json::as_str),
        Some(reference.backend().as_str()),
        "{context}"
    );
    assert_eq!(
        field_f64(point, "seconds").to_bits(),
        reference.seconds().to_bits(),
        "{context}: seconds must be bit-identical"
    );
    assert_eq!(
        point.get("num_nodes").and_then(Json::as_u64),
        Some(reference.num_nodes as u64),
        "{context}"
    );
    assert_eq!(
        point.get("num_edges").and_then(Json::as_u64),
        Some(reference.num_edges as u64),
        "{context}"
    );
    assert_eq!(
        point.get("total_cycles").and_then(Json::as_u64),
        reference.evaluation.total_cycles,
        "{context}"
    );
    assert_eq!(
        point.get("dram_bytes").and_then(Json::as_u64),
        reference.evaluation.dram_bytes,
        "{context}"
    );
    match reference.speedup_vs_gpu() {
        Some(expected) => assert_eq!(
            field_f64(point, "speedup_vs_gpu").to_bits(),
            expected.to_bits(),
            "{context}: speedups must be bit-identical"
        ),
        None => assert_eq!(point.get("speedup_vs_gpu"), Some(&Json::Null), "{context}"),
    }
    match reference.baseline_seconds {
        Some(baselines) => {
            assert_eq!(
                field_f64(point, "baseline_gpu_seconds").to_bits(),
                baselines.gpu.to_bits(),
                "{context}"
            );
            assert_eq!(
                field_f64(point, "baseline_hygcn_seconds").to_bits(),
                baselines.hygcn.to_bits(),
                "{context}"
            );
        }
        None => {
            assert_eq!(point.get("baseline_gpu_seconds"), Some(&Json::Null));
        }
    }
}

#[test]
fn concurrent_requests_are_bit_identical_to_run_one_and_reuse_sessions() {
    let (server, addr) = start_server();

    // Direct references through the sweep engine's own path.
    let runner = SweepRunner::new();
    let mix: Vec<(String, String)> = [
        ("cora", "gnnerator"),
        ("cora", "gpu-roofline"),
        ("cora", "hygcn"),
        ("citeseer", "gnnerator"),
    ]
    .into_iter()
    .map(|(d, b)| (d.to_string(), b.to_string()))
    .collect();
    let references: Vec<gnnerator::ScenarioResult> = mix
        .iter()
        .map(|(dataset, backend)| {
            let scenario =
                scenario_from_json(&Json::parse(&body(dataset, backend)).unwrap()).unwrap();
            runner.run_one(&scenario).unwrap()
        })
        .collect();

    // Warm the pool with one request per distinct scenario.
    for (dataset, backend) in &mix {
        simulate(addr, &body(dataset, backend));
    }
    let warmed = server.pool_stats();
    // cora points share one session (same session key); citeseer adds one.
    assert_eq!(warmed.sessions_built, 2, "backend variants share sessions");

    // Fire concurrent clients: repeated and distinct scenarios interleaved.
    let rounds = 3;
    let points: Vec<(usize, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..mix.len() * rounds)
            .map(|i| {
                let (dataset, backend) = &mix[i % mix.len()];
                let body = body(dataset, backend);
                scope.spawn(move || (i % 4, simulate(addr, &body)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (index, point) in &points {
        assert_point_matches(point, &references[*index], &mix[*index].0);
        assert_eq!(
            point.get("session_reused").and_then(Json::as_bool),
            Some(true),
            "every post-warm-up request reuses a pooled session"
        );
    }

    // Zero rebuilds after the first request for each workload.
    let stats = server.pool_stats();
    assert_eq!(
        stats.sessions_built, warmed.sessions_built,
        "a warm pool never rebuilds"
    );
    assert!(
        stats.hits >= (mix.len() * rounds),
        "the pool reported {} hits for {} warm requests",
        stats.hits,
        mix.len() * rounds
    );
    server.shutdown();
}

#[test]
fn stats_compile_and_sweep_endpoints_answer_coherently() {
    let (server, addr) = start_server();

    // /compile summarises without executing.
    let response = client::post(addr, "/compile", &body("cora", "gnnerator")).unwrap();
    assert!(response.is_ok(), "{}", response.body);
    let summary = response.json().unwrap();
    assert_eq!(summary.get("model").and_then(Json::as_str), Some("gcn"));
    assert_eq!(summary.get("dataset").and_then(Json::as_str), Some("cora"));
    assert_eq!(summary.get("num_layers").and_then(Json::as_u64), Some(2));
    assert_eq!(
        summary.get("session_reused").and_then(Json::as_bool),
        Some(false)
    );

    // Baselines are analytical; compiling them is a client error.
    let response = client::post(addr, "/compile", &body("cora", "hygcn")).unwrap();
    assert_eq!(response.status, 400);

    // /sweep evaluates a batch in order.
    let sweep_body = format!(
        "{{\"scenarios\": [{}, {}, {}]}}",
        body("cora", "gnnerator"),
        body("cora", "gpu-roofline"),
        body("citeseer", "gnnerator"),
    );
    let response = client::post(addr, "/sweep", &sweep_body).unwrap();
    assert!(response.is_ok(), "{}", response.body);
    let batch = response.json().unwrap();
    assert_eq!(batch.get("count").and_then(Json::as_u64), Some(3));
    let points = batch.get("points").and_then(Json::as_array).unwrap();
    assert_eq!(points.len(), 3);
    let runner = SweepRunner::new();
    for (point, (dataset, backend)) in points.iter().zip([
        ("cora", "gnnerator"),
        ("cora", "gpu-roofline"),
        ("citeseer", "gnnerator"),
    ]) {
        let scenario = scenario_from_json(&Json::parse(&body(dataset, backend)).unwrap()).unwrap();
        let reference = runner.run_one(&scenario).unwrap();
        assert_point_matches(point, &reference, dataset);
    }

    // Query strings are stripped before dispatch: monitoring probes that
    // append one must not 404.
    let response = client::get(addr, "/stats?probe=1").unwrap();
    assert!(response.is_ok(), "{}", response.body);

    // /stats reflects the traffic.
    let response = client::get(addr, "/stats").unwrap();
    assert!(response.is_ok());
    let stats = response.json().unwrap();
    assert!(field_f64(&stats, "uptime_seconds") >= 0.0);
    let pool = stats.get("pool").expect("pool section");
    assert!(pool.get("hits").and_then(Json::as_u64).is_some());
    let endpoints = stats.get("endpoints").expect("endpoints section");
    let sweep_stat = endpoints.get("sweep").expect("sweep endpoint stat");
    assert_eq!(sweep_stat.get("requests").and_then(Json::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn bad_requests_get_typed_errors_not_hangs() {
    let (server, addr) = start_server();
    let cases = [
        ("POST", "/simulate", "not json", 400),
        ("POST", "/simulate", "{\"dataset\": \"mnist\"}", 400),
        ("POST", "/simulate", "", 400),
        ("POST", "/sweep", "{\"scenarios\": 3}", 400),
        ("POST", "/nowhere", "{}", 404),
        ("GET", "/simulate", "", 405),
        ("POST", "/stats", "", 405),
    ];
    for (method, path, payload, expected) in cases {
        let response = client::request(addr, method, path, payload).unwrap();
        assert_eq!(
            response.status, expected,
            "{method} {path} {payload:?}: {}",
            response.body
        );
        let error = response.json().expect("error responses are JSON");
        assert!(
            error.get("error").and_then(Json::as_str).is_some(),
            "{method} {path}"
        );
    }
    // Degenerate numeric values are refused at parse time — before any
    // dataset synthesis or session build is paid for them.
    for body in [
        "{\"dataset\": \"cora\", \"block_size\": 0}",
        "{\"dataset\": \"cora\", \"hidden_dim\": 4000000000}",
    ] {
        let response = client::post(addr, "/simulate", body).unwrap();
        assert_eq!(response.status, 400, "{}", response.body);
    }
    server.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_server_cleanly() {
    let (server, addr) = start_server();
    simulate(addr, &body("cora", "gnnerator"));
    let response = client::post(addr, "/shutdown", "").unwrap();
    assert!(response.is_ok());
    assert_eq!(response.body, "{\"ok\": true}");
    // wait() joins the acceptor and workers; it must return promptly now.
    server.wait();
    // The port no longer answers.
    assert!(client::get(addr, "/stats").is_err());
}
