//! End-to-end guarantees of the streaming graph-build pipeline and the
//! persistent artifact cache: a warm-cache run performs zero dataset
//! synthesis and zero shard builds while reproducing every simulation report
//! bit for bit, and damaged cache state degrades to a fresh build (with a
//! typed error at the cache layer), never to wrong results.

use gnnerator::{
    BackendKind, DataflowConfig, GnneratorConfig, ScenarioSpec, SimSession, SweepRunner,
};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::{ArtifactCache, GraphError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn scratch_dir(label: &str) -> PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gnnerator-e2e-cache-{}-{label}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small mixed-backend grid including the ogbn-arxiv extension dataset.
fn grid() -> Vec<ScenarioSpec> {
    let mut scenarios = Vec::new();
    for kind in [DatasetKind::Cora, DatasetKind::OgbnArxiv] {
        let base = ScenarioSpec::new(
            NetworkKind::Gcn,
            kind.spec().scaled(0.02),
            21,
            16,
            4,
            GnneratorConfig::paper_default(),
            DataflowConfig::blocked(64),
        );
        for backend in BackendKind::ALL {
            scenarios.push(base.clone().with_backend(backend));
        }
        scenarios.push(base.clone().with_backend(BackendKind::Gnnerator));
        scenarios.last_mut().unwrap().dataflow = DataflowConfig::conventional();
    }
    scenarios
}

#[test]
fn warm_cache_run_skips_all_graph_builds_and_is_bit_identical() {
    let dir = scratch_dir("warm");
    let scenarios = grid();

    let cold = SweepRunner::new().with_artifact_cache(Arc::new(ArtifactCache::new(&dir)));
    let cold_results = cold.run(&scenarios).unwrap();
    assert!(cold.datasets_synthesized() > 0);
    assert_eq!(cold.datasets_loaded(), 0);
    assert!(cold.total_shard_grids_built() > 0);
    assert!(cold.graph_build_seconds() > 0.0);

    // A brand new runner (a later harness invocation, in effect).
    let warm = SweepRunner::new().with_artifact_cache(Arc::new(ArtifactCache::new(&dir)));
    let warm_results = warm.run(&scenarios).unwrap();
    assert_eq!(warm.datasets_synthesized(), 0, "zero dataset synthesis");
    assert_eq!(warm.total_shard_grids_built(), 0, "zero shard builds");
    assert!(warm.datasets_loaded() > 0);
    assert!(warm.total_shard_grids_loaded() > 0);

    assert_eq!(warm_results.len(), cold_results.len());
    for (w, c) in warm_results.iter().zip(&cold_results) {
        // ScenarioResult equality covers evaluations and full reports
        // (total cycles, per-layer breakdowns, DRAM traffic).
        assert_eq!(w, c, "{}", c.scenario);
        if let (Some(wr), Some(cr)) = (&w.report, &c.report) {
            assert_eq!(wr.total_cycles, cr.total_cycles);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_cache_files_fall_back_to_identical_fresh_builds() {
    let dir = scratch_dir("corrupt");
    let dataset = DatasetKind::Citeseer
        .spec()
        .scaled(0.03)
        .synthesize(5)
        .unwrap();
    let model = NetworkKind::Gcn
        .build_paper_config(dataset.features.dim(), 6)
        .unwrap();
    let config = GnneratorConfig::paper_default();
    let cache = Arc::new(ArtifactCache::new(&dir));
    cache.store_dataset(&dataset).unwrap();

    let pristine =
        SimSession::with_artifact_cache(model.clone(), &dataset, Arc::clone(&cache)).unwrap();
    let reference = pristine
        .simulate(&config, DataflowConfig::paper_default())
        .unwrap();

    // Vandalise every artifact on disk.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
    }

    // The cache layer reports typed errors for the damaged artifacts...
    assert!(matches!(
        cache.load_dataset(&dataset.spec, dataset.seed),
        Err(GraphError::CacheArtifact { .. })
    ));
    // ...the runner falls back to synthesis (and repairs the artifact)...
    let runner = SweepRunner::new().with_artifact_cache(Arc::clone(&cache));
    let rebuilt = runner.dataset_for(dataset.spec, dataset.seed).unwrap();
    assert_eq!(runner.datasets_synthesized(), 1);
    assert_eq!(runner.datasets_loaded(), 0);
    assert_eq!(rebuilt.edge_list, dataset.edge_list);
    assert!(cache
        .load_dataset(&dataset.spec, dataset.seed)
        .unwrap()
        .is_some());
    // ...and a session over the repaired state reproduces the report.
    let session = SimSession::with_artifact_cache(model, &rebuilt, cache).unwrap();
    let report = session
        .simulate(&config, DataflowConfig::paper_default())
        .unwrap();
    assert_eq!(report, reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_off_escape_hatch_disables_persistence() {
    // GNNERATOR_CACHE=off resolves to a disabled cache, and a runner built
    // on one behaves exactly like a cache-less runner.
    let cache = ArtifactCache::from_env_value(Some("off"));
    assert!(!cache.is_enabled());
    let runner = SweepRunner::new().with_artifact_cache(Arc::new(cache));
    assert!(
        runner.artifact_cache().is_none(),
        "disabled caches are dropped at attach time"
    );
    let scenarios = grid();
    let results = runner.run(&scenarios).unwrap();
    assert_eq!(results.len(), scenarios.len());
    assert_eq!(runner.datasets_loaded(), 0);
    assert_eq!(runner.total_shard_grids_loaded(), 0);
}

#[test]
fn ogbn_scale_spec_flows_through_the_streaming_pipeline() {
    // A meaningful slice of ogbn-arxiv (≈10% → ~117k edges) synthesises
    // through the chunked builder — multiple sealed chunks — and simulates.
    let spec = DatasetKind::OgbnArxiv.spec().scaled(0.1);
    assert!(spec.edges > 100_000);
    let dataset = spec.synthesize(31).unwrap();
    assert_eq!(dataset.num_edges(), spec.edges);
    assert!(dataset.edge_list.is_sorted());
    let model = NetworkKind::Gcn
        .build(dataset.features.dim(), 16, 40, 1)
        .unwrap();
    let session = SimSession::new(model, &dataset).unwrap();
    let report = session
        .simulate(
            &GnneratorConfig::paper_default(),
            DataflowConfig::blocked(64),
        )
        .unwrap();
    assert!(report.total_cycles > 0);
    assert_eq!(report.dataset_name, "ogbn-arxiv");
}
