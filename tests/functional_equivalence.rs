//! Cross-crate correctness tests: the accelerator's functional execution of
//! the compiled, feature-blocked dataflow must agree with the mathematical
//! reference executor on every network, dataset shape and block size.
//!
//! This is the reproduction's answer to "is Algorithm 1 a legal re-ordering
//! of the GNN computation": the timing model and the functional model share
//! the compiler and shard grids, so agreement here validates the dataflow the
//! timing results are based on.

use gnnerator::{functional, DataflowConfig, GnneratorConfig};
use gnnerator_gnn::{reference, NetworkKind};
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::{generators, CsrGraph, NodeFeatures};
use proptest::prelude::*;

fn assert_matches_reference(
    kind: NetworkKind,
    dataflow: DataflowConfig,
    edges: &gnnerator_graph::EdgeList,
    features: &NodeFeatures,
    out_dim: usize,
) {
    let model = kind.build(features.dim(), 12, out_dim, 1).unwrap();
    let blocked = functional::execute_blocked(
        &model,
        edges,
        features,
        &GnneratorConfig::paper_default(),
        &dataflow,
    )
    .unwrap();
    let expected = reference::execute(&model, &CsrGraph::from_edge_list(edges), features).unwrap();
    let diff = blocked.max_abs_diff(&expected).unwrap();
    assert!(diff < 2e-3, "{kind} with {dataflow}: max abs diff {diff}");
}

#[test]
fn blocked_execution_matches_reference_on_scaled_paper_datasets() {
    for kind in NetworkKind::ALL {
        for dataset_kind in DatasetKind::ALL {
            // Tiny graphs with the real feature dimensionality kept small so
            // the O(n * d) reference stays fast.
            let spec = dataset_kind.spec().scaled(0.01).with_feature_dim(37);
            let dataset = spec.synthesize(13).unwrap();
            assert_matches_reference(
                kind,
                DataflowConfig::paper_default(),
                &dataset.edge_list,
                &dataset.features,
                5,
            );
        }
    }
}

#[test]
fn conventional_and_blocked_dataflows_agree_with_each_other() {
    let edges = generators::rmat(120, 500, 21).unwrap();
    let features = NodeFeatures::from_fn(120, 48, |v, d| ((v * 7 + d * 3) % 19) as f32 * 0.1 - 0.9);
    for kind in NetworkKind::ALL {
        let model = kind.build(48, 16, 4, 1).unwrap();
        let config = GnneratorConfig::paper_default();
        let conventional = functional::execute_blocked(
            &model,
            &edges,
            &features,
            &config,
            &DataflowConfig::conventional(),
        )
        .unwrap();
        let blocked = functional::execute_blocked(
            &model,
            &edges,
            &features,
            &config,
            &DataflowConfig::blocked(16),
        )
        .unwrap();
        assert!(
            conventional.approx_eq(&blocked, 1e-3),
            "{kind}: dataflows disagree"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blocked_execution_matches_reference_on_random_graphs(
        n in 20usize..80,
        dim in 4usize..40,
        block in 1usize..50,
        seed in 0u64..500,
    ) {
        let edges = generators::rmat(n, n * 4, seed).unwrap();
        let features = NodeFeatures::from_fn(n, dim, |v, d| {
            ((v * 31 + d * 17 + seed as usize) % 23) as f32 * 0.08 - 0.8
        });
        for kind in NetworkKind::ALL {
            let model = kind.build(dim, 8, 3, 1).unwrap();
            let blocked = functional::execute_blocked(
                &model,
                &edges,
                &features,
                &GnneratorConfig::paper_default(),
                &DataflowConfig::blocked(block),
            )
            .unwrap();
            let expected =
                reference::execute(&model, &CsrGraph::from_edge_list(&edges), &features).unwrap();
            let diff = blocked.max_abs_diff(&expected).unwrap();
            prop_assert!(diff < 2e-3, "{} B={}: diff {}", kind, block, diff);
        }
    }

    #[test]
    fn shard_traversal_order_does_not_change_results(
        n in 20usize..60,
        seed in 0u64..200,
    ) {
        use gnnerator_graph::TraversalOrder;
        let edges = generators::rmat(n, n * 3, seed).unwrap();
        let features = NodeFeatures::from_fn(n, 24, |v, d| ((v + d * 5) % 11) as f32 * 0.2 - 1.0);
        let model = NetworkKind::Gcn.build(24, 8, 3, 1).unwrap();
        let config = GnneratorConfig::paper_default();
        let dst = functional::execute_blocked(
            &model, &edges, &features, &config,
            &DataflowConfig::blocked(8).with_traversal(TraversalOrder::DestinationStationary),
        ).unwrap();
        let src = functional::execute_blocked(
            &model, &edges, &features, &config,
            &DataflowConfig::blocked(8).with_traversal(TraversalOrder::SourceStationary),
        ).unwrap();
        prop_assert!(dst.approx_eq(&src, 1e-4));
    }
}
