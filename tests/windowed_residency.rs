//! End-to-end windowed residency: a session whose shard grid is faulted
//! through a bounded shard window produces bit-identical reports to the
//! fully-resident path, and dropping the session leaves no window state
//! behind.
//!
//! One `#[test]`, one process: the assertions on the process-wide window
//! gauge and counters must not race other windowed work.

use gnnerator::{DataflowConfig, GnneratorConfig, SimSession};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::{memory, ArtifactCache, GridResidency, MemoryBudget};
use std::sync::Arc;

#[test]
fn windowed_sessions_are_bit_identical_and_leak_nothing() {
    let dir = std::env::temp_dir().join(format!("gnnerator-windowed-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dataset = DatasetKind::Pubmed
        .spec()
        .scaled(0.3)
        .synthesize(9)
        .unwrap();
    let model = NetworkKind::Gcn
        .build_paper_config(dataset.features.dim(), 3)
        .unwrap();
    let config = GnneratorConfig::paper_default();
    let cache = Arc::new(ArtifactCache::new(&dir));

    let resident =
        SimSession::with_artifact_cache(model.clone(), &dataset, Arc::clone(&cache)).unwrap();
    let reference = resident
        .simulate(&config, DataflowConfig::paper_default())
        .unwrap();

    // A budget far below the edge arena forces Auto residency through the
    // window; the explicit policy exercises the same path deliberately.
    for residency in [GridResidency::Windowed, GridResidency::Auto] {
        let misses_before = memory::window_misses();
        let session = SimSession::with_artifact_cache(model.clone(), &dataset, Arc::clone(&cache))
            .unwrap()
            .with_memory_budget(MemoryBudget::bytes(16 << 10))
            .with_residency(residency);
        let report = session
            .simulate(&config, DataflowConfig::paper_default())
            .unwrap();
        assert_eq!(report, reference, "{residency:?}");
        assert!(
            memory::window_misses() > misses_before,
            "{residency:?}: the walk must actually fault extents through the window"
        );
        drop(session);
        assert_eq!(
            memory::window_resident_bytes(),
            0,
            "{residency:?}: dropped sessions leave no window state resident"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
