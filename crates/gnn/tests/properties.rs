//! Property-based tests for the GNN model library.

use gnnerator_gnn::{reference, Aggregator, NetworkKind};
use gnnerator_graph::{generators, CsrGraph, NodeFeatures};
use gnnerator_tensor::Matrix;
use proptest::prelude::*;

/// Strategy for a small random graph and compatible features.
fn graph_and_features(dim: usize) -> impl Strategy<Value = (CsrGraph, NodeFeatures)> {
    (4usize..20, 0u64..1000).prop_map(move |(n, seed)| {
        let edges = generators::rmat(n, n * 3, seed).expect("valid parameters");
        let graph = CsrGraph::from_edge_list(&edges);
        let features = NodeFeatures::from_fn(n, dim, |v, d| {
            ((v * 31 + d * 7 + seed as usize) % 17) as f32 * 0.1 - 0.8
        });
        (graph, features)
    })
}

proptest! {
    #[test]
    fn all_networks_produce_finite_outputs((graph, feats) in graph_and_features(12)) {
        for kind in NetworkKind::ALL {
            let model = kind.build(12, 8, 3, 1).unwrap();
            let out = reference::execute(&model, &graph, &feats).unwrap();
            prop_assert_eq!(out.shape(), (graph.num_nodes(), 3));
            prop_assert!(out.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn output_shape_follows_output_dim((graph, feats) in graph_and_features(6), out_dim in 1usize..10) {
        let model = NetworkKind::Gcn.build(6, 4, out_dim, 0).unwrap();
        let out = reference::execute(&model, &graph, &feats).unwrap();
        prop_assert_eq!(out.cols(), out_dim);
    }

    #[test]
    fn aggregation_is_permutation_invariant(seed in 0u64..500) {
        // Aggregators are order-independent: aggregating a permuted index set
        // gives the same result. This is the invariant that lets the Graph
        // Engine's GPEs process a shard's edges in any order.
        let feats = Matrix::from_fn(10, 6, |r, c| ((r * 7 + c * 3 + seed as usize) % 11) as f32 - 5.0);
        let indices: Vec<usize> = vec![0, 3, 5, 7, 9];
        let mut reversed = indices.clone();
        reversed.reverse();
        for agg in [Aggregator::Mean, Aggregator::Max, Aggregator::Sum] {
            let a = agg.aggregate(&feats, &indices);
            let b = agg.aggregate(&feats, &reversed);
            prop_assert!(a.approx_eq(&b, 1e-5), "{agg} not permutation invariant");
        }
    }

    #[test]
    fn streaming_reduce_matches_batch(seed in 0u64..500, count in 1usize..10) {
        let feats = Matrix::from_fn(10, 4, |r, c| ((r * 13 + c * 5 + seed as usize) % 23) as f32 * 0.25 - 2.0);
        let indices: Vec<usize> = (0..count).map(|i| (i * 3 + seed as usize) % 10).collect();
        for agg in [Aggregator::Mean, Aggregator::Max, Aggregator::Sum] {
            let batch = agg.aggregate(&feats, &indices);
            for d in 0..4 {
                let mut acc = agg.identity();
                for &i in &indices {
                    acc = agg.combine(acc, feats.get(i, d));
                }
                let streamed = agg.finalize(acc, indices.len());
                prop_assert!((streamed - batch.get(0, d)).abs() < 1e-4,
                    "{agg}: streamed {streamed} != batch {}", batch.get(0, d));
            }
        }
    }

    #[test]
    fn mean_of_identical_rows_is_that_row(dim in 1usize..8, value in -5.0f32..5.0) {
        let feats = Matrix::filled(6, dim, value);
        let agg = Aggregator::Mean.aggregate(&feats, &[0, 1, 2, 3]);
        for d in 0..dim {
            prop_assert!((agg.get(0, d) - value).abs() < 1e-5);
        }
    }

    #[test]
    fn workload_flops_scale_linearly_with_nodes(nodes in 10usize..1000) {
        use gnnerator_gnn::workload::ModelWorkload;
        let model = NetworkKind::Gcn.build(64, 16, 4, 1).unwrap();
        let w1 = ModelWorkload::analyze(&model, nodes, nodes * 4);
        let w2 = ModelWorkload::analyze(&model, nodes * 2, nodes * 8);
        prop_assert_eq!(w1.dense_flops() * 2, w2.dense_flops());
        prop_assert_eq!(w1.aggregate_flops() * 2, w2.aggregate_flops());
    }

    #[test]
    fn deeper_models_do_more_work(hidden_layers in 1usize..4) {
        use gnnerator_gnn::workload::ModelWorkload;
        let shallow = NetworkKind::Graphsage.build(64, 16, 4, hidden_layers).unwrap();
        let deep = NetworkKind::Graphsage.build(64, 16, 4, hidden_layers + 1).unwrap();
        let ws = ModelWorkload::analyze(&shallow, 100, 500);
        let wd = ModelWorkload::analyze(&deep, 100, 500);
        prop_assert!(wd.total_flops() > ws.total_flops());
    }
}
