//! Functional reference executor.
//!
//! Runs a [`GnnModel`](crate::GnnModel) on a graph exactly as the mathematics
//! of Section II-A prescribes, with no notion of hardware. The accelerator's
//! functional simulation mode is cross-checked against this executor in the
//! integration tests, which is what gives us confidence that the timing model
//! is simulating the *right* computation.

use crate::{GnnError, GnnModel, Stage};
use gnnerator_graph::{CsrGraph, NodeFeatures};
use gnnerator_tensor::{ops, Matrix};

/// Executes `model` on `graph` with input `features`, returning the output
/// feature table (one row per node).
///
/// # Errors
///
/// Returns [`GnnError::DimensionMismatch`] if the feature dimension does not
/// match the model's input dimension, [`GnnError::Graph`] if the feature
/// table and graph disagree on the node count, and propagates tensor errors
/// from the underlying matrix operations.
///
/// # Examples
///
/// ```
/// use gnnerator_gnn::{NetworkKind, reference};
/// use gnnerator_graph::{CsrGraph, NodeFeatures};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = CsrGraph::from_pairs(3, &[(0, 1), (1, 2), (2, 0)])?;
/// let features = NodeFeatures::from_fn(3, 4, |v, d| (v + d) as f32);
/// let model = NetworkKind::Graphsage.build(4, 8, 2, 1)?;
/// let out = reference::execute(&model, &graph, &features)?;
/// assert_eq!(out.shape(), (3, 2));
/// # Ok(())
/// # }
/// ```
pub fn execute(
    model: &GnnModel,
    graph: &CsrGraph,
    features: &NodeFeatures,
) -> Result<Matrix, GnnError> {
    features.check_compatible(graph)?;
    if features.dim() != model.input_dim() {
        return Err(GnnError::DimensionMismatch {
            expected: model.input_dim(),
            actual: features.dim(),
        });
    }
    let mut current = features.as_matrix().clone();
    for layer in model.layers() {
        current = execute_layer(layer, graph, &current)?;
    }
    Ok(current)
}

/// Executes a single layer on the whole graph.
///
/// # Errors
///
/// Propagates tensor shape errors (which indicate a malformed layer).
pub fn execute_layer(
    layer: &crate::GnnLayer,
    graph: &CsrGraph,
    input: &Matrix,
) -> Result<Matrix, GnnError> {
    let layer_input = input.clone();
    let mut current = input.clone();
    for stage in layer.stages() {
        current = execute_stage(stage, graph, &current, &layer_input)?;
    }
    Ok(current)
}

/// Executes a single stage.
///
/// `layer_input` is the feature table the layer started from; it is needed by
/// dense stages with `concat_self` (GraphSAGE's `(z̄ ∪ h)` concatenation).
///
/// # Errors
///
/// Propagates tensor shape errors.
pub fn execute_stage(
    stage: &Stage,
    graph: &CsrGraph,
    current: &Matrix,
    layer_input: &Matrix,
) -> Result<Matrix, GnnError> {
    match stage {
        Stage::Aggregate {
            dim,
            aggregator,
            include_self,
        } => {
            debug_assert_eq!(*dim, current.cols());
            let n = graph.num_nodes();
            let mut out = Matrix::zeros(n, current.cols());
            for v in 0..n {
                let mut indices: Vec<usize> = graph
                    .neighbors(v as u32)
                    .iter()
                    .map(|&u| u as usize)
                    .collect();
                if *include_self {
                    indices.push(v);
                }
                let row = aggregator.aggregate(current, &indices);
                out.row_mut(v).copy_from_slice(row.row(0));
            }
            Ok(out)
        }
        Stage::Dense {
            weights,
            activation,
            concat_self,
            ..
        } => {
            let input = if *concat_self {
                ops::concat_cols(current, layer_input)?
            } else {
                current.clone()
            };
            let out = ops::matmul(&input, weights)?;
            Ok(activation.apply(&out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, GnnLayer, NetworkKind};
    use gnnerator_tensor::Activation;

    fn path_graph() -> CsrGraph {
        // 0 -> 1 -> 2, plus 2 -> 0 to close the loop.
        CsrGraph::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn execute_checks_input_dimension() {
        let graph = path_graph();
        let model = NetworkKind::Gcn.build(8, 4, 2, 1).unwrap();
        let wrong = NodeFeatures::zeros(3, 5);
        assert!(matches!(
            execute(&model, &graph, &wrong),
            Err(GnnError::DimensionMismatch {
                expected: 8,
                actual: 5
            })
        ));
    }

    #[test]
    fn execute_checks_node_count() {
        let graph = path_graph();
        let model = NetworkKind::Gcn.build(8, 4, 2, 1).unwrap();
        let wrong = NodeFeatures::zeros(4, 8);
        assert!(matches!(
            execute(&model, &graph, &wrong),
            Err(GnnError::Graph(_))
        ));
    }

    #[test]
    fn gcn_mean_aggregation_by_hand() {
        // Single GCN layer with identity weights and no activation lets us
        // check the aggregation arithmetic by hand.
        let graph = path_graph();
        let layer = GnnLayer::from_stages(
            "hand",
            2,
            vec![
                Stage::Aggregate {
                    dim: 2,
                    aggregator: Aggregator::Mean,
                    include_self: true,
                },
                Stage::Dense {
                    in_dim: 2,
                    out_dim: 2,
                    weights: Matrix::identity(2),
                    activation: Activation::Identity,
                    concat_self: false,
                },
            ],
        )
        .unwrap();
        let model = GnnModel::new("hand", vec![layer]).unwrap();
        let feats = NodeFeatures::from_fn(3, 2, |v, d| (v * 2 + d) as f32);
        let out = execute(&model, &graph, &feats).unwrap();
        // Node 1 aggregates {0, 1}: mean of [0,1] and [2,3] = [1, 2].
        assert_eq!(out.row(1), &[1.0, 2.0]);
        // Node 0 aggregates {2, 0}: mean of [4,5] and [0,1] = [2, 3].
        assert_eq!(out.row(0), &[2.0, 3.0]);
    }

    #[test]
    fn max_aggregation_by_hand() {
        let graph = CsrGraph::from_pairs(3, &[(0, 2), (1, 2)]).unwrap();
        let stage = Stage::Aggregate {
            dim: 1,
            aggregator: Aggregator::Max,
            include_self: false,
        };
        let feats = Matrix::from_rows(&[vec![5.0], vec![9.0], vec![1.0]]).unwrap();
        let out = execute_stage(&stage, &graph, &feats, &feats).unwrap();
        assert_eq!(out.get(2, 0), 9.0);
        // Nodes 0 and 1 have no in-neighbours: empty aggregation -> 0.
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn concat_self_doubles_dense_input() {
        let graph = path_graph();
        let feats = NodeFeatures::from_fn(3, 2, |v, _| v as f32);
        let model = NetworkKind::Graphsage.build(2, 3, 2, 0).unwrap();
        let out = execute(&model, &graph, &feats).unwrap();
        assert_eq!(out.shape(), (3, 2));
    }

    #[test]
    fn isolated_node_does_not_poison_the_output() {
        let graph = CsrGraph::from_pairs(4, &[(0, 1), (1, 0)]).unwrap();
        let feats = NodeFeatures::from_fn(4, 4, |v, d| (v + d) as f32);
        for kind in NetworkKind::ALL {
            let model = kind.build(4, 8, 2, 1).unwrap();
            let out = execute(&model, &graph, &feats).unwrap();
            assert!(
                out.iter().all(|v| v.is_finite()),
                "{kind} produced non-finite output"
            );
        }
    }

    #[test]
    fn relu_layers_produce_nonnegative_hidden_features() {
        let graph = path_graph();
        let feats = NodeFeatures::from_fn(3, 4, |v, d| (v as f32 - 1.0) * (d as f32 + 1.0));
        let model = NetworkKind::Gcn.build(4, 8, 8, 0).unwrap();
        // Single layer model with ReLU on all but the last layer: here the
        // only layer is the last, so outputs may be negative; execute layer 0
        // of a 2-layer model instead.
        let model2 = NetworkKind::Gcn.build(4, 8, 2, 1).unwrap();
        let hidden = execute_layer(&model2.layers()[0], &graph, feats.as_matrix()).unwrap();
        assert!(hidden.iter().all(|&v| v >= 0.0));
        // Sanity: full model still runs.
        let _ = execute(&model, &graph, &feats).unwrap();
    }

    #[test]
    fn all_paper_networks_execute_on_a_small_graph() {
        let graph =
            CsrGraph::from_pairs(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (2, 0)])
                .unwrap();
        let feats = NodeFeatures::from_fn(6, 10, |v, d| ((v * d) % 5) as f32 * 0.1);
        for kind in NetworkKind::ALL {
            let model = kind.build_paper_config(10, 3).unwrap();
            let out = execute(&model, &graph, &feats).unwrap();
            assert_eq!(out.shape(), (6, 3), "{kind}");
            assert!(out.iter().all(|v| v.is_finite()));
        }
    }
}
