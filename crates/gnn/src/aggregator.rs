use gnnerator_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Neighbourhood reduction applied during the aggregation stage.
///
/// The Graph Engine's Reduce Unit performs this operation element-wise across
/// the feature dimensions of a node's neighbourhood; all three reductions are
/// associative and commutative, which is what lets the accelerator process a
/// shard's edges in any order and lets feature-dimension blocking split the
/// reduction across dimension blocks.
///
/// # Examples
///
/// ```
/// use gnnerator_gnn::Aggregator;
/// use gnnerator_tensor::Matrix;
///
/// let feats = Matrix::from_rows(&[vec![1.0, 4.0], vec![3.0, 2.0]]).unwrap();
/// let mean = Aggregator::Mean.aggregate(&feats, &[0, 1]);
/// assert_eq!(mean.as_slice(), &[2.0, 3.0]);
/// let max = Aggregator::Max.aggregate(&feats, &[0, 1]);
/// assert_eq!(max.as_slice(), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Aggregator {
    /// Arithmetic mean of the neighbourhood (GCN, GraphSAGE-mean).
    #[default]
    Mean,
    /// Element-wise maximum (GraphSAGE-Pool).
    Max,
    /// Element-wise sum.
    Sum,
}

impl Aggregator {
    /// Aggregates the selected rows of `features` into a `1 x dim` row.
    ///
    /// An empty selection yields a zero row (isolated-node convention).
    pub fn aggregate(self, features: &Matrix, indices: &[usize]) -> Matrix {
        match self {
            Aggregator::Mean => ops::mean_rows(features, indices),
            Aggregator::Max => ops::max_rows(features, indices),
            Aggregator::Sum => ops::sum_rows(features, indices),
        }
    }

    /// Streaming combine step used by the accelerator's Reduce Unit: folds
    /// one new value into the running accumulator.
    pub fn combine(self, accumulator: f32, value: f32) -> f32 {
        match self {
            Aggregator::Mean | Aggregator::Sum => accumulator + value,
            Aggregator::Max => accumulator.max(value),
        }
    }

    /// Finalisation step applied after all `count` neighbours have been
    /// combined (divides by the count for the mean aggregator).
    pub fn finalize(self, accumulator: f32, count: usize) -> f32 {
        match self {
            Aggregator::Mean => {
                if count == 0 {
                    0.0
                } else {
                    accumulator / count as f32
                }
            }
            Aggregator::Max | Aggregator::Sum => accumulator,
        }
    }

    /// Identity element for the streaming combine.
    pub fn identity(self) -> f32 {
        match self {
            Aggregator::Mean | Aggregator::Sum => 0.0,
            Aggregator::Max => f32::NEG_INFINITY,
        }
    }

    /// Number of arithmetic operations per edge per feature dimension.
    ///
    /// Every aggregator performs one combine op per edge per dimension; the
    /// mean adds a per-node divide which is negligible and folded into the
    /// same count. Used by the workload FLOP accounting.
    pub fn ops_per_edge_per_dim(self) -> usize {
        1
    }
}

impl fmt::Display for Aggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Aggregator::Mean => "mean",
            Aggregator::Max => "max",
            Aggregator::Sum => "sum",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats() -> Matrix {
        Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 0.0], vec![-1.0, 4.0]]).unwrap()
    }

    #[test]
    fn mean_aggregation() {
        let m = Aggregator::Mean.aggregate(&feats(), &[0, 1, 2]);
        assert_eq!(m.as_slice(), &[1.0, 2.0 / 3.0]);
    }

    #[test]
    fn max_aggregation() {
        let m = Aggregator::Max.aggregate(&feats(), &[0, 1, 2]);
        assert_eq!(m.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn sum_aggregation() {
        let m = Aggregator::Sum.aggregate(&feats(), &[0, 2]);
        assert_eq!(m.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn empty_neighbourhood_gives_zero() {
        for agg in [Aggregator::Mean, Aggregator::Max, Aggregator::Sum] {
            let m = agg.aggregate(&feats(), &[]);
            assert!(m.iter().all(|&v| v == 0.0), "{agg} of empty set");
        }
    }

    #[test]
    fn streaming_matches_batch_mean() {
        let f = feats();
        let idx = [0usize, 1, 2];
        for d in 0..2 {
            let mut acc = Aggregator::Mean.identity();
            for &i in &idx {
                acc = Aggregator::Mean.combine(acc, f.get(i, d));
            }
            let streamed = Aggregator::Mean.finalize(acc, idx.len());
            let batch = Aggregator::Mean.aggregate(&f, &idx).get(0, d);
            assert!((streamed - batch).abs() < 1e-6);
        }
    }

    #[test]
    fn streaming_matches_batch_max() {
        let f = feats();
        let idx = [0usize, 1, 2];
        for d in 0..2 {
            let mut acc = Aggregator::Max.identity();
            for &i in &idx {
                acc = Aggregator::Max.combine(acc, f.get(i, d));
            }
            let streamed = Aggregator::Max.finalize(acc, idx.len());
            let batch = Aggregator::Max.aggregate(&f, &idx).get(0, d);
            assert_eq!(streamed, batch);
        }
    }

    #[test]
    fn finalize_of_empty_mean_is_zero() {
        assert_eq!(Aggregator::Mean.finalize(0.0, 0), 0.0);
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Aggregator::Mean.to_string(), "mean");
        assert_eq!(Aggregator::Max.to_string(), "max");
        assert_eq!(Aggregator::Sum.to_string(), "sum");
        assert_eq!(Aggregator::default(), Aggregator::Mean);
        assert_eq!(Aggregator::Mean.ops_per_edge_per_dim(), 1);
    }
}
