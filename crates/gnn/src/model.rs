use crate::{GnnError, GnnLayer};
use gnnerator_tensor::Activation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three network architectures evaluated in the paper (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// Graph Convolutional Network (Kipf & Welling).
    Gcn,
    /// GraphSAGE with the mean aggregator.
    Graphsage,
    /// GraphSAGE with the trainable max-pooling aggregator.
    GraphsagePool,
}

impl NetworkKind {
    /// All three networks in the order Table III lists them.
    pub const ALL: [NetworkKind; 3] = [
        NetworkKind::Gcn,
        NetworkKind::Graphsage,
        NetworkKind::GraphsagePool,
    ];

    /// The hidden dimension used in the paper's main experiments (Table III).
    pub const PAPER_HIDDEN_DIM: usize = 16;

    /// Short name as used in the paper's figure labels
    /// (`gcn`, `gsage`, `gsage-max`).
    pub fn short_name(self) -> &'static str {
        match self {
            NetworkKind::Gcn => "gcn",
            NetworkKind::Graphsage => "gsage",
            NetworkKind::GraphsagePool => "gsage-max",
        }
    }

    /// Builds a model of this kind.
    ///
    /// The model has `hidden_layers` hidden layers of width `hidden_dim`
    /// (Table III uses one hidden layer of width 16), preceded by an input
    /// layer mapping `input_dim -> hidden_dim` and followed by an output
    /// layer mapping `hidden_dim -> output_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] if any dimension is zero.
    pub fn build(
        self,
        input_dim: usize,
        hidden_dim: usize,
        output_dim: usize,
        hidden_layers: usize,
    ) -> Result<GnnModel, GnnError> {
        let mut dims = Vec::with_capacity(hidden_layers + 2);
        dims.push(input_dim);
        for _ in 0..hidden_layers {
            dims.push(hidden_dim);
        }
        dims.push(output_dim);

        let mut layers = Vec::new();
        for (i, window) in dims.windows(2).enumerate() {
            let (d_in, d_out) = (window[0], window[1]);
            let is_last = i + 2 == dims.len();
            let activation = if is_last {
                Activation::Identity
            } else {
                Activation::Relu
            };
            let seed = 0xC0FFEE ^ (i as u64);
            let layer = match self {
                NetworkKind::Gcn => GnnLayer::gcn(d_in, d_out, activation, seed)?,
                NetworkKind::Graphsage => GnnLayer::graphsage(d_in, d_out, activation, seed)?,
                NetworkKind::GraphsagePool => {
                    GnnLayer::graphsage_pool(d_in, d_out, activation, seed)?
                }
            };
            layers.push(layer);
        }
        GnnModel::new(format!("{self}"), layers)
    }

    /// Builds the exact configuration used in the paper's main evaluation:
    /// one hidden layer of dimension 16 (Table III), with the dataset's
    /// class count as the output dimension.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] if `input_dim` or `num_classes` is zero.
    pub fn build_paper_config(
        self,
        input_dim: usize,
        num_classes: usize,
    ) -> Result<GnnModel, GnnError> {
        self.build(input_dim, Self::PAPER_HIDDEN_DIM, num_classes, 1)
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NetworkKind::Gcn => "gcn",
            NetworkKind::Graphsage => "graphsage",
            NetworkKind::GraphsagePool => "graphsage-pool",
        };
        f.write_str(name)
    }
}

/// A full GNN: an ordered stack of [`GnnLayer`]s.
///
/// # Examples
///
/// ```
/// use gnnerator_gnn::NetworkKind;
///
/// # fn main() -> Result<(), gnnerator_gnn::GnnError> {
/// let model = NetworkKind::Graphsage.build_paper_config(1433, 7)?;
/// assert_eq!(model.num_layers(), 2);
/// assert_eq!(model.input_dim(), 1433);
/// assert_eq!(model.output_dim(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnModel {
    name: String,
    layers: Vec<GnnLayer>,
}

impl GnnModel {
    /// Creates a model from a layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] if the stack is empty or consecutive
    /// layers have mismatched dimensions.
    pub fn new(name: impl Into<String>, layers: Vec<GnnLayer>) -> Result<Self, GnnError> {
        if layers.is_empty() {
            return Err(GnnError::invalid("model must contain at least one layer"));
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(GnnError::invalid(format!(
                    "layer {i} produces dim {} but layer {} expects dim {}",
                    pair[0].out_dim(),
                    i + 1,
                    pair[1].in_dim()
                )));
            }
        }
        Ok(Self {
            name: name.into(),
            layers,
        })
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[GnnLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature dimension of the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output feature dimension of the last layer.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Largest feature dimension that flows through any aggregation stage —
    /// the quantity that determines how much on-chip feature storage the
    /// Graph Engine needs per node under the conventional dataflow.
    pub fn max_aggregated_dim(&self) -> usize {
        self.layers
            .iter()
            .map(GnnLayer::aggregated_dim)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for GnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {} -> {})",
            self.name,
            self.num_layers(),
            self.input_dim(),
            self.output_dim()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageOrder;

    #[test]
    fn paper_config_has_one_hidden_layer() {
        for kind in NetworkKind::ALL {
            let m = kind.build_paper_config(1433, 7).unwrap();
            assert_eq!(m.num_layers(), 2, "{kind}");
            assert_eq!(m.input_dim(), 1433);
            assert_eq!(m.layers()[0].out_dim(), 16);
            assert_eq!(m.output_dim(), 7);
        }
    }

    #[test]
    fn deeper_models_chain_dimensions() {
        let m = NetworkKind::Gcn.build(100, 32, 10, 3).unwrap();
        assert_eq!(m.num_layers(), 4);
        assert_eq!(m.layers()[0].in_dim(), 100);
        assert_eq!(m.layers()[1].in_dim(), 32);
        assert_eq!(m.layers()[3].out_dim(), 10);
    }

    #[test]
    fn build_rejects_zero_dims() {
        assert!(NetworkKind::Gcn.build(0, 16, 4, 1).is_err());
        assert!(NetworkKind::Gcn.build(16, 0, 4, 1).is_err());
        assert!(NetworkKind::Gcn.build(16, 16, 0, 1).is_err());
    }

    #[test]
    fn stage_orders_match_the_paper() {
        let gcn = NetworkKind::Gcn.build_paper_config(64, 4).unwrap();
        let pool = NetworkKind::GraphsagePool
            .build_paper_config(64, 4)
            .unwrap();
        assert!(gcn
            .layers()
            .iter()
            .all(|l| l.stage_order() == StageOrder::GraphFirst));
        assert!(pool
            .layers()
            .iter()
            .all(|l| l.stage_order() == StageOrder::DenseFirst));
    }

    #[test]
    fn new_rejects_empty_and_mismatched_stacks() {
        assert!(GnnModel::new("empty", vec![]).is_err());
        let l1 = GnnLayer::gcn(8, 4, Activation::Relu, 0).unwrap();
        let l2 = GnnLayer::gcn(5, 2, Activation::Relu, 0).unwrap();
        assert!(GnnModel::new("bad", vec![l1, l2]).is_err());
    }

    #[test]
    fn max_aggregated_dim_is_input_dim_for_paper_models() {
        // With a single 16-wide hidden layer the widest aggregation is over
        // the raw input features.
        let m = NetworkKind::Gcn.build_paper_config(3703, 6).unwrap();
        assert_eq!(m.max_aggregated_dim(), 3703);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(NetworkKind::Gcn.short_name(), "gcn");
        assert_eq!(NetworkKind::GraphsagePool.short_name(), "gsage-max");
        assert_eq!(NetworkKind::Graphsage.to_string(), "graphsage");
        let m = NetworkKind::Gcn.build_paper_config(8, 2).unwrap();
        assert!(m.to_string().contains("gcn"));
        assert_eq!(m.name(), "gcn");
    }

    #[test]
    fn paper_hidden_dim_constant() {
        assert_eq!(NetworkKind::PAPER_HIDDEN_DIM, 16);
    }
}
