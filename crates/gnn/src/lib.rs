//! GNN model library for the GNNerator reproduction.
//!
//! The paper evaluates three networks (Table III): GCN, GraphSAGE with the
//! mean aggregator, and GraphSAGE-Pool with a trainable max-pooling
//! aggregator, each with one hidden layer of dimension 16. This crate
//! provides:
//!
//! * [`Aggregator`] — the neighbourhood reductions (mean / max / sum),
//! * [`GnnLayer`] and [`GnnModel`] — layer and model descriptions composed of
//!   dense and aggregation [`Stage`]s, with builders for the three paper
//!   networks ([`NetworkKind`]),
//! * [`reference`] — a functional CPU executor used as the golden model that
//!   the accelerator's functional simulation is cross-checked against,
//! * [`workload`] — FLOP/byte accounting per stage, consumed by the
//!   baselines' roofline models and by reports.
//!
//! # Examples
//!
//! ```
//! use gnnerator_gnn::{NetworkKind, reference};
//! use gnnerator_graph::{CsrGraph, NodeFeatures};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = CsrGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
//! let features = NodeFeatures::zeros(4, 8);
//! let model = NetworkKind::Gcn.build(8, 16, 4, 1)?;
//! let out = reference::execute(&model, &graph, &features)?;
//! assert_eq!(out.shape(), (4, 4));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aggregator;
mod error;
mod layer;
mod model;
pub mod reference;
pub mod workload;

pub use aggregator::Aggregator;
pub use error::GnnError;
pub use layer::{GnnLayer, Stage, StageOrder};
pub use model::{GnnModel, NetworkKind};
