use gnnerator_graph::GraphError;
use gnnerator_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error type for GNN model construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum GnnError {
    /// A model or layer parameter was invalid (e.g. a zero dimension).
    InvalidModel {
        /// Description of the problem.
        message: String,
    },
    /// The input features do not match the model's expected input dimension.
    DimensionMismatch {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying graph operation failed.
    Graph(GraphError),
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::InvalidModel { message } => write!(f, "invalid model: {message}"),
            GnnError::DimensionMismatch { expected, actual } => write!(
                f,
                "feature dimension mismatch: model expects {expected}, got {actual}"
            ),
            GnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            GnnError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for GnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GnnError::Tensor(e) => Some(e),
            GnnError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GnnError {
    fn from(e: TensorError) -> Self {
        GnnError::Tensor(e)
    }
}

impl From<GraphError> for GnnError {
    fn from(e: GraphError) -> Self {
        GnnError::Graph(e)
    }
}

impl GnnError {
    /// Convenience constructor for [`GnnError::InvalidModel`].
    pub fn invalid(message: impl Into<String>) -> Self {
        GnnError::InvalidModel {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GnnError::invalid("zero hidden dim")
            .to_string()
            .contains("zero"));
        let e = GnnError::DimensionMismatch {
            expected: 16,
            actual: 8,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn conversions_preserve_source() {
        let t = TensorError::EmptyInput { op: "x" };
        let e: GnnError = t.clone().into();
        assert_eq!(e, GnnError::Tensor(t));
        assert!(e.source().is_some());

        let g = GraphError::invalid("p", "bad");
        let e: GnnError = g.clone().into();
        assert_eq!(e, GnnError::Graph(g));
        assert!(e.source().is_some());

        assert!(GnnError::invalid("x").source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GnnError>();
    }
}
