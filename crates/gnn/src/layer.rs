use crate::{Aggregator, GnnError};
use gnnerator_tensor::{Activation, Matrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which engine acts as the producer in a layer (Section III-C).
///
/// The GNNerator Controller supports both orderings; HyGCN only supports
/// [`StageOrder::GraphFirst`], which is why GraphSAGE-Pool maps poorly onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageOrder {
    /// Aggregation runs first and feeds feature extraction (GCN, GraphSAGE).
    GraphFirst,
    /// Feature extraction runs first and feeds aggregation (GraphSAGE-Pool's
    /// pooling MLP is consumed by the max aggregation).
    DenseFirst,
}

impl fmt::Display for StageOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageOrder::GraphFirst => f.write_str("graph-first"),
            StageOrder::DenseFirst => f.write_str("dense-first"),
        }
    }
}

/// One computational stage of a GNN layer.
///
/// A [`GnnLayer`] is an ordered list of stages; the compiler lowers dense
/// stages onto the Dense Engine and aggregate stages onto the Graph Engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// A fully-connected transform applied to every node's feature.
    Dense {
        /// Input feature dimension seen by the weight matrix. When
        /// `concat_self` is true this includes the node's own feature
        /// (`2 * aggregated_dim` for GraphSAGE).
        in_dim: usize,
        /// Output feature dimension.
        out_dim: usize,
        /// Weight matrix of shape `(in_dim, out_dim)`.
        weights: Matrix,
        /// Non-linearity applied by the activation unit.
        activation: Activation,
        /// Whether the stage input is the concatenation of the aggregated
        /// feature and the node's own (pre-aggregation) feature.
        concat_self: bool,
    },
    /// A neighbourhood aggregation applied to every node.
    Aggregate {
        /// Feature dimension being aggregated.
        dim: usize,
        /// Reduction to apply.
        aggregator: Aggregator,
        /// Whether the node's own feature participates in the reduction
        /// (`N(u) ∪ u` in Eq. 1).
        include_self: bool,
    },
}

impl Stage {
    /// Returns the stage's output feature dimension.
    pub fn out_dim(&self) -> usize {
        match self {
            Stage::Dense { out_dim, .. } => *out_dim,
            Stage::Aggregate { dim, .. } => *dim,
        }
    }

    /// Returns `true` if this is a dense (feature-extraction) stage.
    pub fn is_dense(&self) -> bool {
        matches!(self, Stage::Dense { .. })
    }

    /// Returns `true` if this is an aggregation stage.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Stage::Aggregate { .. })
    }
}

/// One GNN layer: an ordered sequence of dense and aggregation stages.
///
/// # Examples
///
/// ```
/// use gnnerator_gnn::{GnnLayer, Aggregator, StageOrder};
/// use gnnerator_tensor::Activation;
///
/// # fn main() -> Result<(), gnnerator_gnn::GnnError> {
/// let layer = GnnLayer::gcn(1433, 16, Activation::Relu, 42)?;
/// assert_eq!(layer.in_dim(), 1433);
/// assert_eq!(layer.out_dim(), 16);
/// assert_eq!(layer.stage_order(), StageOrder::GraphFirst);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnLayer {
    name: String,
    in_dim: usize,
    out_dim: usize,
    stages: Vec<Stage>,
}

impl GnnLayer {
    /// Creates a layer from an explicit stage list.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] if the stage list is empty, a
    /// dimension is zero, or consecutive stages have incompatible dimensions.
    pub fn from_stages(
        name: impl Into<String>,
        in_dim: usize,
        stages: Vec<Stage>,
    ) -> Result<Self, GnnError> {
        if stages.is_empty() {
            return Err(GnnError::invalid("layer must contain at least one stage"));
        }
        if in_dim == 0 {
            return Err(GnnError::invalid("layer input dimension must be positive"));
        }
        // Validate stage-to-stage dimension compatibility.
        let mut current = in_dim;
        let mut layer_input = in_dim;
        for (i, stage) in stages.iter().enumerate() {
            match stage {
                Stage::Dense {
                    in_dim: d_in,
                    out_dim,
                    weights,
                    concat_self,
                    ..
                } => {
                    if *out_dim == 0 {
                        return Err(GnnError::invalid(format!("stage {i}: zero output dim")));
                    }
                    let expected = if *concat_self {
                        current + layer_input
                    } else {
                        current
                    };
                    if *d_in != expected {
                        return Err(GnnError::invalid(format!(
                            "stage {i}: dense stage expects input dim {expected}, declared {d_in}"
                        )));
                    }
                    if weights.shape() != (*d_in, *out_dim) {
                        return Err(GnnError::invalid(format!(
                            "stage {i}: weight shape {:?} does not match ({d_in}, {out_dim})",
                            weights.shape()
                        )));
                    }
                    current = *out_dim;
                }
                Stage::Aggregate { dim, .. } => {
                    if *dim != current {
                        return Err(GnnError::invalid(format!(
                            "stage {i}: aggregate stage expects dim {current}, declared {dim}"
                        )));
                    }
                    // Aggregation preserves dimension.
                }
            }
            // After the first stage, the "self feature" available for
            // concatenation is still the layer's input feature.
            layer_input = in_dim;
        }
        let out_dim = current;
        Ok(Self {
            name: name.into(),
            in_dim,
            out_dim,
            stages,
        })
    }

    /// Builds a GCN layer: mean aggregation over `N(u) ∪ u` followed by a
    /// linear transform and activation.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] for zero dimensions.
    pub fn gcn(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self, GnnError> {
        let weights = init_weights(in_dim, out_dim, seed);
        Self::from_stages(
            "gcn",
            in_dim,
            vec![
                Stage::Aggregate {
                    dim: in_dim,
                    aggregator: Aggregator::Mean,
                    include_self: true,
                },
                Stage::Dense {
                    in_dim,
                    out_dim,
                    weights,
                    activation,
                    concat_self: false,
                },
            ],
        )
    }

    /// Builds a GraphSAGE (mean) layer: mean aggregation followed by a linear
    /// transform of the concatenation `(z̄ ∪ h)` (Eq. 1).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] for zero dimensions.
    pub fn graphsage(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self, GnnError> {
        let weights = init_weights(2 * in_dim, out_dim, seed);
        Self::from_stages(
            "graphsage",
            in_dim,
            vec![
                Stage::Aggregate {
                    dim: in_dim,
                    aggregator: Aggregator::Mean,
                    include_self: true,
                },
                Stage::Dense {
                    in_dim: 2 * in_dim,
                    out_dim,
                    weights,
                    activation,
                    concat_self: true,
                },
            ],
        )
    }

    /// Builds a GraphSAGE-Pool layer: a per-node pooling MLP (`z = σ(W_pool·h)`),
    /// element-wise max aggregation of `z` over `N(u) ∪ u`, then a linear
    /// transform of `(z̄ ∪ h)` (Eq. 2).
    ///
    /// The pooling MLP keeps the feature dimension (`pool_dim == in_dim`), as
    /// in the original GraphSAGE-Pool formulation.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] for zero dimensions.
    pub fn graphsage_pool(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self, GnnError> {
        let pool_dim = in_dim;
        let pool_weights = init_weights(in_dim, pool_dim, seed);
        let weights = init_weights(pool_dim + in_dim, out_dim, seed.wrapping_add(1));
        Self::from_stages(
            "graphsage-pool",
            in_dim,
            vec![
                Stage::Dense {
                    in_dim,
                    out_dim: pool_dim,
                    weights: pool_weights,
                    activation: Activation::Sigmoid,
                    concat_self: false,
                },
                Stage::Aggregate {
                    dim: pool_dim,
                    aggregator: Aggregator::Max,
                    include_self: true,
                },
                Stage::Dense {
                    in_dim: pool_dim + in_dim,
                    out_dim,
                    weights,
                    activation,
                    concat_self: true,
                },
            ],
        )
    }

    /// Builds a GIN-style layer (Xu et al.): sum aggregation over
    /// `N(u) ∪ u` followed by a linear transform and activation.
    ///
    /// The paper does not evaluate GIN, but its stage structure (graph-first,
    /// sum reduction) maps onto GNNerator exactly like GCN does; the builder
    /// exists to demonstrate that the accelerator model is not hard-coded to
    /// the three evaluated networks.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModel`] for zero dimensions.
    pub fn gin(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self, GnnError> {
        let weights = init_weights(in_dim, out_dim, seed);
        Self::from_stages(
            "gin",
            in_dim,
            vec![
                Stage::Aggregate {
                    dim: in_dim,
                    aggregator: Aggregator::Sum,
                    include_self: true,
                },
                Stage::Dense {
                    in_dim,
                    out_dim,
                    weights,
                    activation,
                    concat_self: false,
                },
            ],
        )
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's stages in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Whether the Graph Engine or the Dense Engine is the producer for this
    /// layer — determined by which kind of stage comes first.
    pub fn stage_order(&self) -> StageOrder {
        match self.stages.first() {
            Some(Stage::Aggregate { .. }) | None => StageOrder::GraphFirst,
            Some(Stage::Dense { .. }) => StageOrder::DenseFirst,
        }
    }

    /// The dimension that flows through the aggregation stage(s) of this
    /// layer, i.e. the dimension the Graph Engine must hold on-chip.
    pub fn aggregated_dim(&self) -> usize {
        self.stages
            .iter()
            .find_map(|s| match s {
                Stage::Aggregate { dim, .. } => Some(*dim),
                _ => None,
            })
            .unwrap_or(self.in_dim)
    }
}

impl fmt::Display for GnnLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} -> {}, {} stages, {}]",
            self.name,
            self.in_dim,
            self.out_dim,
            self.stages.len(),
            self.stage_order()
        )
    }
}

/// Deterministic, seed-based Glorot-style weight initialisation.
///
/// The reproduction does not train networks; weights only need to be
/// deterministic and reasonably scaled so functional cross-checks are stable.
fn init_weights(in_dim: usize, out_dim: usize, seed: u64) -> Matrix {
    let scale = (6.0 / (in_dim + out_dim) as f32).sqrt();
    Matrix::from_fn(in_dim, out_dim, |r, c| {
        let mut x = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((r * out_dim + c + 1) as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let unit = (x % 1_000_000) as f32 / 1_000_000.0;
        (unit * 2.0 - 1.0) * scale
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_layer_shape_and_order() {
        let l = GnnLayer::gcn(8, 4, Activation::Relu, 0).unwrap();
        assert_eq!(l.in_dim(), 8);
        assert_eq!(l.out_dim(), 4);
        assert_eq!(l.stage_order(), StageOrder::GraphFirst);
        assert_eq!(l.stages().len(), 2);
        assert_eq!(l.aggregated_dim(), 8);
        assert!(l.stages()[0].is_aggregate());
        assert!(l.stages()[1].is_dense());
    }

    #[test]
    fn graphsage_layer_concatenates_self() {
        let l = GnnLayer::graphsage(8, 4, Activation::Relu, 0).unwrap();
        match &l.stages()[1] {
            Stage::Dense {
                in_dim,
                concat_self,
                ..
            } => {
                assert_eq!(*in_dim, 16);
                assert!(concat_self);
            }
            _ => panic!("second stage should be dense"),
        }
        assert_eq!(l.stage_order(), StageOrder::GraphFirst);
    }

    #[test]
    fn graphsage_pool_layer_is_dense_first() {
        let l = GnnLayer::graphsage_pool(8, 4, Activation::Relu, 0).unwrap();
        assert_eq!(l.stage_order(), StageOrder::DenseFirst);
        assert_eq!(l.stages().len(), 3);
        assert_eq!(l.aggregated_dim(), 8);
        match &l.stages()[1] {
            Stage::Aggregate { aggregator, .. } => assert_eq!(*aggregator, Aggregator::Max),
            _ => panic!("second stage should be aggregation"),
        }
    }

    #[test]
    fn gin_layer_uses_sum_aggregation() {
        let l = GnnLayer::gin(8, 4, Activation::Relu, 0).unwrap();
        assert_eq!(l.stage_order(), StageOrder::GraphFirst);
        assert_eq!(l.in_dim(), 8);
        assert_eq!(l.out_dim(), 4);
        match &l.stages()[0] {
            Stage::Aggregate {
                aggregator,
                include_self,
                ..
            } => {
                assert_eq!(*aggregator, Aggregator::Sum);
                assert!(include_self);
            }
            _ => panic!("first stage should be aggregation"),
        }
    }

    #[test]
    fn from_stages_rejects_empty_and_zero_dims() {
        assert!(GnnLayer::from_stages("x", 8, vec![]).is_err());
        assert!(GnnLayer::from_stages(
            "x",
            0,
            vec![Stage::Aggregate {
                dim: 0,
                aggregator: Aggregator::Mean,
                include_self: true
            }]
        )
        .is_err());
    }

    #[test]
    fn from_stages_rejects_dimension_mismatch() {
        let bad = GnnLayer::from_stages(
            "bad",
            8,
            vec![
                Stage::Aggregate {
                    dim: 8,
                    aggregator: Aggregator::Mean,
                    include_self: true,
                },
                Stage::Dense {
                    in_dim: 10,
                    out_dim: 4,
                    weights: Matrix::zeros(10, 4),
                    activation: Activation::Relu,
                    concat_self: false,
                },
            ],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn from_stages_rejects_wrong_weight_shape() {
        let bad = GnnLayer::from_stages(
            "bad",
            8,
            vec![Stage::Dense {
                in_dim: 8,
                out_dim: 4,
                weights: Matrix::zeros(8, 5),
                activation: Activation::Relu,
                concat_self: false,
            }],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn weights_are_deterministic_and_bounded() {
        let a = init_weights(16, 8, 7);
        let b = init_weights(16, 8, 7);
        assert_eq!(a, b);
        let c = init_weights(16, 8, 8);
        assert_ne!(a, c);
        let bound = (6.0 / 24.0_f32).sqrt() + 1e-6;
        assert!(a.iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn display_mentions_dims() {
        let l = GnnLayer::gcn(8, 4, Activation::Relu, 0).unwrap();
        let s = l.to_string();
        assert!(s.contains("8 -> 4"));
        assert!(s.contains("graph-first"));
    }

    #[test]
    fn stage_out_dim() {
        let d = Stage::Dense {
            in_dim: 4,
            out_dim: 2,
            weights: Matrix::zeros(4, 2),
            activation: Activation::Identity,
            concat_self: false,
        };
        assert_eq!(d.out_dim(), 2);
        let a = Stage::Aggregate {
            dim: 4,
            aggregator: Aggregator::Mean,
            include_self: false,
        };
        assert_eq!(a.out_dim(), 4);
    }
}
