//! FLOP and byte accounting for GNN workloads.
//!
//! The baselines (GPU roofline, HyGCN analytical model) and the report
//! generator all need to know how much arithmetic and how much memory
//! traffic each stage of each layer requires. This module derives those
//! quantities from a [`GnnModel`] and the size of the graph it runs on,
//! independent of any particular hardware mapping.

use crate::{GnnModel, Stage, StageOrder};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per feature element (fp32).
pub const BYTES_PER_ELEMENT: usize = 4;

/// Bytes per edge record (source id + destination id, 4 bytes each).
pub const BYTES_PER_EDGE: usize = 8;

/// Which engine class a stage belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Dense feature extraction (systolic-array work).
    Dense,
    /// Sparse neighbourhood aggregation (graph-engine work).
    Aggregate,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseKind::Dense => f.write_str("dense"),
            PhaseKind::Aggregate => f.write_str("aggregate"),
        }
    }
}

/// Arithmetic and traffic requirements of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageWorkload {
    /// Dense or aggregation work.
    pub kind: PhaseKind,
    /// Input feature dimension of the stage.
    pub in_dim: usize,
    /// Output feature dimension of the stage.
    pub out_dim: usize,
    /// Floating-point operations (multiply-accumulate counted as 2 FLOPs for
    /// dense stages, one combine op per edge element for aggregation).
    pub flops: u64,
    /// Bytes that must be read from DRAM assuming *perfect* on-chip reuse
    /// (every operand read exactly once).
    pub ideal_read_bytes: u64,
    /// Bytes read from DRAM by a locality-oblivious gather (one feature read
    /// per edge); only meaningful for aggregation stages, equal to
    /// `ideal_read_bytes` for dense stages.
    pub gather_read_bytes: u64,
    /// Bytes written back to DRAM.
    pub write_bytes: u64,
}

impl StageWorkload {
    /// Arithmetic intensity in FLOPs per ideal DRAM byte moved.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.ideal_read_bytes + self.write_bytes;
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }
}

/// Arithmetic and traffic requirements of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Index of the layer in the model.
    pub index: usize,
    /// Producer/consumer ordering of the layer.
    pub stage_order: StageOrder,
    /// Per-stage breakdown in execution order.
    pub stages: Vec<StageWorkload>,
}

impl LayerWorkload {
    /// Total FLOPs across all stages.
    pub fn total_flops(&self) -> u64 {
        self.stages.iter().map(|s| s.flops).sum()
    }

    /// Total ideal DRAM traffic (reads + writes) across all stages.
    pub fn total_ideal_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.ideal_read_bytes + s.write_bytes)
            .sum()
    }

    /// FLOPs attributable to dense stages.
    pub fn dense_flops(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.kind == PhaseKind::Dense)
            .map(|s| s.flops)
            .sum()
    }

    /// FLOPs attributable to aggregation stages.
    pub fn aggregate_flops(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.kind == PhaseKind::Aggregate)
            .map(|s| s.flops)
            .sum()
    }
}

/// Arithmetic and traffic requirements of a whole model on a given graph.
///
/// # Examples
///
/// ```
/// use gnnerator_gnn::{NetworkKind, workload::ModelWorkload};
///
/// # fn main() -> Result<(), gnnerator_gnn::GnnError> {
/// let model = NetworkKind::Gcn.build_paper_config(1433, 7)?;
/// let w = ModelWorkload::analyze(&model, 2708, 10556);
/// assert_eq!(w.layers.len(), 2);
/// assert!(w.total_flops() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelWorkload {
    /// Number of nodes in the target graph.
    pub num_nodes: usize,
    /// Number of directed edges in the target graph.
    pub num_edges: usize,
    /// Per-layer breakdown.
    pub layers: Vec<LayerWorkload>,
}

impl ModelWorkload {
    /// Derives the workload of `model` running on a graph with `num_nodes`
    /// nodes and `num_edges` edges.
    pub fn analyze(model: &GnnModel, num_nodes: usize, num_edges: usize) -> Self {
        let n = num_nodes as u64;
        let e = num_edges as u64;
        let layers = model
            .layers()
            .iter()
            .enumerate()
            .map(|(index, layer)| {
                let stages = layer
                    .stages()
                    .iter()
                    .map(|stage| analyze_stage(stage, n, e))
                    .collect();
                LayerWorkload {
                    index,
                    stage_order: layer.stage_order(),
                    stages,
                }
            })
            .collect();
        Self {
            num_nodes,
            num_edges,
            layers,
        }
    }

    /// Total FLOPs across the whole model.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(LayerWorkload::total_flops).sum()
    }

    /// Total ideal DRAM traffic across the whole model.
    pub fn total_ideal_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(LayerWorkload::total_ideal_bytes)
            .sum()
    }

    /// Total dense-engine FLOPs.
    pub fn dense_flops(&self) -> u64 {
        self.layers.iter().map(LayerWorkload::dense_flops).sum()
    }

    /// Total aggregation FLOPs.
    pub fn aggregate_flops(&self) -> u64 {
        self.layers.iter().map(LayerWorkload::aggregate_flops).sum()
    }
}

fn analyze_stage(stage: &Stage, n: u64, e: u64) -> StageWorkload {
    match stage {
        Stage::Dense {
            in_dim,
            out_dim,
            concat_self,
            ..
        } => {
            let d_in = *in_dim as u64;
            let d_out = *out_dim as u64;
            // 2 FLOPs per MAC.
            let flops = 2 * n * d_in * d_out;
            let input_bytes = n * d_in * BYTES_PER_ELEMENT as u64;
            let weight_bytes = d_in * d_out * BYTES_PER_ELEMENT as u64;
            let read = input_bytes + weight_bytes;
            let write = n * d_out * BYTES_PER_ELEMENT as u64;
            let _ = concat_self;
            StageWorkload {
                kind: PhaseKind::Dense,
                in_dim: *in_dim,
                out_dim: *out_dim,
                flops,
                ideal_read_bytes: read,
                gather_read_bytes: read,
                write_bytes: write,
            }
        }
        Stage::Aggregate {
            dim,
            aggregator,
            include_self,
        } => {
            let d = *dim as u64;
            let effective_edges = if *include_self { e + n } else { e };
            let flops = effective_edges * d * aggregator.ops_per_edge_per_dim() as u64;
            // Ideal: every node feature read once + edge list read once.
            let ideal_read =
                n * d * BYTES_PER_ELEMENT as u64 + effective_edges * BYTES_PER_EDGE as u64;
            // Gather: one source-feature read per edge + edge list.
            let gather_read = effective_edges * d * BYTES_PER_ELEMENT as u64
                + effective_edges * BYTES_PER_EDGE as u64;
            let write = n * d * BYTES_PER_ELEMENT as u64;
            StageWorkload {
                kind: PhaseKind::Aggregate,
                in_dim: *dim,
                out_dim: *dim,
                flops,
                ideal_read_bytes: ideal_read,
                gather_read_bytes: gather_read,
                write_bytes: write,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkKind;

    fn cora_gcn() -> ModelWorkload {
        let model = NetworkKind::Gcn.build_paper_config(1433, 7).unwrap();
        ModelWorkload::analyze(&model, 2708, 10556)
    }

    #[test]
    fn layer_count_matches_model() {
        let w = cora_gcn();
        assert_eq!(w.layers.len(), 2);
        assert_eq!(w.num_nodes, 2708);
        assert_eq!(w.num_edges, 10556);
    }

    #[test]
    fn dense_flops_dominate_for_gcn_layer_one() {
        // Layer 1 of Cora-GCN: dense is 2 * 2708 * 1433 * 16 MACs, aggregation
        // is only ~13k edges * 1433 adds — dense dominates by >5x.
        let w = cora_gcn();
        let l0 = &w.layers[0];
        assert!(l0.dense_flops() > 5 * l0.aggregate_flops());
    }

    #[test]
    fn dense_stage_flop_formula() {
        let model = NetworkKind::Gcn.build(100, 10, 10, 0).unwrap();
        let w = ModelWorkload::analyze(&model, 50, 200);
        let dense = &w.layers[0].stages[1];
        assert_eq!(dense.kind, PhaseKind::Dense);
        assert_eq!(dense.flops, 2 * 50 * 100 * 10);
        assert_eq!(dense.write_bytes, 50 * 10 * 4);
    }

    #[test]
    fn aggregate_stage_counts_self_loops() {
        let model = NetworkKind::Gcn.build(8, 4, 4, 0).unwrap();
        let w = ModelWorkload::analyze(&model, 10, 30);
        let agg = &w.layers[0].stages[0];
        assert_eq!(agg.kind, PhaseKind::Aggregate);
        // include_self = true adds one edge per node.
        assert_eq!(agg.flops, (30 + 10) * 8);
        assert_eq!(agg.write_bytes, 10 * 8 * 4);
        assert!(agg.gather_read_bytes > agg.ideal_read_bytes);
    }

    #[test]
    fn graphsage_dense_input_is_doubled() {
        let model = NetworkKind::Graphsage.build(16, 8, 8, 0).unwrap();
        let w = ModelWorkload::analyze(&model, 10, 20);
        let dense = &w.layers[0].stages[1];
        assert_eq!(dense.in_dim, 32);
        assert_eq!(dense.flops, 2 * 10 * 32 * 8);
    }

    #[test]
    fn graphsage_pool_has_three_stages_and_dense_first_order() {
        let model = NetworkKind::GraphsagePool
            .build_paper_config(64, 4)
            .unwrap();
        let w = ModelWorkload::analyze(&model, 100, 400);
        assert_eq!(w.layers[0].stages.len(), 3);
        assert_eq!(w.layers[0].stage_order, StageOrder::DenseFirst);
        assert_eq!(w.layers[0].stages[0].kind, PhaseKind::Dense);
        assert_eq!(w.layers[0].stages[1].kind, PhaseKind::Aggregate);
    }

    #[test]
    fn totals_are_sums_of_layers() {
        let w = cora_gcn();
        let sum: u64 = w.layers.iter().map(LayerWorkload::total_flops).sum();
        assert_eq!(w.total_flops(), sum);
        assert_eq!(w.total_flops(), w.dense_flops() + w.aggregate_flops());
        assert!(w.total_ideal_bytes() > 0);
    }

    #[test]
    fn arithmetic_intensity_is_low_for_aggregation() {
        // Aggregation does 1 op per 4-byte element moved: intensity << 1.
        let w = cora_gcn();
        let agg = &w.layers[0].stages[0];
        assert!(agg.arithmetic_intensity() < 1.0);
        let dense = &w.layers[0].stages[1];
        assert!(dense.arithmetic_intensity() > agg.arithmetic_intensity());
    }

    #[test]
    fn citeseer_has_more_aggregation_traffic_than_cora() {
        // Citeseer's 3703-dim features make its aggregation stage heavier even
        // though it has fewer edges.
        let gcn_cora = cora_gcn();
        let model = NetworkKind::Gcn.build_paper_config(3703, 6).unwrap();
        let citeseer = ModelWorkload::analyze(&model, 3327, 9104);
        assert!(
            citeseer.layers[0].stages[0].gather_read_bytes
                > gcn_cora.layers[0].stages[0].gather_read_bytes
        );
    }

    #[test]
    fn display_phase_kind() {
        assert_eq!(PhaseKind::Dense.to_string(), "dense");
        assert_eq!(PhaseKind::Aggregate.to_string(), "aggregate");
    }
}
