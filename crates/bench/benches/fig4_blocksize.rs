//! Figure 4 bench: regenerates the block-size sweep and benchmarks the
//! simulator at representative block sizes.
//!
//! Run with `cargo bench -p gnnerator-bench --bench fig4_blocksize`.

use criterion::{black_box, Criterion};
use gnnerator::DataflowConfig;
use gnnerator_bench::experiments::{self, FIGURE4_BLOCK_SIZES};
use gnnerator_bench::suite::{SuiteContext, SuiteOptions, Workload};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;

/// Regenerates the Figure 4 table at a reduced dataset scale.
fn print_figure4() {
    let options = SuiteOptions::paper().with_scale(0.25);
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let rows = experiments::figure4(&ctx, &FIGURE4_BLOCK_SIZES).expect("simulation failed");
    println!("{}", experiments::figure4_table(&rows));
    println!("(dataset scale 0.25; run the `fig4` binary for full-size datasets)");
    println!("Paper reference: B=64 is optimal; B=32 under-utilises the Dense Engine.\n");
}

fn bench_block_sizes(c: &mut Criterion) {
    let ctx = SuiteContext::materialize(&SuiteOptions::quick()).expect("dataset synthesis failed");
    let workload = Workload::new(DatasetKind::Citeseer, NetworkKind::Gcn);
    let mut group = c.benchmark_group("fig4_block_size");
    group.sample_size(10);
    for b in [32usize, 64, 256, 4096] {
        group.bench_function(format!("B={b}"), |bench| {
            bench.iter(|| {
                ctx.simulate_gnnerator(black_box(&workload), DataflowConfig::blocked(b))
                    .expect("simulation failed")
            })
        });
    }
    group.finish();
}

fn main() {
    print_figure4();
    let mut criterion = Criterion::default().configure_from_args();
    bench_block_sizes(&mut criterion);
    criterion.final_summary();
}
