//! Criterion benchmarks for the graph-build pipeline: R-MAT synthesis
//! (through the chunked parallel builder) and `ShardGrid::build`, at dataset
//! scales 0.25 and 1.0, so future PRs can track graph-build regressions the
//! same way the sweep engine is tracked. The `edge_build` group additionally
//! pits the disk-spilling out-of-core path against the in-memory path on
//! identical inputs, pricing the spill-and-merge overhead directly.
//!
//! Run with `cargo bench -p gnnerator-bench --bench graph_build`.

use criterion::{black_box, Criterion};
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::{generators, Edge, EdgeListBuilder, MemoryBudget, ShardGrid};

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    let mut group = criterion.benchmark_group("graph_build");
    group.sample_size(5);

    for scale in [0.25, 1.0] {
        // Pubmed is the largest Table II dataset: the historical graph-build
        // hot spot.
        let spec = DatasetKind::Pubmed.spec().scaled(scale);
        group.bench_function(format!("rmat/pubmed@{scale}"), |b| {
            b.iter(|| {
                generators::rmat_exact(black_box(spec.vertices), black_box(spec.edges), 42)
                    .expect("valid spec")
            })
        });

        let edges = generators::rmat_exact(spec.vertices, spec.edges, 42).expect("valid spec");
        // 512 nodes per shard is the order the paper's SRAM sizing derives
        // for these graphs.
        group.bench_function(format!("shard_grid_build/pubmed@{scale}"), |b| {
            b.iter(|| ShardGrid::build(black_box(&edges), 512).expect("valid parameters"))
        });
    }

    // One ogbn-scale point (quarter scale ≈ 290k edges) keeps the pipeline's
    // new ceiling visible without making the bench run minutes long.
    let arxiv = DatasetKind::OgbnArxiv.spec().scaled(0.25);
    group.bench_function("rmat/ogbn-arxiv@0.25", |b| {
        b.iter(|| {
            generators::rmat_exact(black_box(arxiv.vertices), black_box(arxiv.edges), 42)
                .expect("valid spec")
        })
    });

    // Spilled versus in-memory edge-list construction on identical inputs:
    // the same pushes, but a budget small enough that every sealed chunk
    // spills to a run file and the finish is a k-way merge over disk. The
    // delta between the two bars is the out-of-core pipeline's overhead.
    for (label, spec) in [
        ("pubmed@1", DatasetKind::Pubmed.spec()),
        (
            "ogbn-arxiv@0.25",
            DatasetKind::OgbnArxiv.spec().scaled(0.25),
        ),
    ] {
        let edges: Vec<Edge> = generators::rmat_exact(spec.vertices, spec.edges, 42)
            .expect("valid spec")
            .iter()
            .copied()
            .collect();
        let build = |budget: MemoryBudget| {
            let mut builder =
                EdgeListBuilder::new(spec.vertices).with_memory_budget(black_box(budget));
            for &edge in &edges {
                builder.push(edge).expect("in-range edge");
            }
            builder.try_finish().expect("merge succeeds")
        };
        group.bench_function(format!("edge_build/in_memory/{label}"), |b| {
            b.iter(|| build(MemoryBudget::unbounded()))
        });
        group.bench_function(format!("edge_build/spilled/{label}"), |b| {
            b.iter(|| build(MemoryBudget::bytes(256 << 10)))
        });
    }
    group.finish();
    criterion.final_summary();
}
