//! Table V bench: regenerates the GNNerator-versus-HyGCN comparison and
//! benchmarks the baseline estimators.
//!
//! Run with `cargo bench -p gnnerator-bench --bench table5_hygcn`.

use criterion::{black_box, Criterion};
use gnnerator_baselines::{GpuModel, HygcnModel};
use gnnerator_bench::experiments;
use gnnerator_bench::suite::{SuiteContext, SuiteOptions};
use gnnerator_gnn::NetworkKind;

/// Regenerates the Table V comparison at a reduced dataset scale.
fn print_table5() {
    let options = SuiteOptions::paper().with_scale(0.25);
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let rows = experiments::table5(&ctx).expect("simulation failed");
    println!("{}", experiments::table5_table(&rows));
    println!("(dataset scale 0.25; run the `table5` binary for full-size datasets)");
    println!("Paper reference: 3.8x / 3.2x / 2.3x with blocking, 1.8x / 0.8x / 1.0x without.\n");
}

fn bench_baseline_models(c: &mut Criterion) {
    let model = NetworkKind::Gcn
        .build_paper_config(1433, 7)
        .expect("valid model");
    let gpu = GpuModel::rtx_2080_ti();
    let hygcn = HygcnModel::paper_default();
    let mut group = c.benchmark_group("table5_baseline_estimates");
    group.bench_function("gpu_estimate", |b| {
        b.iter(|| gpu.estimate(black_box(&model), 2708, 10556))
    });
    group.bench_function("hygcn_estimate", |b| {
        b.iter(|| hygcn.estimate(black_box(&model), 2708, 10556))
    });
    group.finish();
}

fn main() {
    print_table5();
    let mut criterion = Criterion::default().configure_from_args();
    bench_baseline_models(&mut criterion);
    criterion.final_summary();
}
