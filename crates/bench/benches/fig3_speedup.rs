//! Figure 3 bench: regenerates the speedup-over-GPU table and benchmarks the
//! simulator on the suite workloads.
//!
//! Run with `cargo bench -p gnnerator-bench --bench fig3_speedup`.

use criterion::{black_box, Criterion};
use gnnerator::DataflowConfig;
use gnnerator_bench::experiments;
use gnnerator_bench::suite::{SuiteContext, SuiteOptions, Workload};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;

/// Regenerates the Figure 3 table at a reduced dataset scale so `cargo bench`
/// stays quick while preserving the relative shape.
fn print_figure3() {
    let options = SuiteOptions::paper().with_scale(0.25);
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let (rows, gm_blocked, gm_unblocked) = experiments::figure3(&ctx).expect("simulation failed");
    println!(
        "{}",
        experiments::figure3_table(&rows, gm_blocked, gm_unblocked)
    );
    println!("(dataset scale 0.25; run the `fig3` binary for full-size datasets)");
    println!("Paper reference: geomean 8.0x with blocking, 4.2x without.\n");
}

fn bench_simulator(c: &mut Criterion) {
    let ctx = SuiteContext::materialize(&SuiteOptions::quick()).expect("dataset synthesis failed");
    let mut group = c.benchmark_group("fig3_simulation");
    group.sample_size(10);
    for dataset in [DatasetKind::Cora, DatasetKind::Pubmed] {
        let workload = Workload::new(dataset, NetworkKind::Gcn);
        group.bench_function(format!("blocked/{}", workload.label()), |b| {
            b.iter(|| {
                ctx.simulate_gnnerator(black_box(&workload), DataflowConfig::blocked(64))
                    .expect("simulation failed")
            })
        });
        group.bench_function(format!("conventional/{}", workload.label()), |b| {
            b.iter(|| {
                ctx.simulate_gnnerator(black_box(&workload), DataflowConfig::conventional())
                    .expect("simulation failed")
            })
        });
    }
    group.finish();
}

fn main() {
    print_figure3();
    let mut criterion = Criterion::default().configure_from_args();
    bench_simulator(&mut criterion);
    criterion.final_summary();
}
