//! Figure 5 bench: regenerates the scaling study and benchmarks simulation of
//! the scaled platform configurations.
//!
//! Run with `cargo bench -p gnnerator-bench --bench fig5_scaling`.

use criterion::{black_box, Criterion};
use gnnerator::{DataflowConfig, GnneratorConfig};
use gnnerator_bench::experiments;
use gnnerator_bench::suite::{SuiteContext, SuiteOptions, Workload};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;

/// Regenerates the Figure 5 table at a reduced dataset scale.
fn print_figure5() {
    let options = SuiteOptions::paper().with_scale(0.25);
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let (rows, gmeans) = experiments::figure5(&ctx).expect("simulation failed");
    println!("{}", experiments::figure5_table(&rows, &gmeans));
    println!("(dataset scale 0.25; run the `fig5` binary for full-size datasets)");
    println!("Paper reference: bandwidth helps small hidden dims; dense compute wins at 1024.\n");
}

fn bench_scaled_configs(c: &mut Criterion) {
    let ctx = SuiteContext::materialize(&SuiteOptions::quick().with_hidden_dim(128))
        .expect("dataset synthesis failed");
    let workload = Workload::new(DatasetKind::Cora, NetworkKind::Gcn);
    let base = GnneratorConfig::paper_default();
    let configs = [
        ("baseline", base.clone()),
        ("2x-graph-mem", base.with_double_graph_memory()),
        ("2x-dense", base.with_double_dense_compute()),
        ("2x-bandwidth", base.with_double_feature_bandwidth()),
    ];
    let mut group = c.benchmark_group("fig5_scaled_configs");
    group.sample_size(10);
    for (name, config) in configs {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                ctx.simulate_with_config(
                    black_box(&workload),
                    config.clone(),
                    DataflowConfig::blocked(64),
                )
                .expect("simulation failed")
            })
        });
    }
    group.finish();
}

fn main() {
    print_figure5();
    let mut criterion = Criterion::default().configure_from_args();
    bench_scaled_configs(&mut criterion);
    criterion.final_summary();
}
