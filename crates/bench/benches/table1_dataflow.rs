//! Table I bench: regenerates the analytical shard-dataflow cost table and
//! benchmarks the cost model plus the sharding path it feeds.
//!
//! Run with `cargo bench -p gnnerator-bench --bench table1_dataflow`.

use criterion::{black_box, Criterion};
use gnnerator::cost;
use gnnerator_bench::experiments;
use gnnerator_graph::{generators, ShardGrid};

fn print_table1() {
    println!("{}", experiments::table1_table());
    println!("{}", experiments::table2_table());
    println!("{}", experiments::table4_table());
}

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cost_model");
    group.bench_function("evaluate_table", |b| {
        b.iter(|| {
            cost::evaluate_table(
                black_box(&[2, 4, 8, 16, 32, 64]),
                black_box(&[1, 4, 16, 64, 256, 1024]),
            )
        })
    });
    group.bench_function("choose_order", |b| {
        b.iter(|| {
            let mut picked = 0usize;
            for s in 1..64u64 {
                for i in 1..64u64 {
                    if cost::choose_order(black_box(s), black_box(i))
                        == gnnerator_graph::TraversalOrder::DestinationStationary
                    {
                        picked += 1;
                    }
                }
            }
            picked
        })
    });
    group.finish();

    let edges = generators::rmat(2000, 12000, 7).expect("valid parameters");
    let mut group = c.benchmark_group("table1_sharding");
    group.sample_size(20);
    for nodes_per_shard in [64usize, 256, 1024] {
        group.bench_function(format!("shard_grid/n={nodes_per_shard}"), |b| {
            b.iter(|| ShardGrid::build(black_box(&edges), nodes_per_shard).expect("valid graph"))
        });
    }
    group.finish();
}

fn main() {
    print_table1();
    let mut criterion = Criterion::default().configure_from_args();
    bench_cost_model(&mut criterion);
    criterion.final_summary();
}
