//! Criterion benchmarks for bounded shard-window residency: the full
//! serpentine edge walk over a resident `ShardGrid` versus the same walk
//! faulting extents through the LRU shard window, on pubmed@1 and
//! ogbn-arxiv@0.25. The delta between the resident and windowed bars is
//! the price of simulating from disk; the `tight` variant squeezes the
//! window below the largest serpentine row so every pass pays eviction
//! churn, bounding the worst case.
//!
//! Run with `cargo bench -p gnnerator-bench --bench shard_window`.

use criterion::{black_box, Criterion};
use gnnerator_graph::datasets::DatasetKind;
use gnnerator_graph::{generators, ArtifactCache, ShardGrid, TraversalOrder, BYTES_PER_EDGE};
use std::sync::Arc;

/// Drains the destination-stationary serpentine walk, consuming every
/// shard's edges the way the functional path does.
fn drain_walk(grid: &ShardGrid) -> u64 {
    let mut acc = 0u64;
    for shard in grid.occupied_traversal(TraversalOrder::DestinationStationary) {
        for edge in shard.edges() {
            acc = acc.wrapping_add(edge.src as u64 ^ edge.dst as u64);
        }
    }
    acc
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    let mut group = criterion.benchmark_group("shard_window");
    group.sample_size(5);

    let dir = std::env::temp_dir().join(format!("gnnerator-bench-window-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = Arc::new(ArtifactCache::new(&dir));

    for (label, spec) in [
        ("pubmed@1", DatasetKind::Pubmed.spec()),
        (
            "ogbn-arxiv@0.25",
            DatasetKind::OgbnArxiv.spec().scaled(0.25),
        ),
    ] {
        let edges = generators::rmat_exact(spec.vertices, spec.edges, 42).expect("valid spec");
        let resident = ShardGrid::build(&edges, 512).expect("valid parameters");
        let key = ArtifactCache::grid_key(label, 512, false);
        cache.store_grid(&key, &resident).expect("store grid");

        group.bench_function(format!("resident_walk/{label}"), |b| {
            b.iter(|| black_box(drain_walk(black_box(&resident))))
        });

        // A roomy window: the first pass faults every extent, later passes
        // are pure cache hits — the steady-state windowed cost.
        let roomy = cache
            .load_grid_windowed(&key, 1 << 30)
            .expect("load")
            .expect("present");
        group.bench_function(format!("windowed_walk/{label}"), |b| {
            b.iter(|| black_box(drain_walk(black_box(&roomy))))
        });

        // A window smaller than the largest serpentine row: every pass
        // re-faults and evicts, the worst case the CI smoke exercises.
        let largest_row = (0..resident.grid_dim())
            .map(|src| {
                resident
                    .row_metas(src)
                    .iter()
                    .map(|m| m.num_edges() as u64 * BYTES_PER_EDGE)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        let tight = cache
            .load_grid_windowed(&key, largest_row / 2)
            .expect("load")
            .expect("present");
        group.bench_function(format!("windowed_walk_tight/{label}"), |b| {
            b.iter(|| black_box(drain_walk(black_box(&tight))))
        });
    }

    group.finish();
    criterion.final_summary();
    std::fs::remove_dir_all(&dir).ok();
}
