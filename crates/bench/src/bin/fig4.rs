//! Regenerates Figure 4: slowdown as a function of the feature-block size B,
//! relative to the B = 64 baseline, averaged over the nine-benchmark suite.
//! The baseline and all seven swept block sizes execute as one parallel
//! 72-point scenario sweep over compile-once sessions.
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin fig4 [-- --scale 0.1]`

use gnnerator_bench::experiments::{self, FIGURE4_BLOCK_SIZES};
use gnnerator_bench::suite::{scale_from_args, SuiteContext, SuiteOptions};

fn main() {
    let scale = scale_from_args(std::env::args());
    let options = SuiteOptions::paper().with_scale(scale);
    println!("Synthesising datasets (scale {scale})...");
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let rows = experiments::figure4(&ctx, &FIGURE4_BLOCK_SIZES).expect("simulation failed");
    println!();
    println!("{}", experiments::figure4_table(&rows));
    println!(
        "Paper reference: B=64 is best; B=32 under-utilises the 64-wide Dense Engine and large B degrades towards the conventional dataflow (Figure 4)."
    );
    println!(
        "Sweep caches: {} datasets, {} compiled sessions.",
        ctx.runner().cached_datasets(),
        ctx.runner().cached_sessions()
    );
}
