//! Regenerates Figure 3: speedup of GNNerator (with and without feature
//! blocking) over the GPU-roofline (RTX 2080 Ti) backend for the
//! nine-benchmark suite, executed as one parallel 36-point scenario sweep
//! that evaluates the accelerator and both baseline backends together.
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin fig3 [-- --scale 0.1]`

use gnnerator_bench::experiments;
use gnnerator_bench::suite::{scale_from_args, SuiteContext, SuiteOptions};

fn main() {
    let scale = scale_from_args(std::env::args());
    let options = SuiteOptions::paper().with_scale(scale);
    println!("Synthesising datasets (scale {scale})...");
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let (rows, gm_blocked, gm_unblocked) = experiments::figure3(&ctx).expect("simulation failed");
    println!();
    println!(
        "{}",
        experiments::figure3_table(&rows, gm_blocked, gm_unblocked)
    );
    println!("Paper reference: geomean 8.0x with blocking, 4.2x without (Figure 3).");
    println!(
        "Sweep caches: {} datasets, {} compiled sessions.",
        ctx.runner().cached_datasets(),
        ctx.runner().cached_sessions()
    );
}
