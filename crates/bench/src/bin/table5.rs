//! Regenerates Table V: speedup of GNNerator over the HyGCN backend for GCN
//! on the three citation datasets, read off the unified sweep's speedup
//! columns (every accelerator point carries its baseline seconds).
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin table5 [-- --scale 0.1]`

use gnnerator_bench::experiments;
use gnnerator_bench::suite::{scale_from_args, SuiteContext, SuiteOptions};

fn main() {
    let scale = scale_from_args(std::env::args());
    let options = SuiteOptions::paper().with_scale(scale);
    println!("Synthesising datasets (scale {scale})...");
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let rows = experiments::table5(&ctx).expect("simulation failed");
    println!();
    println!("{}", experiments::table5_table(&rows));
    println!(
        "Paper reference: 3.8x / 3.2x / 2.3x with blocking, 1.8x / 0.8x / 1.0x without (Table V)."
    );
    println!(
        "Sweep caches: {} datasets, {} compiled sessions.",
        ctx.runner().cached_datasets(),
        ctx.runner().cached_sessions()
    );
}
