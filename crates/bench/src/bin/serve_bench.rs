//! Load generator for the serving API.
//!
//! Starts an in-process [`SessionServer`], warms its session pool, then
//! measures three ways of answering the same mixed-backend request stream:
//!
//! 1. **cold replay** — no server: every request builds a fresh
//!    [`SimSession`](gnnerator::SimSession) and evaluates it, the way the
//!    harness answered one-shot questions before the serving layer (the
//!    same convention `BENCH_sweep.json`'s `serial_seconds` uses: datasets
//!    are pre-materialised and shared, compilation is paid per request);
//! 2. **serial HTTP** — one client replaying the stream against the warm
//!    server, one request in flight at a time;
//! 3. **concurrent HTTP** — the same stream split over N client threads.
//!
//! The headline number is concurrent-server throughput versus the cold
//! serial replay: that is what the warm [`SessionPool`] buys. The
//! concurrent-versus-serial-HTTP ratio additionally shows client-side
//! pipelining (≈1.0 on a single-core host, where both streams saturate the
//! CPU; >1 on multi-core runners). When a `BENCH_sweep.json` from
//! `all_experiments` is present, a `"serving"` section is appended
//! (idempotently, replacing any previous one).
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin serve_bench -- \
//!     [--clients 4] [--requests 6] [--scale 0.25] [--require-speedup]`
//!
//! [`SessionPool`]: gnnerator_serve::SessionPool
//! [`SessionServer`]: gnnerator_serve::SessionServer

use gnnerator::{build_session, evaluate_scenario, materialize_dataset, ScenarioSpec};
use gnnerator_bench::suite::scale_from_args;
use gnnerator_graph::datasets::Dataset;
use gnnerator_serve::{client, scenario_from_json, Json, ServeConfig, SessionServer};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// The benchmark's request mix: both paper datasets' GCN workloads on every
/// backend, so one run exercises accelerator simulation and both analytical
/// baselines through the same front door.
fn request_bodies(scale: f64) -> Vec<String> {
    let mut bodies = Vec::new();
    for dataset in ["cora", "citeseer"] {
        for backend in ["gnnerator", "gpu-roofline", "hygcn"] {
            bodies.push(format!(
                "{{\"dataset\": \"{dataset}\", \"network\": \"gcn\", \"backend\": \"{backend}\", \
                 \"scale\": {scale}, \"seed\": 42}}"
            ));
        }
    }
    bodies
}

fn send(addr: SocketAddr, body: &str) -> f64 {
    let response = client::post(addr, "/simulate", body).expect("request failed");
    assert!(
        response.is_ok(),
        "server answered {}: {}",
        response.status,
        response.body
    );
    let point = response.json().expect("response is JSON");
    let seconds = point
        .get("seconds")
        .and_then(Json::as_f64)
        .expect("response carries seconds");
    assert!(seconds.is_finite() && seconds > 0.0, "degenerate point");
    point
        .get("latency_seconds")
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.windows(2)
        .find(|w| w[0] == name)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients = flag(&args, "--clients", 4).max(1);
    let requests_per_client = flag(&args, "--requests", 6).max(1);
    let scale = scale_from_args(args.iter().cloned());
    let require_speedup = args.iter().any(|a| a == "--require-speedup");

    let bodies = request_bodies(scale);
    let scenarios: Vec<ScenarioSpec> = bodies
        .iter()
        .map(|body| {
            scenario_from_json(&Json::parse(body).expect("request mix is valid JSON"))
                .expect("request mix maps to scenarios")
        })
        .collect();
    let total_requests = clients * requests_per_client;

    // Cold replay baseline: pre-materialise datasets (identical work either
    // way, excluded from the timing — the BENCH_sweep convention), then pay
    // a fresh session build per request.
    let mut datasets: HashMap<(String, u64), Arc<Dataset>> = HashMap::new();
    for scenario in &scenarios {
        datasets
            .entry((scenario.dataset.name.to_string(), scenario.seed))
            .or_insert_with(|| {
                Arc::new(
                    materialize_dataset(scenario.dataset, scenario.seed, None)
                        .expect("request-mix datasets synthesise"),
                )
            });
    }
    let start = Instant::now();
    for i in 0..total_requests {
        let scenario = &scenarios[i % scenarios.len()];
        let dataset = &datasets[&(scenario.dataset.name.to_string(), scenario.seed)];
        let session =
            Arc::new(build_session(scenario, dataset, None).expect("cold session build failed"));
        evaluate_scenario(scenario, &session).expect("cold evaluation failed");
    }
    let cold_seconds = start.elapsed().as_secs_f64();

    // The warm server under test.
    let server = SessionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            workers: clients,
            ..ServeConfig::default()
        },
    )
    .expect("failed to start server");
    let addr = server.local_addr();
    println!(
        "serve_bench: server on {addr}, {clients} clients x {requests_per_client} requests, scale {scale}"
    );

    // Warm the pool: after this, the steady state pays evaluation only.
    let warm_start = Instant::now();
    for body in &bodies {
        send(addr, body);
    }
    let warm_seconds = warm_start.elapsed().as_secs_f64();
    println!(
        "warm-up: {} distinct scenarios in {warm_seconds:.3}s",
        bodies.len()
    );

    // Serial HTTP replay: one client, one request in flight at a time.
    let start = Instant::now();
    let mut serial_latency = 0.0;
    for i in 0..total_requests {
        serial_latency += send(addr, &bodies[i % bodies.len()]);
    }
    let serial_seconds = start.elapsed().as_secs_f64();

    // Concurrent HTTP replay: the same request stream split over N clients.
    let start = Instant::now();
    let concurrent_latency: f64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut latency = 0.0;
                    for i in 0..requests_per_client {
                        latency +=
                            send(addr, &bodies[(c * requests_per_client + i) % bodies.len()]);
                    }
                    latency
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let concurrent_seconds = start.elapsed().as_secs_f64();

    let cold_rps = total_requests as f64 / cold_seconds.max(1e-12);
    let serial_rps = total_requests as f64 / serial_seconds.max(1e-12);
    let concurrent_rps = total_requests as f64 / concurrent_seconds.max(1e-12);
    let speedup_vs_cold = concurrent_rps / cold_rps.max(1e-12);
    let client_pipelining = concurrent_rps / serial_rps.max(1e-12);

    let stats = client::get(addr, "/stats")
        .expect("stats request failed")
        .json()
        .expect("stats are JSON");
    let pool = stats.get("pool").expect("stats carry a pool section");
    let pool_count = |key: &str| pool.get(key).and_then(Json::as_u64).unwrap_or(0);
    let (hits, misses, built) = (
        pool_count("hits"),
        pool_count("misses"),
        pool_count("sessions_built"),
    );
    server.shutdown();

    println!(
        "cold replay (fresh session per request): {total_requests} requests in {cold_seconds:.3}s ({cold_rps:.1} req/s)"
    );
    println!(
        "serial HTTP (warm pool):                 {total_requests} requests in {serial_seconds:.3}s ({serial_rps:.1} req/s)"
    );
    println!(
        "concurrent HTTP ({clients} clients):     {total_requests} requests in {concurrent_seconds:.3}s ({concurrent_rps:.1} req/s)"
    );
    println!("concurrent server vs cold serial replay: {speedup_vs_cold:.2}x");
    println!("client pipelining (concurrent vs serial HTTP): {client_pipelining:.2}x");
    println!("pool: {hits} hits / {misses} misses, {built} sessions built");
    assert_eq!(
        built as usize,
        bodies.len() / 3,
        "steady state must reuse warm sessions (one per dataset-model pair)"
    );

    let section = format!(
        "{{\"clients\": {clients}, \"requests_per_client\": {requests_per_client}, \
         \"total_requests\": {total_requests}, \"scale\": {scale}, \
         \"warmup_seconds\": {warm_seconds:.6}, \"cold_replay_seconds\": {cold_seconds:.6}, \
         \"serial_seconds\": {serial_seconds:.6}, \"concurrent_seconds\": {concurrent_seconds:.6}, \
         \"cold_replay_rps\": {cold_rps:.3}, \"serial_rps\": {serial_rps:.3}, \
         \"concurrent_rps\": {concurrent_rps:.3}, \"speedup_vs_cold_replay\": {speedup_vs_cold:.3}, \
         \"client_pipelining\": {client_pipelining:.3}, \
         \"mean_serial_latency_seconds\": {:.6}, \"mean_concurrent_latency_seconds\": {:.6}, \
         \"pool_hits\": {hits}, \"pool_misses\": {misses}, \"sessions_built\": {built}}}",
        serial_latency / total_requests as f64,
        concurrent_latency / total_requests as f64,
    );
    match append_serving_section("BENCH_sweep.json", &section) {
        Ok(true) => println!("appended serving section to BENCH_sweep.json"),
        Ok(false) => println!("BENCH_sweep.json not found; serving section not persisted"),
        Err(e) => println!("could not update BENCH_sweep.json: {e}"),
    }

    if require_speedup && speedup_vs_cold <= 1.0 {
        eprintln!(
            "FAIL: concurrent server throughput ({concurrent_rps:.1} req/s) did not exceed the \
             cold serial replay ({cold_rps:.1} req/s)"
        );
        std::process::exit(1);
    }
}

/// Splices (or replaces) the `"serving"` section into an existing
/// `BENCH_sweep.json`. Returns `Ok(false)` when the file does not exist.
fn append_serving_section(path: &str, section: &str) -> std::io::Result<bool> {
    const MARKER: &str = ",\n  \"serving\": ";
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    // Re-runs replace the previous section instead of stacking duplicates.
    let base = match text.find(MARKER) {
        Some(i) => text[..i].to_string(),
        None => match text.trim_end().strip_suffix('}') {
            // Exactly one closing brace: stripping more would unbalance a
            // document whose points array abuts the top-level close.
            Some(without_close) => without_close.trim_end().to_string(),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "BENCH_sweep.json does not end with a JSON object",
                ));
            }
        },
    };
    std::fs::write(path, format!("{base}{MARKER}{section}\n}}\n"))?;
    Ok(true)
}
