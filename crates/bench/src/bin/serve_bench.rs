//! Load generator for the serving API.
//!
//! Starts an in-process [`SessionServer`], warms its session pool, then
//! measures four ways of answering the same mixed-backend request stream:
//!
//! 1. **cold replay** — no server: every request builds a fresh
//!    [`SimSession`](gnnerator::SimSession) and evaluates it, the way the
//!    harness answered one-shot questions before the serving layer (the
//!    same convention `BENCH_sweep.json`'s `serial_seconds` uses: datasets
//!    are pre-materialised and shared, compilation is paid per request);
//! 2. **serial HTTP, connection per request** — one client replaying the
//!    stream with a fresh `Connection: close` socket each time (the PR-5
//!    serving path);
//! 3. **serial HTTP, keep-alive** — the same stream on one persistent
//!    connection, isolating what connection reuse buys;
//! 4. **concurrent HTTP** — the stream split over N keep-alive clients.
//!
//! Per-request latencies are recorded client-side and reported as exact
//! sorted percentiles (p50/p95/p99) at full float precision. With `--soak`,
//! a fifth phase drives hundreds of concurrent keep-alive connections with
//! overlapping session keys through the admission queue, asserting zero
//! 5xx, `Retry-After` on every shed `429` and a bounded queue, and records
//! sustained rps, latency percentiles, the batch-size distribution and the
//! shed rate. With `--chaos`, a sixth phase arms deterministic faults
//! (`gnnerator-faults`) against the live server — eval-worker panics plus a
//! cold-build failure that trips the session circuit breaker — and asserts
//! graceful degradation: every request answered with a typed status (zero
//! hangs), bounded p99, panicked workers respawned, breaker trips visible
//! in `/stats`; then clears the faults and asserts full recovery (error
//! rate back to zero, `/readyz` green, served results bit-identical to the
//! sweep path). When a `BENCH_sweep.json` from `all_experiments` is
//! present, a `"serving"` section is appended (idempotently, replacing any
//! previous one).
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin serve_bench -- \
//!     [--clients 4] [--requests 6] [--scale 0.25] [--require-speedup] \
//!     [--soak] [--chaos] [--connections 200] [--soak-requests 30] \
//!     [--queue-depth 256]`
//!
//! [`SessionPool`]: gnnerator_serve::SessionPool
//! [`SessionServer`]: gnnerator_serve::SessionServer

use gnnerator::{build_session, evaluate_scenario, materialize_dataset, ScenarioSpec};
use gnnerator_bench::suite::scale_from_args;
use gnnerator_graph::datasets::Dataset;
use gnnerator_serve::{
    client, client::ClientConnection, scenario_from_json, Json, ServeConfig, SessionServer,
};
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// The benchmark's request mix: both paper datasets' GCN workloads on every
/// backend, so one run exercises accelerator simulation and both analytical
/// baselines through the same front door. Backends share session keys per
/// dataset, so concurrently queued requests coalesce under load.
fn request_bodies(scale: f64) -> Vec<String> {
    let mut bodies = Vec::new();
    for dataset in ["cora", "citeseer"] {
        for backend in ["gnnerator", "gpu-roofline", "hygcn"] {
            bodies.push(format!(
                "{{\"dataset\": \"{dataset}\", \"network\": \"gcn\", \"backend\": \"{backend}\", \
                 \"scale\": {scale}, \"seed\": 42}}"
            ));
        }
    }
    bodies
}

fn check_point(body: &str) -> Json {
    let point = Json::parse(body).expect("response is JSON");
    let seconds = point
        .get("seconds")
        .and_then(Json::as_f64)
        .expect("response carries seconds");
    assert!(seconds.is_finite() && seconds > 0.0, "degenerate point");
    point
}

/// One request on a fresh `Connection: close` socket (the PR-5 path);
/// returns the client-observed wall latency.
fn send_close(addr: SocketAddr, body: &str) -> f64 {
    let started = Instant::now();
    let response = client::post(addr, "/simulate", body).expect("request failed");
    let latency = started.elapsed().as_secs_f64();
    assert!(
        response.is_ok(),
        "server answered {}: {}",
        response.status,
        response.body
    );
    check_point(&response.body);
    latency
}

/// One request on a pooled keep-alive connection; returns the
/// client-observed wall latency and the server-reported batch size.
fn send_keepalive(connection: &mut ClientConnection, body: &str) -> (f64, u64) {
    let started = Instant::now();
    let response = connection.post("/simulate", body).expect("request failed");
    let latency = started.elapsed().as_secs_f64();
    assert!(
        response.is_ok(),
        "server answered {}: {}",
        response.status,
        response.body
    );
    let point = check_point(&response.body);
    let batch_size = point.get("batch_size").and_then(Json::as_u64).unwrap_or(1);
    (latency, batch_size)
}

/// Exact percentile over a sorted sample set (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Full-precision float rendering (shortest round-trip form, `null` for
/// non-finite) — no fixed-point truncation that would flatten microsecond
/// latencies to zero.
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// `{"mean": ..., "p50": ..., "p95": ..., "p99": ...}` over raw samples.
fn latency_json(samples: &mut [f64]) -> String {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    format!(
        "{{\"mean_seconds\": {}, \"p50_seconds\": {}, \"p95_seconds\": {}, \"p99_seconds\": {}}}",
        num(mean),
        num(percentile(samples, 0.50)),
        num(percentile(samples, 0.95)),
        num(percentile(samples, 0.99)),
    )
}

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.windows(2)
        .find(|w| w[0] == name)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

struct SoakOutcome {
    section: String,
    sustained_rps: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients = flag(&args, "--clients", 4).max(1);
    let requests_per_client = flag(&args, "--requests", 6).max(1);
    let scale = scale_from_args(args.iter().cloned());
    let require_speedup = args.iter().any(|a| a == "--require-speedup");
    let soak = args.iter().any(|a| a == "--soak");
    let chaos = args.iter().any(|a| a == "--chaos");
    let soak_connections = flag(&args, "--connections", 200).max(1);
    let soak_requests = flag(&args, "--soak-requests", 30).max(1);
    let queue_depth = flag(&args, "--queue-depth", 256).max(1);

    let bodies = request_bodies(scale);
    let scenarios: Vec<ScenarioSpec> = bodies
        .iter()
        .map(|body| {
            scenario_from_json(&Json::parse(body).expect("request mix is valid JSON"))
                .expect("request mix maps to scenarios")
        })
        .collect();
    let total_requests = clients * requests_per_client;

    // Cold replay baseline: pre-materialise datasets (identical work either
    // way, excluded from the timing — the BENCH_sweep convention), then pay
    // a fresh session build per request.
    let mut datasets: HashMap<(String, u64), Arc<Dataset>> = HashMap::new();
    for scenario in &scenarios {
        datasets
            .entry((scenario.dataset.name.to_string(), scenario.seed))
            .or_insert_with(|| {
                Arc::new(
                    materialize_dataset(scenario.dataset, scenario.seed, None)
                        .expect("request-mix datasets synthesise"),
                )
            });
    }
    let start = Instant::now();
    for i in 0..total_requests {
        let scenario = &scenarios[i % scenarios.len()];
        let dataset = &datasets[&(scenario.dataset.name.to_string(), scenario.seed)];
        let session =
            Arc::new(build_session(scenario, dataset, None).expect("cold session build failed"));
        evaluate_scenario(scenario, &session).expect("cold evaluation failed");
    }
    let cold_seconds = start.elapsed().as_secs_f64();

    // The warm server under test.
    let server = SessionServer::start(
        "127.0.0.1:0",
        ServeConfig {
            workers: clients,
            queue_depth,
            ..ServeConfig::default()
        },
    )
    .expect("failed to start server");
    let addr = server.local_addr();
    println!(
        "serve_bench: server on {addr}, {clients} clients x {requests_per_client} requests, scale {scale}"
    );

    // Warm the pool: after this, the steady state pays evaluation only.
    let warm_start = Instant::now();
    for body in &bodies {
        send_close(addr, body);
    }
    let warm_seconds = warm_start.elapsed().as_secs_f64();
    println!(
        "warm-up: {} distinct scenarios in {warm_seconds:.3}s",
        bodies.len()
    );

    // Serial HTTP replay, fresh connection per request (the PR-5 path).
    let start = Instant::now();
    let mut close_latencies: Vec<f64> = Vec::with_capacity(total_requests);
    for i in 0..total_requests {
        close_latencies.push(send_close(addr, &bodies[i % bodies.len()]));
    }
    let serial_close_seconds = start.elapsed().as_secs_f64();

    // Serial HTTP replay, one keep-alive connection.
    let mut connection = ClientConnection::new(addr);
    let start = Instant::now();
    let mut serial_latencies: Vec<f64> = Vec::with_capacity(total_requests);
    for i in 0..total_requests {
        let (latency, _) = send_keepalive(&mut connection, &bodies[i % bodies.len()]);
        serial_latencies.push(latency);
    }
    let serial_seconds = start.elapsed().as_secs_f64();
    connection.close();

    // Concurrent HTTP replay: the same stream over N keep-alive clients.
    let start = Instant::now();
    let mut concurrent_latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut connection = ClientConnection::new(addr);
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    for i in 0..requests_per_client {
                        let body = &bodies[(c * requests_per_client + i) % bodies.len()];
                        let (latency, _) = send_keepalive(&mut connection, body);
                        latencies.push(latency);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let concurrent_seconds = start.elapsed().as_secs_f64();

    let cold_rps = total_requests as f64 / cold_seconds.max(1e-12);
    let serial_close_rps = total_requests as f64 / serial_close_seconds.max(1e-12);
    let serial_rps = total_requests as f64 / serial_seconds.max(1e-12);
    let concurrent_rps = total_requests as f64 / concurrent_seconds.max(1e-12);
    let speedup_vs_cold = concurrent_rps / cold_rps.max(1e-12);
    let keepalive_vs_close = serial_rps / serial_close_rps.max(1e-12);
    let client_pipelining = concurrent_rps / serial_rps.max(1e-12);

    // The soak phase runs against the same warm server before shutdown.
    let soak_outcome = if soak {
        Some(run_soak(
            addr,
            &bodies,
            soak_connections,
            soak_requests,
            serial_close_rps,
        ))
    } else {
        None
    };

    // The chaos phase deliberately runs after the soak so fault-era metrics
    // never contaminate the healthy-path numbers above.
    let chaos_section = if chaos {
        Some(run_chaos(
            addr,
            &bodies,
            &scenarios,
            &datasets,
            soak_connections,
            soak_requests,
            scale,
        ))
    } else {
        None
    };

    let stats = client::get(addr, "/stats")
        .expect("stats request failed")
        .json()
        .expect("stats are JSON");
    let pool = stats.get("pool").expect("stats carry a pool section");
    let pool_count = |key: &str| pool.get(key).and_then(Json::as_u64).unwrap_or(0);
    let (hits, misses, built) = (
        pool_count("hits"),
        pool_count("misses"),
        pool_count("sessions_built"),
    );
    server.shutdown();

    println!(
        "cold replay (fresh session per request):   {total_requests} requests in {cold_seconds:.3}s ({cold_rps:.1} req/s)"
    );
    println!(
        "serial HTTP, connection per request:       {total_requests} requests in {serial_close_seconds:.3}s ({serial_close_rps:.1} req/s)"
    );
    println!(
        "serial HTTP, keep-alive:                   {total_requests} requests in {serial_seconds:.3}s ({serial_rps:.1} req/s)"
    );
    println!(
        "concurrent HTTP ({clients} keep-alive clients): {total_requests} requests in {concurrent_seconds:.3}s ({concurrent_rps:.1} req/s)"
    );
    println!("concurrent server vs cold serial replay: {speedup_vs_cold:.2}x");
    println!("keep-alive vs connection-per-request:    {keepalive_vs_close:.2}x");
    println!("client pipelining (concurrent vs serial HTTP): {client_pipelining:.2}x");
    println!("pool: {hits} hits / {misses} misses, {built} sessions built");
    assert_eq!(
        built as usize,
        bodies.len() / 3,
        "steady state must reuse warm sessions (one per dataset-model pair)"
    );

    let soak_section = soak_outcome
        .as_ref()
        .map(|s| s.section.clone())
        .unwrap_or_else(|| "null".to_string());
    let chaos_json = chaos_section.unwrap_or_else(|| "null".to_string());
    let section = format!(
        "{{\"clients\": {clients}, \"requests_per_client\": {requests_per_client}, \
         \"total_requests\": {total_requests}, \"scale\": {scale}, \
         \"warmup_seconds\": {}, \"cold_replay_seconds\": {}, \
         \"serial_close_seconds\": {}, \"serial_seconds\": {}, \"concurrent_seconds\": {}, \
         \"cold_replay_rps\": {}, \"serial_close_rps\": {}, \"serial_rps\": {}, \
         \"concurrent_rps\": {}, \"speedup_vs_cold_replay\": {}, \
         \"keepalive_vs_close\": {}, \"client_pipelining\": {}, \
         \"serial_close_latency\": {}, \"serial_latency\": {}, \"concurrent_latency\": {}, \
         \"pool_hits\": {hits}, \"pool_misses\": {misses}, \"sessions_built\": {built}, \
         \"soak\": {soak_section}, \"chaos\": {chaos_json}}}",
        num(warm_seconds),
        num(cold_seconds),
        num(serial_close_seconds),
        num(serial_seconds),
        num(concurrent_seconds),
        num(cold_rps),
        num(serial_close_rps),
        num(serial_rps),
        num(concurrent_rps),
        num(speedup_vs_cold),
        num(keepalive_vs_close),
        num(client_pipelining),
        latency_json(&mut close_latencies),
        latency_json(&mut serial_latencies),
        latency_json(&mut concurrent_latencies),
    );
    match append_serving_section("BENCH_sweep.json", &section) {
        Ok(true) => println!("appended serving section to BENCH_sweep.json"),
        Ok(false) => println!("BENCH_sweep.json not found; serving section not persisted"),
        Err(e) => println!("could not update BENCH_sweep.json: {e}"),
    }

    if require_speedup {
        if speedup_vs_cold <= 1.0 {
            eprintln!(
                "FAIL: concurrent server throughput ({concurrent_rps:.1} req/s) did not exceed \
                 the cold serial replay ({cold_rps:.1} req/s)"
            );
            std::process::exit(1);
        }
        if let Some(soak) = &soak_outcome {
            if soak.sustained_rps <= serial_close_rps {
                eprintln!(
                    "FAIL: soak sustained throughput ({:.1} req/s) did not exceed the \
                     connection-per-request path ({serial_close_rps:.1} req/s)",
                    soak.sustained_rps
                );
                std::process::exit(1);
            }
        }
    }
}

/// Drives `connections` concurrent keep-alive clients, each replaying
/// `requests` mixed-session-key requests, through the admission queue.
/// Panics on any 5xx, on a shed response without `Retry-After`, and on an
/// unbounded queue. Returns the JSON soak summary.
fn run_soak(
    addr: SocketAddr,
    bodies: &[String],
    connections: usize,
    requests: usize,
    close_baseline_rps: f64,
) -> SoakOutcome {
    println!("soak: {connections} keep-alive connections x {requests} requests");
    let start = Instant::now();
    let per_connection: Vec<(Vec<f64>, Vec<u64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut connection = ClientConnection::new(addr);
                    let mut latencies = Vec::with_capacity(requests);
                    let mut batch_sizes = Vec::with_capacity(requests);
                    let mut shed = 0u64;
                    for i in 0..requests {
                        let body = &bodies[(c + i) % bodies.len()];
                        let started = Instant::now();
                        let response = connection
                            .post("/simulate", body)
                            .expect("soak request failed");
                        match response.status {
                            200 => {
                                let point = check_point(&response.body);
                                latencies.push(started.elapsed().as_secs_f64());
                                batch_sizes.push(
                                    point.get("batch_size").and_then(Json::as_u64).unwrap_or(1),
                                );
                            }
                            429 => {
                                assert_eq!(
                                    response.header("retry-after"),
                                    Some("1"),
                                    "shed responses must carry Retry-After"
                                );
                                shed += 1;
                            }
                            status => {
                                assert!(
                                    status < 500,
                                    "soak hit a 5xx ({status}): {}",
                                    response.body
                                );
                                panic!("unexpected soak status {status}: {}", response.body);
                            }
                        }
                    }
                    (latencies, batch_sizes, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let duration = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut batch_counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut shed = 0u64;
    for (connection_latencies, batch_sizes, connection_shed) in per_connection {
        latencies.extend(connection_latencies);
        for size in batch_sizes {
            *batch_counts.entry(size).or_insert(0) += 1;
        }
        shed += connection_shed;
    }
    let total = (connections * requests) as u64;
    let ok = total - shed;
    let sustained_rps = ok as f64 / duration.max(1e-12);
    let shed_rate = shed as f64 / total as f64;
    let observed_max_batch = batch_counts.keys().max().copied().unwrap_or(0);

    // The queue must have stayed bounded, and the server's shed counter
    // must agree with the 429s clients saw.
    let stats = client::get(addr, "/stats")
        .expect("stats request failed")
        .json()
        .expect("stats are JSON");
    let admission = stats.get("admission").expect("admission section");
    let count = |key: &str| admission.get(key).and_then(Json::as_u64).unwrap_or(0);
    let queue_capacity = count("queue_capacity");
    let peak_queue_depth = count("peak_queue_depth");
    assert!(
        peak_queue_depth <= queue_capacity,
        "queue depth exceeded its bound: {peak_queue_depth} > {queue_capacity}"
    );
    assert!(
        count("shed") >= shed,
        "server shed counter below client-observed 429s"
    );
    let batch = stats.get("batch").expect("batch section");
    let mean_batch_size = batch
        .get("mean_batch_size")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if connections >= 8 {
        assert!(
            observed_max_batch >= 2,
            "overlapping-key soak never coalesced a batch"
        );
    }

    println!(
        "soak: {ok}/{total} ok in {duration:.3}s ({sustained_rps:.1} req/s sustained), \
         {shed} shed ({:.2}% shed rate), mean batch {mean_batch_size:.2}, max batch \
         {observed_max_batch}, peak queue depth {peak_queue_depth}/{queue_capacity}",
        shed_rate * 100.0
    );

    let batch_distribution = batch_counts
        .iter()
        .map(|(size, count)| format!("\"{size}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    let section = format!(
        "{{\"connections\": {connections}, \"requests_per_connection\": {requests}, \
         \"total_requests\": {total}, \"duration_seconds\": {}, \"sustained_rps\": {}, \
         \"close_baseline_rps\": {}, \"keepalive_vs_close\": {}, \"ok\": {ok}, \
         \"shed\": {shed}, \"shed_rate\": {}, \"latency\": {}, \
         \"mean_batch_size\": {}, \"max_batch_size\": {observed_max_batch}, \
         \"batch_size_counts\": {{{batch_distribution}}}, \
         \"peak_queue_depth\": {peak_queue_depth}, \"queue_capacity\": {queue_capacity}}}",
        num(duration),
        num(sustained_rps),
        num(close_baseline_rps),
        num(sustained_rps / close_baseline_rps.max(1e-12)),
        num(shed_rate),
        latency_json(&mut latencies),
        num(mean_batch_size),
    );
    SoakOutcome {
        section,
        sustained_rps,
    }
}

/// Chaos soak against the live server: arms deterministic faults (eval
/// panics every 5th evaluation, every cold session build failing), drives
/// the same keep-alive admission path, and asserts graceful degradation —
/// every request answered with a typed status (zero hangs), `Retry-After`
/// on every backpressure response, bounded p99, panicked workers respawned
/// and breaker trips visible in `/stats`. Then clears the faults and
/// asserts full recovery: every retried request succeeds (error rate back
/// to zero), `/healthz` and `/readyz` are green, and served points are
/// bit-identical to the `SweepRunner::run_one` path. Returns the JSON
/// chaos summary.
fn run_chaos(
    addr: SocketAddr,
    bodies: &[String],
    scenarios: &[ScenarioSpec],
    datasets: &HashMap<(String, u64), Arc<Dataset>>,
    connections: usize,
    requests: usize,
    scale: f64,
) -> String {
    // A session key no warm slot covers: while `session_build:error` is
    // armed every cold build of it fails, so repeated attempts trip the
    // per-key circuit breaker. Tiny scale keeps the (repeated, doomed)
    // dataset synthesis cheap.
    let doomed = format!(
        "{{\"dataset\": \"cora\", \"network\": \"gcn\", \"backend\": \"gnnerator\", \
         \"scale\": {}, \"seed\": 1043}}",
        num(scale.min(0.1)),
    );
    println!("chaos: arming faults, {connections} keep-alive connections x {requests} requests");
    // Injected worker panics are expected by the dozen — mute their
    // backtraces, but let any *real* panic (a failed assertion in a client
    // thread) print as usual.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.contains("injected panic at failpoint") {
            default_hook(info);
        }
    }));
    gnnerator_faults::configure("eval:panic@5,session_build:error", 7)
        .expect("chaos fault spec parses");

    let start = Instant::now();
    let per_connection: Vec<(Vec<f64>, [u64; 4])> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let (bodies, doomed) = (&bodies, &doomed);
                scope.spawn(move || {
                    let mut connection = ClientConnection::new(addr);
                    let mut latencies = Vec::with_capacity(requests);
                    // [ok, shed, injected 5xx, breaker rejections]
                    let mut tally = [0u64; 4];
                    for i in 0..requests {
                        let body = if i % 4 == 3 {
                            doomed.as_str()
                        } else {
                            bodies[(c + i) % bodies.len()].as_str()
                        };
                        let started = Instant::now();
                        let response = connection
                            .post("/simulate", body)
                            .expect("chaos request failed (hung or dropped connection)");
                        latencies.push(started.elapsed().as_secs_f64());
                        match response.status {
                            200 => {
                                check_point(&response.body);
                                tally[0] += 1;
                            }
                            429 => {
                                assert_eq!(
                                    response.header("retry-after"),
                                    Some("1"),
                                    "shed responses must carry Retry-After"
                                );
                                tally[1] += 1;
                            }
                            500 => {
                                assert!(
                                    response.body.contains("error"),
                                    "untyped 500 body: {}",
                                    response.body
                                );
                                tally[2] += 1;
                            }
                            503 => {
                                assert_eq!(
                                    response.header("retry-after"),
                                    Some("1"),
                                    "breaker rejections must carry Retry-After"
                                );
                                tally[3] += 1;
                            }
                            status => {
                                panic!("unaccounted chaos status {status}: {}", response.body)
                            }
                        }
                    }
                    (latencies, tally)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let duration = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut totals = [0u64; 4];
    for (connection_latencies, tally) in per_connection {
        latencies.extend(connection_latencies);
        for (total, count) in totals.iter_mut().zip(tally) {
            *total += count;
        }
    }
    let [ok, shed, injected, rejected] = totals;
    let total = (connections * requests) as u64;
    // Every request returned with a status the arms above account for —
    // reaching this line at all is the zero-hangs proof.
    assert_eq!(ok + shed + injected + rejected, total);
    assert!(ok > 0, "chaos starved every request");
    assert!(injected > 0, "injected faults never surfaced a typed 5xx");
    assert!(
        rejected > 0,
        "repeated doomed builds never tripped the circuit breaker"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99 = percentile(&latencies, 0.99);
    assert!(
        p99 < 30.0,
        "chaos p99 unbounded: {p99:.3}s (injected faults must fail fast)"
    );

    // The server must have survived: every panicked worker respawned, the
    // breaker trips visible, nothing left wedged.
    let stats = client::get(addr, "/stats")
        .expect("stats request failed")
        .json()
        .expect("stats are JSON");
    let workers = stats.get("workers").expect("workers section");
    let worker_count = |key: &str| workers.get(key).and_then(Json::as_u64).unwrap_or(0);
    let (configured, alive) = (worker_count("configured"), worker_count("alive"));
    let (panics, respawns) = (worker_count("panics"), worker_count("respawns"));
    assert!(panics > 0, "eval:panic@5 never panicked a worker");
    assert!(respawns >= panics, "panicked workers were not respawned");
    assert_eq!(
        alive, configured,
        "worker pool did not recover to full size"
    );
    let pool = stats.get("pool").expect("pool section");
    let breaker_trips = pool
        .get("breaker_trips")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(breaker_trips > 0, "stats never recorded a breaker trip");

    println!(
        "chaos: {ok} ok / {shed} shed / {injected} injected 5xx / {rejected} breaker-rejected \
         of {total} in {duration:.3}s (p99 {p99:.3}s); {panics} worker panics, \
         {respawns} respawns, {breaker_trips} breaker trips"
    );

    // Recovery: clear the faults and replay the warm mix with the client's
    // deterministic retry policy — the error rate must return to zero and
    // served points must match the sweep path bit for bit.
    gnnerator_faults::clear();
    let _ = std::panic::take_hook(); // back to the default hook
    let policy = client::RetryPolicy::default();
    let recovery_requests = bodies.len() * 3;
    for i in 0..recovery_requests {
        let body = &bodies[i % bodies.len()];
        let response = client::request_with_retry(addr, "POST", "/simulate", body, policy)
            .expect("recovery request failed");
        assert_eq!(
            response.status, 200,
            "error rate did not return to zero after faults cleared: {} {}",
            response.status, response.body
        );
        let point = check_point(&response.body);
        if i < bodies.len() {
            let served = point
                .get("seconds")
                .and_then(Json::as_f64)
                .expect("served point carries seconds");
            let scenario = &scenarios[i % scenarios.len()];
            let dataset = &datasets[&(scenario.dataset.name.to_string(), scenario.seed)];
            let session = Arc::new(
                build_session(scenario, dataset, None).expect("recovery session build failed"),
            );
            let expected = evaluate_scenario(scenario, &session)
                .expect("recovery evaluation failed")
                .seconds();
            assert_eq!(
                served.to_bits(),
                expected.to_bits(),
                "served point diverged from SweepRunner::run_one after recovery \
                 ({served} != {expected})"
            );
        }
    }
    for probe in ["/healthz", "/readyz"] {
        let response = client::get(addr, probe).expect("probe request failed");
        assert_eq!(
            response.status, 200,
            "{probe} not green after recovery: {}",
            response.body
        );
    }
    println!(
        "chaos: recovered — {recovery_requests}/{recovery_requests} ok after clearing faults, \
         {} points bit-identical to the sweep path, probes green",
        bodies.len()
    );

    format!(
        "{{\"connections\": {connections}, \"requests_per_connection\": {requests}, \
         \"total_requests\": {total}, \"duration_seconds\": {}, \"ok\": {ok}, \
         \"shed\": {shed}, \"injected_5xx\": {injected}, \"breaker_rejections\": {rejected}, \
         \"latency\": {}, \"worker_panics\": {panics}, \"worker_respawns\": {respawns}, \
         \"breaker_trips\": {breaker_trips}, \"recovered_requests\": {recovery_requests}, \
         \"bit_identical_points\": {}}}",
        num(duration),
        latency_json(&mut latencies),
        bodies.len(),
    )
}

/// Splices (or replaces) the `"serving"` section into an existing
/// `BENCH_sweep.json`. Returns `Ok(false)` when the file does not exist.
fn append_serving_section(path: &str, section: &str) -> std::io::Result<bool> {
    const MARKER: &str = ",\n  \"serving\": ";
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    // Re-runs replace the previous section instead of stacking duplicates.
    let base = match text.find(MARKER) {
        Some(i) => text[..i].to_string(),
        None => match text.trim_end().strip_suffix('}') {
            // Exactly one closing brace: stripping more would unbalance a
            // document whose points array abuts the top-level close.
            Some(without_close) => without_close.trim_end().to_string(),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "BENCH_sweep.json does not end with a JSON object",
                ));
            }
        },
    };
    std::fs::write(path, format!("{base}{MARKER}{section}\n}}\n"))?;
    Ok(true)
}
