//! Regenerates Table I: the analytical read/write costs of the
//! source-stationary and destination-stationary shard dataflows, evaluated at
//! representative grid dimensions, plus the configuration tables (II and IV)
//! the evaluation section relies on.
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin table1`

use gnnerator_bench::experiments;

fn main() {
    println!("{}", experiments::table1_table());
    println!("Symbolic forms (Table I):");
    println!("  SRC stationary:  reads = S*I + (S-1)*S - S + 1    writes = S^2 - S + 1");
    println!("  DST stationary:  reads = (S^2 - S + 1) * I        writes = S");
    println!();
    println!("{}", experiments::table2_table());
    println!("{}", experiments::table4_table());
}
