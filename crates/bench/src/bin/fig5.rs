//! Regenerates Figure 5: the scaling study. For each dataset and hidden
//! dimension, the speedup obtained by doubling (a) the Graph Engine memory,
//! (b) the Dense Engine compute, or (c) the feature-memory bandwidth — all
//! 36 scenario points executed as one parallel sweep.
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin fig5 [-- --scale 0.1]`

use gnnerator_bench::experiments;
use gnnerator_bench::suite::{scale_from_args, SuiteContext, SuiteOptions};

fn main() {
    let scale = scale_from_args(std::env::args());
    let options = SuiteOptions::paper().with_scale(scale);
    println!("Synthesising datasets (scale {scale})...");
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");
    let (rows, gmeans) = experiments::figure5(&ctx).expect("simulation failed");
    println!();
    println!("{}", experiments::figure5_table(&rows, &gmeans));
    println!(
        "Paper reference: more bandwidth helps small hidden dimensions; more Dense Engine compute wins at large hidden dimensions (Figure 5)."
    );
    println!(
        "Sweep caches: {} datasets, {} compiled sessions.",
        ctx.runner().cached_datasets(),
        ctx.runner().cached_sessions()
    );
}
