//! Runs every experiment in the paper's evaluation section in one go and
//! prints all tables and figures. This is the binary referenced from
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin all_experiments [-- --scale 0.25]`

use gnnerator_bench::experiments::{self, FIGURE4_BLOCK_SIZES};
use gnnerator_bench::rows::format_ms;
use gnnerator_bench::suite::{full_suite, scale_from_args, SuiteContext, SuiteOptions};

fn main() {
    let scale = scale_from_args(std::env::args());
    let options = SuiteOptions::paper().with_scale(scale);
    println!("GNNerator reproduction — full experiment sweep (dataset scale {scale})");
    println!();

    // Static configuration tables.
    println!("{}", experiments::table1_table());
    println!("{}", experiments::table2_table());
    println!("{}", experiments::table4_table());

    println!("Synthesising datasets...");
    let ctx = SuiteContext::materialize(&options).expect("dataset synthesis failed");

    // Raw per-workload runtimes, for reference.
    println!();
    println!("Per-workload runtimes:");
    for workload in full_suite() {
        let result = ctx.run_workload(&workload).expect("simulation failed");
        println!(
            "  {:<18} gnnerator {:>12}  w/o blocking {:>12}  gpu {:>12}  hygcn {:>12}",
            workload.label(),
            format_ms(result.gnnerator_blocked.seconds()),
            format_ms(result.gnnerator_unblocked.seconds()),
            format_ms(result.gpu.seconds),
            format_ms(result.hygcn.seconds),
        );
    }

    // Figure 3.
    let (rows, gm_blocked, gm_unblocked) = experiments::figure3(&ctx).expect("figure 3 failed");
    println!();
    println!("{}", experiments::figure3_table(&rows, gm_blocked, gm_unblocked));

    // Table V.
    let rows = experiments::table5(&ctx).expect("table 5 failed");
    println!("{}", experiments::table5_table(&rows));

    // Figure 4.
    let rows = experiments::figure4(&ctx, &FIGURE4_BLOCK_SIZES).expect("figure 4 failed");
    println!("{}", experiments::figure4_table(&rows));

    // Figure 5.
    let (rows, gmeans) = experiments::figure5(&ctx).expect("figure 5 failed");
    println!("{}", experiments::figure5_table(&rows, &gmeans));
}
