//! Runs every experiment in the paper's evaluation section in one go, prints
//! all tables and figures, and writes the machine-readable `BENCH_sweep.json`
//! performance record of the sweep engine itself.
//!
//! Usage: `cargo run -p gnnerator-bench --release --bin all_experiments [-- --scale 0.25]`

use gnnerator::BackendKind;
use gnnerator_bench::experiments::{self, FIGURE4_BLOCK_SIZES};
use gnnerator_bench::rows::format_ms;
use gnnerator_bench::suite::{scale_from_args, SuiteContext, SuiteOptions};
use gnnerator_bench::sweep_report;
use gnnerator_graph::ArtifactCache;
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(std::env::args());
    let options = SuiteOptions::paper().with_scale(scale);
    println!("GNNerator reproduction — full experiment sweep (dataset scale {scale})");
    println!();

    // Static configuration tables.
    println!("{}", experiments::table1_table());
    println!("{}", experiments::table2_table());
    println!("{}", experiments::table4_table());

    // Persistent graph-artifact cache (GNNERATOR_CACHE=off disables; any
    // other value overrides the target/gnnerator-cache default directory).
    let cache = Arc::new(ArtifactCache::from_env());
    match cache.root() {
        Some(root) => println!("Artifact cache: {}", root.display()),
        None => println!("Artifact cache: disabled (GNNERATOR_CACHE=off)"),
    }

    println!("Materialising datasets (cache first, synthesis on miss)...");
    let ctx = SuiteContext::materialize_with_cache(&options, cache)
        .expect("dataset materialisation failed");

    // Raw per-workload runtimes, for reference — one parallel sweep over the
    // whole suite, accelerator and baseline backends alike.
    println!();
    println!("Per-workload runtimes (all backends from one sweep):");
    for result in experiments::run_full_suite(&ctx).expect("simulation failed") {
        println!(
            "  {:<18} {} {:>12}  w/o blocking {:>12}  {} {:>12}  {} {:>12}",
            result.workload.label(),
            BackendKind::Gnnerator,
            format_ms(result.gnnerator_blocked.seconds()),
            format_ms(result.gnnerator_unblocked.seconds()),
            BackendKind::GpuRoofline,
            format_ms(result.gpu.seconds),
            BackendKind::Hygcn,
            format_ms(result.hygcn.seconds),
        );
    }

    // Figure 3.
    let (rows, gm_blocked, gm_unblocked) = experiments::figure3(&ctx).expect("figure 3 failed");
    println!();
    println!(
        "{}",
        experiments::figure3_table(&rows, gm_blocked, gm_unblocked)
    );

    // Table V.
    let rows = experiments::table5(&ctx).expect("table 5 failed");
    println!("{}", experiments::table5_table(&rows));

    // Figure 4.
    let rows = experiments::figure4(&ctx, &FIGURE4_BLOCK_SIZES).expect("figure 4 failed");
    println!("{}", experiments::figure4_table(&rows));

    // Figure 5.
    let (rows, gmeans) = experiments::figure5(&ctx).expect("figure 5 failed");
    println!("{}", experiments::figure5_table(&rows, &gmeans));

    // Sweep-engine benchmark: the 60-point mixed-backend grid (nine paper
    // workloads plus the ogbn-arxiv-scale extension) through the parallel
    // compile-once path versus the serial per-run path, checked bit for bit.
    println!("Benchmarking the sweep engine (60 scenario points across all backends)...");
    let bench = sweep_report::bench_sweep(&ctx).expect("sweep benchmark failed");
    println!(
        "  parallel sweep: {:.3} s   serial per-run: {:.3} s   speedup {:.2}x on {} threads   bit-identical: {}",
        bench.parallel_seconds,
        bench.serial_seconds,
        bench.speedup(),
        bench.threads,
        bench.bit_identical,
    );
    println!(
        "  points per backend: {}",
        BackendKind::ALL
            .into_iter()
            .map(|b| format!("{b} {}", bench.points_for(b)))
            .collect::<Vec<_>>()
            .join(", "),
    );
    println!(
        "  runner caches: {} datasets, {} compiled sessions",
        ctx.runner().cached_datasets(),
        ctx.runner().cached_sessions(),
    );
    println!(
        "  graph builds: {} datasets synthesized, {} loaded from cache ({:.3} s); \
         shard grids: {} built, {} loaded from cache",
        bench.datasets_synthesized,
        bench.datasets_loaded,
        bench.graph_build_seconds,
        bench.shard_grids_built,
        bench.shard_grids_loaded,
    );
    let path = "BENCH_sweep.json";
    std::fs::write(path, bench.to_json()).expect("failed to write BENCH_sweep.json");
    println!("  wrote {path}");
}
