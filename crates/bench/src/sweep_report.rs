//! The `BENCH_sweep` benchmark: parallel sweep-engine throughput versus the
//! serial per-run path, with a bit-identity check across every backend,
//! emitted as machine-readable JSON so future changes can track the
//! performance trajectory.
//!
//! The grid mixes platforms: every workload runs under four accelerator
//! dataflows *and* on the GPU-roofline and HyGCN backends, all through one
//! [`SweepRunner`] invocation, plus an ogbn-arxiv-scale extension point
//! (≥1M edges at full scale) that the streaming graph-build pipeline opened
//! to the same path. Accelerator rows carry `speedup_vs_gpu` /
//! `speedup_vs_hygcn` columns derived from the baseline seconds attached by
//! the sweep engine itself; the document's top level records the
//! graph-build telemetry (`graph_build_seconds`, synthesis/load and shard
//! build/load counters) that the warm-cache CI assertions check.

use crate::suite::{full_suite, SuiteContext, Workload};
use gnnerator::{
    Backend, BackendKind, DataflowConfig, GnneratorError, GpuRooflineBackend, HygcnBackend, Report,
    ScenarioResult, ScenarioSpec, Simulator, SweepRunner,
};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;
// One escaping policy for every JSON artifact: the serving layer's writer
// is the shared implementation.
use gnnerator_serve::json::json_string;
use std::sync::Arc;
use std::time::Instant;

/// The dataflows every workload is swept across on the accelerator.
pub const SWEEP_DATAFLOWS: [DataflowConfig; 4] = [
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::FeatureBlocked { block_size: 64 },
        traversal: None,
    },
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::FeatureBlocked { block_size: 32 },
        traversal: None,
    },
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::FeatureBlocked { block_size: 128 },
        traversal: None,
    },
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::Conventional,
        traversal: None,
    },
];

/// The baseline platforms every workload is additionally evaluated on.
pub const SWEEP_BASELINES: [BackendKind; 2] = [BackendKind::GpuRoofline, BackendKind::Hygcn];

/// Enumerates the benchmark's scenario grid: the nine paper workloads under
/// each of [`SWEEP_DATAFLOWS`], plus one point per baseline backend in
/// [`SWEEP_BASELINES`] (9 × (4 + 2) = 54 points), plus the ogbn-scale
/// extension points from [`ogbn_scenarios`] (6 more: 60 total).
pub fn sweep_scenarios(ctx: &SuiteContext) -> Vec<ScenarioSpec> {
    let config = ctx.options().config.clone();
    let mut scenarios: Vec<ScenarioSpec> = full_suite()
        .iter()
        .flat_map(|workload| {
            let mut points: Vec<ScenarioSpec> = SWEEP_DATAFLOWS
                .iter()
                .map(|dataflow| ctx.scenario(workload, config.clone(), *dataflow))
                .collect();
            points.extend(
                SWEEP_BASELINES
                    .iter()
                    .map(|&backend| ctx.baseline_scenario(workload, backend)),
            );
            points
        })
        .collect();
    scenarios.extend(ogbn_scenarios(ctx));
    scenarios
}

/// Extra scale applied to the ogbn-products point on top of the grid scale.
///
/// The full [`DatasetKind::OgbnProductsScale`] spec is a ~60M-edge
/// out-of-core stressor. Earlier harness versions carried it at 1/25 scale;
/// bounded shard-window residency lets the sweep take it at full spec — at
/// grid scale 1.0 that is ~2.4M vertices / ~60M edges, a ~480MB edge arena
/// that no longer needs to fit in memory: under a bounded budget the grid is
/// simulated straight from the artifact cache through the shard window.
pub const PRODUCTS_SWEEP_SCALE: f64 = 1.0;

/// The ogbn-scale extension of the sweep: the ≥1M-edge ogbn-arxiv GCN
/// workload (at full scale) that the streaming graph-build pipeline opened
/// to this path, plus the ogbn-products point (down-scaled by
/// [`PRODUCTS_SWEEP_SCALE`]) that the out-of-core pipeline added on top —
/// each as one accelerator point (which carries both baseline speedup
/// columns) plus both baseline backends.
pub fn ogbn_scenarios(ctx: &SuiteContext) -> Vec<ScenarioSpec> {
    let workload = Workload::new(DatasetKind::OgbnArxiv, NetworkKind::Gcn);
    let products = products_scenario(ctx);
    vec![
        ctx.scenario(
            &workload,
            ctx.options().config.clone(),
            ctx.blocked_dataflow(),
        ),
        ctx.baseline_scenario(&workload, BackendKind::GpuRoofline),
        ctx.baseline_scenario(&workload, BackendKind::Hygcn),
        products.clone(),
        products.clone().with_backend(BackendKind::GpuRoofline),
        products.with_backend(BackendKind::Hygcn),
    ]
}

/// The ogbn-products accelerator point: the grid scale times
/// [`PRODUCTS_SWEEP_SCALE`], with the context's seed sequence, hidden
/// dimension and blocked dataflow (mirroring [`SuiteContext::scenario`],
/// which cannot express a per-workload scale).
fn products_scenario(ctx: &SuiteContext) -> ScenarioSpec {
    let kind = DatasetKind::OgbnProductsScale;
    let options = ctx.options();
    let mut scenario = ScenarioSpec::new(
        NetworkKind::Gcn,
        kind.spec().scaled(options.scale * PRODUCTS_SWEEP_SCALE),
        options.seed + kind.seed_offset(),
        options.hidden_dim,
        kind.num_classes(),
        options.config.clone(),
        ctx.blocked_dataflow(),
    );
    scenario.hidden_layers = 1;
    scenario
}

/// One machine-readable row of `BENCH_sweep.json`'s `points` array.
///
/// The struct is its own serializer/deserializer (the workspace's serde is a
/// hermetic no-op shim): [`SweepPoint::to_json`] and [`SweepPoint::from_json`]
/// round-trip every field exactly, which the tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable point label.
    pub label: String,
    /// Backend label ([`BackendKind`]'s `Display`).
    pub backend: String,
    /// Network short name.
    pub network: String,
    /// Dataset name.
    pub dataset: String,
    /// Dataflow description (accelerator configuration; baselines ignore it).
    pub dataflow: String,
    /// Platform-configuration name.
    pub config: String,
    /// End-to-end seconds on the point's platform.
    pub seconds: f64,
    /// Wall-clock seconds spent evaluating the point.
    pub simulate_seconds: f64,
    /// Total cycles (accelerator points only).
    pub total_cycles: Option<u64>,
    /// DRAM traffic in bytes (accelerator points only).
    pub dram_bytes: Option<u64>,
    /// Shard-grid occupancy (accelerator points only).
    pub occupancy: Option<f64>,
    /// Occupied shards walked (accelerator points only).
    pub occupied_shards: Option<u64>,
    /// GPU-roofline baseline seconds (accelerator points only).
    pub baseline_gpu_seconds: Option<f64>,
    /// HyGCN baseline seconds (accelerator points only).
    pub baseline_hygcn_seconds: Option<f64>,
    /// Speedup over the GPU roofline (accelerator points only).
    pub speedup_vs_gpu: Option<f64>,
    /// Speedup over HyGCN (accelerator points only).
    pub speedup_vs_hygcn: Option<f64>,
    /// Process-wide peak transient graph-build memory (bytes) observed by
    /// the time this point was evaluated. Absent in rows written before the
    /// out-of-core pipeline.
    pub peak_resident_bytes: Option<u64>,
    /// Process-wide count of sorted edge chunks spilled to disk by the time
    /// this point was evaluated. Absent in pre-out-of-core rows.
    pub spilled_chunks: Option<u64>,
    /// Process-wide shard-window hits by the time this point was evaluated.
    /// Absent in rows written before windowed residency.
    pub window_hits: Option<u64>,
    /// Process-wide shard-window misses (extents faulted from disk) by the
    /// time this point was evaluated. Absent in pre-window rows.
    pub window_misses: Option<u64>,
    /// Process-wide shard-window evictions by the time this point was
    /// evaluated. Absent in pre-window rows.
    pub window_evictions: Option<u64>,
    /// Process-wide bytes faulted into shard windows by the time this point
    /// was evaluated. Absent in pre-window rows.
    pub window_faulted_bytes: Option<u64>,
}

impl SweepPoint {
    /// Builds the row for one scenario result.
    pub fn from_result(result: &ScenarioResult) -> Self {
        let report = result.report.as_ref();
        Self {
            label: result.scenario.label(),
            backend: result.backend().to_string(),
            network: result.scenario.network.short_name().to_string(),
            dataset: result.scenario.dataset.name.to_string(),
            dataflow: result.scenario.dataflow.to_string(),
            config: result.scenario.config.name.clone(),
            seconds: result.seconds(),
            simulate_seconds: result.simulate_seconds,
            total_cycles: result.evaluation.total_cycles,
            dram_bytes: result.evaluation.dram_bytes,
            occupancy: report.map(Report::shard_occupancy),
            occupied_shards: report.map(|r| r.occupied_shards() as u64),
            baseline_gpu_seconds: result.baseline_seconds.map(|b| b.gpu),
            baseline_hygcn_seconds: result.baseline_seconds.map(|b| b.hygcn),
            speedup_vs_gpu: result.speedup_vs_gpu(),
            speedup_vs_hygcn: result.speedup_vs_hygcn(),
            peak_resident_bytes: Some(result.peak_resident_bytes),
            spilled_chunks: Some(result.spilled_chunks),
            window_hits: Some(result.window_hits),
            window_misses: Some(result.window_misses),
            window_evictions: Some(result.window_evictions),
            window_faulted_bytes: Some(result.window_faulted_bytes),
        }
    }

    /// Renders the row as a single-line JSON object.
    ///
    /// JSON has no representation for non-finite numbers, so an infinite or
    /// NaN column (e.g. the `f64::INFINITY` sentinel `guarded_speedup`
    /// returns for a degenerate zero-second run) serialises as `null` rather
    /// than producing an unparseable document.
    pub fn to_json(&self) -> String {
        fn opt_f64(value: Option<f64>) -> String {
            value
                .filter(|v| v.is_finite())
                .map_or_else(|| "null".to_string(), |v| format!("{v}"))
        }
        fn opt_u64(value: Option<u64>) -> String {
            value.map_or_else(|| "null".to_string(), |v| v.to_string())
        }
        format!(
            "{{\"label\": {}, \"backend\": {}, \"network\": {}, \"dataset\": {}, \"dataflow\": {}, \"config\": {}, \"seconds\": {}, \"simulate_seconds\": {}, \"total_cycles\": {}, \"dram_bytes\": {}, \"occupancy\": {}, \"occupied_shards\": {}, \"baseline_gpu_seconds\": {}, \"baseline_hygcn_seconds\": {}, \"speedup_vs_gpu\": {}, \"speedup_vs_hygcn\": {}, \"peak_resident_bytes\": {}, \"spilled_chunks\": {}, \"window_hits\": {}, \"window_misses\": {}, \"window_evictions\": {}, \"window_faulted_bytes\": {}}}",
            json_string(&self.label),
            json_string(&self.backend),
            json_string(&self.network),
            json_string(&self.dataset),
            json_string(&self.dataflow),
            json_string(&self.config),
            self.seconds,
            self.simulate_seconds,
            opt_u64(self.total_cycles),
            opt_u64(self.dram_bytes),
            opt_f64(self.occupancy),
            opt_u64(self.occupied_shards),
            opt_f64(self.baseline_gpu_seconds),
            opt_f64(self.baseline_hygcn_seconds),
            opt_f64(self.speedup_vs_gpu),
            opt_f64(self.speedup_vs_hygcn),
            opt_u64(self.peak_resident_bytes),
            opt_u64(self.spilled_chunks),
            opt_u64(self.window_hits),
            opt_u64(self.window_misses),
            opt_u64(self.window_evictions),
            opt_u64(self.window_faulted_bytes),
        )
    }

    /// Parses a row previously rendered by [`SweepPoint::to_json`].
    ///
    /// Fields may appear in any order; unknown fields are ignored. Returns
    /// `None` on malformed input or missing required fields.
    pub fn from_json(text: &str) -> Option<Self> {
        let fields = parse_flat_object(text)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        };
        let string = |key: &str| match get(key)? {
            JsonValue::String(s) => Some(s),
            _ => None,
        };
        let f64_field = |key: &str| match get(key)? {
            JsonValue::Number(n) => Some(n),
            _ => None,
        };
        let opt_f64 = |key: &str| match get(key)? {
            JsonValue::Number(n) => Some(Some(n)),
            JsonValue::Null => Some(None),
            _ => None,
        };
        let opt_u64 = |key: &str| match get(key)? {
            JsonValue::Number(n) if n >= 0.0 && n.fract() == 0.0 => Some(Some(n as u64)),
            JsonValue::Null => Some(None),
            _ => None,
        };
        // Telemetry columns added by the out-of-core pipeline: rows written
        // by earlier harness versions simply lack them, so a missing key is
        // `None`, not a parse failure.
        let lenient_u64 = |key: &str| match get(key) {
            Some(JsonValue::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        };
        Some(Self {
            label: string("label")?,
            backend: string("backend")?,
            network: string("network")?,
            dataset: string("dataset")?,
            dataflow: string("dataflow")?,
            config: string("config")?,
            seconds: f64_field("seconds")?,
            simulate_seconds: f64_field("simulate_seconds")?,
            total_cycles: opt_u64("total_cycles")?,
            dram_bytes: opt_u64("dram_bytes")?,
            occupancy: opt_f64("occupancy")?,
            occupied_shards: opt_u64("occupied_shards")?,
            baseline_gpu_seconds: opt_f64("baseline_gpu_seconds")?,
            baseline_hygcn_seconds: opt_f64("baseline_hygcn_seconds")?,
            speedup_vs_gpu: opt_f64("speedup_vs_gpu")?,
            speedup_vs_hygcn: opt_f64("speedup_vs_hygcn")?,
            peak_resident_bytes: lenient_u64("peak_resident_bytes"),
            spilled_chunks: lenient_u64("spilled_chunks"),
            window_hits: lenient_u64("window_hits"),
            window_misses: lenient_u64("window_misses"),
            window_evictions: lenient_u64("window_evictions"),
            window_faulted_bytes: lenient_u64("window_faulted_bytes"),
        })
    }
}

/// A scalar value inside a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    String(String),
    Number(f64),
    Null,
}

/// Parses a flat (non-nested) JSON object of string/number/null values into
/// `(key, value)` pairs, preserving order.
fn parse_flat_object(text: &str) -> Option<Vec<(String, JsonValue)>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?.trim();
    let mut fields = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest.trim_start())?;
        let after_colon = after_key.trim_start().strip_prefix(':')?;
        let (value, after_value) = parse_value(after_colon.trim_start())?;
        fields.push((key, value));
        rest = after_value.trim_start();
        if let Some(next) = rest.strip_prefix(',') {
            rest = next;
        } else {
            break;
        }
    }
    rest.is_empty().then_some(fields)
}

/// Parses one JSON string literal, returning it and the remaining input.
fn parse_string(text: &str) -> Option<(String, &str)> {
    let mut chars = text.strip_prefix('"')?.char_indices();
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &text[i + 2..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Parses one scalar JSON value, returning it and the remaining input.
fn parse_value(text: &str) -> Option<(JsonValue, &str)> {
    if text.starts_with('"') {
        let (s, rest) = parse_string(text)?;
        return Some((JsonValue::String(s), rest));
    }
    if let Some(rest) = text.strip_prefix("null") {
        return Some((JsonValue::Null, rest));
    }
    let end = text
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(text.len());
    let number = text[..end].parse::<f64>().ok()?;
    Some((JsonValue::Number(number), &text[end..]))
}

/// Results of one sweep benchmark run.
#[derive(Debug, Clone)]
pub struct SweepBenchmark {
    /// The per-scenario results from the parallel sweep engine.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock seconds of the parallel, compile-once sweep.
    pub parallel_seconds: f64,
    /// Wall-clock seconds of the serial path (a fresh `Simulator` compiling
    /// from scratch per accelerator scenario, and direct backend evaluations
    /// for the baselines — the way the harness worked before the session and
    /// backend refactors).
    pub serial_seconds: f64,
    /// Whether every parallel result was bit-identical to its serial twin
    /// (evaluations for all backends, full reports for accelerator points).
    pub bit_identical: bool,
    /// Worker threads available to the sweep engine.
    pub threads: usize,
    /// Dataset scale the sweep ran at.
    pub scale: f64,
    /// Seconds the sweep's sessions spent building shard grids, summed
    /// across worker threads (CPU time, so it can exceed the wall-clock
    /// `parallel_seconds` on multi-core runners; cache hits are free).
    pub shard_build_seconds: f64,
    /// Seconds spent materialising graphs (dataset synthesis, or the
    /// artifact-cache loads that replaced it), summed across worker threads.
    pub graph_build_seconds: f64,
    /// Datasets synthesised from scratch this run (0 on a warm-cache run).
    pub datasets_synthesized: usize,
    /// Datasets loaded from the persistent artifact cache.
    pub datasets_loaded: usize,
    /// Shard grids built from scratch this run (0 on a warm-cache run).
    pub shard_grids_built: usize,
    /// Shard grids loaded from the persistent artifact cache.
    pub shard_grids_loaded: usize,
    /// The graph memory budget in effect (`GNNERATOR_MEM_BUDGET`), rendered
    /// as the budget's `Display` string (`"unbounded"` when unset).
    pub memory_budget: String,
    /// Peak transient graph-build memory (bytes) observed process-wide.
    pub peak_resident_bytes: u64,
    /// Sorted edge chunks spilled to disk across every graph build.
    pub spilled_chunks: u64,
    /// Shard-grid artifacts loaded through the chunked (budgeted) reader.
    pub grid_segment_loads: u64,
    /// Shard-grid artifacts deserialised wholesale (unbudgeted reader).
    pub grid_full_loads: u64,
    /// Shard-window hits across every windowed grid walk.
    pub window_hits: u64,
    /// Shard-window misses (extents faulted in from disk).
    pub window_misses: u64,
    /// Shard-window evictions (cold rows dropped as the walk moved on).
    pub window_evictions: u64,
    /// Bytes faulted into shard windows from disk.
    pub window_faulted_bytes: u64,
}

impl SweepBenchmark {
    /// Wall-clock speedup of the sweep engine over the serial path.
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.parallel_seconds.max(1e-12)
    }

    /// Number of points evaluated on `backend`.
    pub fn points_for(&self, backend: BackendKind) -> usize {
        self.results
            .iter()
            .filter(|r| r.backend() == backend)
            .count()
    }

    /// Renders the benchmark as a JSON document (`BENCH_sweep.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"name\": \"BENCH_sweep\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"num_points\": {},\n", self.results.len()));
        out.push_str("  \"points_per_backend\": {");
        for (i, backend) in BackendKind::ALL.into_iter().enumerate() {
            let comma = if i + 1 == BackendKind::ALL.len() {
                ""
            } else {
                ", "
            };
            out.push_str(&format!(
                "{}: {}{}",
                json_string(backend.as_str()),
                self.points_for(backend),
                comma
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"parallel_seconds\": {:.6},\n",
            self.parallel_seconds
        ));
        out.push_str(&format!(
            "  \"serial_seconds\": {:.6},\n",
            self.serial_seconds
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!("  \"bit_identical\": {},\n", self.bit_identical));
        out.push_str(&format!(
            "  \"shard_build_seconds\": {:.6},\n",
            self.shard_build_seconds
        ));
        out.push_str(&format!(
            "  \"graph_build_seconds\": {:.6},\n",
            self.graph_build_seconds
        ));
        out.push_str(&format!(
            "  \"datasets_synthesized\": {},\n",
            self.datasets_synthesized
        ));
        out.push_str(&format!(
            "  \"datasets_loaded\": {},\n",
            self.datasets_loaded
        ));
        out.push_str(&format!(
            "  \"shard_grids_built\": {},\n",
            self.shard_grids_built
        ));
        out.push_str(&format!(
            "  \"shard_grids_loaded\": {},\n",
            self.shard_grids_loaded
        ));
        out.push_str(&format!(
            "  \"memory_budget\": {},\n",
            json_string(&self.memory_budget)
        ));
        out.push_str(&format!(
            "  \"peak_resident_bytes\": {},\n",
            self.peak_resident_bytes
        ));
        out.push_str(&format!("  \"spilled_chunks\": {},\n", self.spilled_chunks));
        out.push_str(&format!(
            "  \"grid_segment_loads\": {},\n",
            self.grid_segment_loads
        ));
        out.push_str(&format!(
            "  \"grid_full_loads\": {},\n",
            self.grid_full_loads
        ));
        out.push_str(&format!("  \"window_hits\": {},\n", self.window_hits));
        out.push_str(&format!("  \"window_misses\": {},\n", self.window_misses));
        out.push_str(&format!(
            "  \"window_evictions\": {},\n",
            self.window_evictions
        ));
        out.push_str(&format!(
            "  \"window_faulted_bytes\": {},\n",
            self.window_faulted_bytes
        ));
        out.push_str("  \"points\": [\n");
        for (i, result) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {}{}\n",
                SweepPoint::from_result(result).to_json(),
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Evaluates one scenario the pre-sweep way: a fresh `Simulator` compiled
/// from scratch for accelerator points, a direct backend evaluation for
/// baselines.
fn serial_reference(
    ctx: &SuiteContext,
    scenario: &ScenarioSpec,
) -> Result<(gnnerator::BackendEvaluation, Option<Report>), GnneratorError> {
    let dataset = ctx.runner().dataset(scenario)?;
    let model = scenario
        .network
        .build(
            dataset.features.dim(),
            scenario.hidden_dim,
            scenario.out_dim,
            scenario.hidden_layers,
        )
        .map_err(GnneratorError::from)?;
    match scenario.backend {
        BackendKind::Gnnerator => {
            let report = Simulator::with_dataflow(scenario.config.clone(), scenario.dataflow)?
                .simulate(&model, &dataset)?;
            Ok((report.to_evaluation(), Some(report)))
        }
        BackendKind::GpuRoofline => GpuRooflineBackend::rtx_2080_ti()
            .evaluate(&model, dataset.num_nodes(), dataset.num_edges())
            .map(|eval| (eval, None))
            .map_err(|e| GnneratorError::backend(e.to_string())),
        BackendKind::Hygcn => HygcnBackend::for_dataset(scenario.dataset.name)
            .evaluate(&model, dataset.num_nodes(), dataset.num_edges())
            .map(|eval| (eval, None))
            .map_err(|e| GnneratorError::backend(e.to_string())),
    }
}

/// Runs the sweep benchmark on `ctx`: the 60-point mixed-backend grid
/// (the nine paper workloads plus the ogbn extension) through the
/// parallel sweep engine, then the same grid through the serial per-run
/// path, comparing results bit for bit.
///
/// Both paths share pre-materialised datasets (materialisation is identical
/// work either way and is excluded from the timings). The sweep path runs on
/// a **cold** runner, so its time includes the one-time compilation of each
/// distinct (dataset, model) session — the honest cost of the compile-once
/// architecture — while the serial path re-compiles per scenario the way the
/// harness did before the session refactor. When `ctx`'s runner has a
/// persistent artifact cache the cold runner shares it, so the serial path
/// (which always shards from scratch) doubles as a correctness check of the
/// cached artifacts on every run.
///
/// # Errors
///
/// Propagates simulation and backend-evaluation errors from either path.
pub fn bench_sweep(ctx: &SuiteContext) -> Result<SweepBenchmark, GnneratorError> {
    let scenarios = sweep_scenarios(ctx);
    let cold_runner = match ctx.runner().artifact_cache() {
        Some(cache) => SweepRunner::new().with_artifact_cache(Arc::clone(cache)),
        None => SweepRunner::new(),
    };
    for scenario in &scenarios {
        let dataset = ctx.runner().dataset(scenario)?;
        cold_runner.insert_dataset(scenario.dataset, scenario.seed, dataset);
    }

    let start = Instant::now();
    let results = cold_runner.run(&scenarios)?;
    let parallel_seconds = start.elapsed().as_secs_f64();
    let shard_build_seconds = cold_runner.total_shard_build_seconds();

    let start = Instant::now();
    let mut serial = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        serial.push(serial_reference(ctx, scenario)?);
    }
    let serial_seconds = start.elapsed().as_secs_f64();
    let memory = gnnerator_graph::memory::memory_telemetry();

    let bit_identical = results
        .iter()
        .zip(&serial)
        .all(|(parallel, (evaluation, report))| {
            &parallel.evaluation == evaluation && &parallel.report == report
        });

    Ok(SweepBenchmark {
        results,
        parallel_seconds,
        serial_seconds,
        bit_identical,
        threads: rayon::current_num_threads(),
        scale: ctx.options().scale,
        shard_build_seconds,
        graph_build_seconds: ctx.runner().graph_build_seconds(),
        datasets_synthesized: ctx.runner().datasets_synthesized()
            + cold_runner.datasets_synthesized(),
        datasets_loaded: ctx.runner().datasets_loaded() + cold_runner.datasets_loaded(),
        shard_grids_built: ctx.runner().total_shard_grids_built()
            + cold_runner.total_shard_grids_built(),
        shard_grids_loaded: ctx.runner().total_shard_grids_loaded()
            + cold_runner.total_shard_grids_loaded(),
        memory_budget: gnnerator_graph::MemoryBudget::from_env().to_string(),
        peak_resident_bytes: memory.peak_resident_bytes,
        spilled_chunks: memory.spilled_chunk_count,
        grid_segment_loads: memory.grid_segment_loads,
        grid_full_loads: memory.grid_full_loads,
        window_hits: memory.window_hits,
        window_misses: memory.window_misses,
        window_evictions: memory.window_evictions,
        window_faulted_bytes: memory.window_faulted_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteOptions;

    #[test]
    fn sweep_grid_covers_every_backend() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let scenarios = sweep_scenarios(&ctx);
        // 9 workloads x (4 accelerator dataflows + 2 baselines) + 6
        // ogbn extension points (arxiv and products trios), all distinct.
        assert_eq!(scenarios.len(), 60);
        for pair in scenarios.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
        for backend in BackendKind::ALL {
            let count = scenarios.iter().filter(|s| s.backend == backend).count();
            let expected = if backend.is_accelerator() { 38 } else { 11 };
            assert_eq!(count, expected, "{backend}");
        }
        // Each ogbn extension rides along with an accelerator point (so the
        // speedup columns exist) and both baselines.
        for dataset in ["ogbn-arxiv", "ogbn-products"] {
            let points: Vec<_> = scenarios
                .iter()
                .filter(|s| s.dataset.name == dataset)
                .collect();
            assert_eq!(points.len(), 3, "{dataset}");
            assert!(points.iter().any(|s| s.backend.is_accelerator()));
        }
        // At full scale the arxiv extension point is a >= 1M-edge graph, and
        // the down-scaled products point is bigger still — the largest graph
        // in the grid, sized to overflow the CI smoke's memory budget.
        assert!(DatasetKind::OgbnArxiv.spec().edges >= 1_000_000);
        let products_edges =
            (DatasetKind::OgbnProductsScale.spec().edges as f64 * PRODUCTS_SWEEP_SCALE) as usize;
        assert!(products_edges > DatasetKind::OgbnArxiv.spec().edges);
    }

    #[test]
    fn bench_sweep_is_bit_identical_to_the_serial_path() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let bench = bench_sweep(&ctx).unwrap();
        assert!(bench.bit_identical);
        assert_eq!(bench.results.len(), 60);
        assert_eq!(bench.points_for(BackendKind::Gnnerator), 38);
        assert_eq!(bench.points_for(BackendKind::GpuRoofline), 11);
        assert_eq!(bench.points_for(BackendKind::Hygcn), 11);
        assert!(bench.parallel_seconds > 0.0);
        assert!(bench.serial_seconds > 0.0);
        // No artifact cache attached: everything was synthesised and built.
        assert!(bench.datasets_synthesized > 0);
        assert_eq!(bench.datasets_loaded, 0);
        assert!(bench.shard_grids_built > 0);
        assert_eq!(bench.shard_grids_loaded, 0);
        assert!(bench.graph_build_seconds > 0.0);
        // The ogbn accelerator point exists and carries finite speedups.
        for dataset in ["ogbn-arxiv", "ogbn-products"] {
            let ogbn = bench
                .results
                .iter()
                .find(|r| r.scenario.dataset.name == dataset && r.backend().is_accelerator())
                .expect("ogbn accelerator point");
            assert!(ogbn.speedup_vs_gpu().unwrap().is_finite());
            assert!(ogbn.speedup_vs_hygcn().unwrap().is_finite());
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let bench = bench_sweep(&ctx).unwrap();
        assert!(bench.shard_build_seconds > 0.0);
        let json = bench.to_json();
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"num_points\": 60"));
        assert!(json.contains("\"points_per_backend\""));
        assert!(json.contains("\"shard_build_seconds\""));
        assert!(json.contains("\"graph_build_seconds\""));
        assert!(json.contains("\"datasets_synthesized\""));
        assert!(json.contains("\"datasets_loaded\""));
        assert!(json.contains("\"shard_grids_built\""));
        assert!(json.contains("\"shard_grids_loaded\""));
        assert!(json.contains("\"dataset\": \"ogbn-arxiv\""));
        assert!(json.contains("\"dataset\": \"ogbn-products\""));
        assert!(json.contains("\"memory_budget\""));
        assert!(json.contains("\"peak_resident_bytes\""));
        assert!(json.contains("\"spilled_chunks\""));
        assert!(json.contains("\"grid_segment_loads\""));
        assert!(json.contains("\"grid_full_loads\""));
        assert!(json.contains("\"window_hits\""));
        assert!(json.contains("\"window_misses\""));
        assert!(json.contains("\"window_evictions\""));
        assert!(json.contains("\"window_faulted_bytes\""));
        assert!(json.contains("\"occupancy\""));
        assert!(json.contains("\"occupied_shards\""));
        assert!(json.contains("\"simulate_seconds\""));
        assert!(json.contains("\"backend\": \"gnnerator\""));
        assert!(json.contains("\"backend\": \"gpu-roofline\""));
        assert!(json.contains("\"backend\": \"hygcn\""));
        assert!(json.contains("\"speedup_vs_gpu\""));
        assert!(json.contains("\"speedup_vs_hygcn\""));
        assert!(json.contains("cora-gcn"));
        // Speedups must be finite: JSON has no inf/NaN representation.
        assert!(!json.contains("inf"));
        assert!(!json.contains("NaN"));
        // Balanced braces/brackets (no raw quotes inside our labels).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sweep_points_round_trip_through_json() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let scenarios = sweep_scenarios(&ctx);
        let results = ctx.run_scenarios(&scenarios).unwrap();
        for result in &results {
            let point = SweepPoint::from_result(result);
            let parsed = SweepPoint::from_json(&point.to_json())
                .unwrap_or_else(|| panic!("unparseable row: {}", point.to_json()));
            assert_eq!(parsed, point, "{}", result.scenario);
            // Accelerator rows carry the speedup columns, baselines don't.
            if result.backend().is_accelerator() {
                assert!(parsed.speedup_vs_gpu.unwrap().is_finite());
                assert!(parsed.speedup_vs_hygcn.unwrap().is_finite());
                assert!(parsed.baseline_gpu_seconds.unwrap() > 0.0);
                assert!(parsed.baseline_hygcn_seconds.unwrap() > 0.0);
                assert!(parsed.total_cycles.unwrap() > 0);
            } else {
                assert_eq!(parsed.speedup_vs_gpu, None);
                assert_eq!(parsed.speedup_vs_hygcn, None);
                assert_eq!(parsed.total_cycles, None);
                assert_eq!(parsed.occupancy, None);
            }
        }
    }

    #[test]
    fn sweep_point_parser_handles_escapes_order_and_junk() {
        let json = "{\"backend\": \"gnnerator\", \"label\": \"a\\\"b\\\\c\\nd\", \
                    \"network\": \"gcn\", \"dataset\": \"cora\", \"dataflow\": \"x\", \
                    \"config\": \"y\", \"unknown_field\": 3, \"seconds\": 1e-3, \
                    \"simulate_seconds\": 0.5, \"total_cycles\": null, \"dram_bytes\": null, \
                    \"occupancy\": null, \"occupied_shards\": null, \
                    \"baseline_gpu_seconds\": null, \"baseline_hygcn_seconds\": null, \
                    \"speedup_vs_gpu\": null, \"speedup_vs_hygcn\": null}";
        let point = SweepPoint::from_json(json).unwrap();
        assert_eq!(point.label, "a\"b\\c\nd");
        assert_eq!(point.seconds, 1e-3);
        assert_eq!(point.total_cycles, None);
        // Rows written before the out-of-core pipeline lack the telemetry
        // columns entirely; they parse as absent rather than failing.
        assert_eq!(point.peak_resident_bytes, None);
        assert_eq!(point.spilled_chunks, None);
        assert_eq!(point.window_hits, None);
        assert_eq!(point.window_faulted_bytes, None);
        // Round-trip of the escaped label.
        assert_eq!(SweepPoint::from_json(&point.to_json()), Some(point));
        // Malformed inputs are rejected, not panicked on.
        assert_eq!(SweepPoint::from_json("not json"), None);
        assert_eq!(SweepPoint::from_json("{\"label\": }"), None);
        assert_eq!(SweepPoint::from_json("{}"), None);
    }

    #[test]
    fn non_finite_columns_serialise_as_null_not_invalid_json() {
        let mut point = SweepPoint {
            label: "x".into(),
            backend: "gnnerator".into(),
            network: "gcn".into(),
            dataset: "cora".into(),
            dataflow: "d".into(),
            config: "c".into(),
            seconds: 1.0e-3,
            simulate_seconds: 1.0e-4,
            total_cycles: Some(1),
            dram_bytes: Some(2),
            occupancy: Some(f64::NAN),
            occupied_shards: Some(3),
            baseline_gpu_seconds: Some(1.0),
            baseline_hygcn_seconds: Some(1.0),
            speedup_vs_gpu: Some(f64::INFINITY),
            speedup_vs_hygcn: Some(f64::NEG_INFINITY),
            peak_resident_bytes: Some(4096),
            spilled_chunks: Some(2),
            window_hits: Some(7),
            window_misses: Some(5),
            window_evictions: Some(3),
            window_faulted_bytes: Some(40),
        };
        let json = point.to_json();
        assert!(!json.contains("inf"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        let parsed = SweepPoint::from_json(&json).unwrap();
        assert_eq!(parsed.speedup_vs_gpu, None);
        assert_eq!(parsed.speedup_vs_hygcn, None);
        assert_eq!(parsed.occupancy, None);
        // Finite columns still round-trip exactly.
        point.occupancy = Some(0.75);
        point.speedup_vs_gpu = Some(4.0);
        point.speedup_vs_hygcn = Some(2.0);
        assert_eq!(SweepPoint::from_json(&point.to_json()), Some(point));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
