//! The `BENCH_sweep` benchmark: parallel sweep-engine throughput versus the
//! serial per-run simulator path, with a bit-identity check, emitted as
//! machine-readable JSON so future changes can track the performance
//! trajectory.

use crate::suite::{full_suite, SuiteContext};
use gnnerator::{
    DataflowConfig, GnneratorError, ScenarioResult, ScenarioSpec, Simulator, SweepRunner,
};
use std::time::Instant;

/// The dataflows every workload is swept across (4 × 9 workloads = 36
/// scenario points).
pub const SWEEP_DATAFLOWS: [DataflowConfig; 4] = [
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::FeatureBlocked { block_size: 64 },
        traversal: None,
    },
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::FeatureBlocked { block_size: 32 },
        traversal: None,
    },
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::FeatureBlocked { block_size: 128 },
        traversal: None,
    },
    DataflowConfig {
        blocking: gnnerator::BlockingPolicy::Conventional,
        traversal: None,
    },
];

/// Enumerates the benchmark's scenario grid: the nine paper workloads under
/// each of [`SWEEP_DATAFLOWS`].
pub fn sweep_scenarios(ctx: &SuiteContext) -> Vec<ScenarioSpec> {
    let config = ctx.options().config.clone();
    full_suite()
        .iter()
        .flat_map(|workload| {
            SWEEP_DATAFLOWS
                .iter()
                .map(|dataflow| ctx.scenario(workload, config.clone(), *dataflow))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Results of one sweep benchmark run.
#[derive(Debug, Clone)]
pub struct SweepBenchmark {
    /// The per-scenario results from the parallel sweep engine.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock seconds of the parallel, compile-once sweep.
    pub parallel_seconds: f64,
    /// Wall-clock seconds of the serial path (a fresh `Simulator` compiling
    /// from scratch per scenario, the way the harness worked before the
    /// session refactor).
    pub serial_seconds: f64,
    /// Whether every parallel report was bit-identical to its serial twin.
    pub bit_identical: bool,
    /// Worker threads available to the sweep engine.
    pub threads: usize,
    /// Dataset scale the sweep ran at.
    pub scale: f64,
    /// Seconds the sweep's sessions spent building shard grids, summed
    /// across worker threads (CPU time, so it can exceed the wall-clock
    /// `parallel_seconds` on multi-core runners; cache hits are free).
    pub shard_build_seconds: f64,
}

impl SweepBenchmark {
    /// Wall-clock speedup of the sweep engine over the serial path.
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.parallel_seconds.max(1e-12)
    }

    /// Renders the benchmark as a JSON document (`BENCH_sweep.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"name\": \"BENCH_sweep\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"num_points\": {},\n", self.results.len()));
        out.push_str(&format!(
            "  \"parallel_seconds\": {:.6},\n",
            self.parallel_seconds
        ));
        out.push_str(&format!(
            "  \"serial_seconds\": {:.6},\n",
            self.serial_seconds
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!("  \"bit_identical\": {},\n", self.bit_identical));
        out.push_str(&format!(
            "  \"shard_build_seconds\": {:.6},\n",
            self.shard_build_seconds
        ));
        out.push_str("  \"points\": [\n");
        for (i, result) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": {}, \"network\": {}, \"dataset\": {}, \"dataflow\": {}, \"config\": {}, \"total_cycles\": {}, \"seconds\": {:e}, \"dram_bytes\": {}, \"occupancy\": {:.6}, \"occupied_shards\": {}, \"simulate_seconds\": {:e}}}{}\n",
                json_string(&result.scenario.label()),
                json_string(result.scenario.network.short_name()),
                json_string(result.scenario.dataset.name),
                json_string(&result.scenario.dataflow.to_string()),
                json_string(&result.scenario.config.name),
                result.report.total_cycles,
                result.report.seconds(),
                result.report.dram_bytes(),
                result.report.shard_occupancy(),
                result.report.occupied_shards(),
                result.simulate_seconds,
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the sweep benchmark on `ctx`: the 36-point grid through the parallel
/// sweep engine, then the same grid through the serial per-run simulator
/// path, comparing reports bit for bit.
///
/// Both paths share pre-synthesised datasets (synthesis is identical work
/// either way and is excluded from the timings). The sweep path runs on a
/// **cold** runner, so its time includes the one-time compilation of each
/// distinct (dataset, model) session — the honest cost of the compile-once
/// architecture — while the serial path re-compiles per scenario the way the
/// harness did before the session refactor.
///
/// # Errors
///
/// Propagates simulation errors from either path.
pub fn bench_sweep(ctx: &SuiteContext) -> Result<SweepBenchmark, GnneratorError> {
    let scenarios = sweep_scenarios(ctx);
    let cold_runner = SweepRunner::new();
    for scenario in &scenarios {
        let dataset = ctx.runner().dataset(scenario)?;
        cold_runner.insert_dataset(scenario.dataset, scenario.seed, dataset);
    }

    let start = Instant::now();
    let results = cold_runner.run(&scenarios)?;
    let parallel_seconds = start.elapsed().as_secs_f64();
    let shard_build_seconds = cold_runner.total_shard_build_seconds();

    let start = Instant::now();
    let mut serial = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let dataset = ctx.runner().dataset(scenario)?;
        let model = scenario
            .network
            .build(
                dataset.features.dim(),
                scenario.hidden_dim,
                scenario.out_dim,
                scenario.hidden_layers,
            )
            .map_err(GnneratorError::from)?;
        let report = Simulator::with_dataflow(scenario.config.clone(), scenario.dataflow)?
            .simulate(&model, &dataset)?;
        serial.push(report);
    }
    let serial_seconds = start.elapsed().as_secs_f64();

    let bit_identical = results
        .iter()
        .zip(&serial)
        .all(|(parallel, serial)| &parallel.report == serial);

    Ok(SweepBenchmark {
        results,
        parallel_seconds,
        serial_seconds,
        bit_identical,
        threads: rayon::current_num_threads(),
        scale: ctx.options().scale,
        shard_build_seconds,
    })
}

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteOptions;

    #[test]
    fn sweep_grid_has_at_least_32_points() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let scenarios = sweep_scenarios(&ctx);
        assert!(scenarios.len() >= 32, "{} points", scenarios.len());
        // 9 workloads x 4 dataflows, all distinct.
        assert_eq!(scenarios.len(), 36);
        for pair in scenarios.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn bench_sweep_is_bit_identical_to_the_serial_path() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let bench = bench_sweep(&ctx).unwrap();
        assert!(bench.bit_identical);
        assert_eq!(bench.results.len(), 36);
        assert!(bench.parallel_seconds > 0.0);
        assert!(bench.serial_seconds > 0.0);
    }

    #[test]
    fn json_report_is_well_formed() {
        let ctx = SuiteContext::materialize(&SuiteOptions::quick()).unwrap();
        let bench = bench_sweep(&ctx).unwrap();
        assert!(bench.shard_build_seconds > 0.0);
        let json = bench.to_json();
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"num_points\": 36"));
        assert!(json.contains("\"shard_build_seconds\""));
        assert!(json.contains("\"occupancy\""));
        assert!(json.contains("\"occupied_shards\""));
        assert!(json.contains("\"simulate_seconds\""));
        assert!(json.contains("cora-gcn"));
        // Balanced braces/brackets (no raw quotes inside our labels).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
