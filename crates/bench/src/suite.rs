//! The nine-benchmark suite (Tables II & III) and its sweep-backed runner.
//!
//! A [`SuiteContext`] wraps a shared [`SweepRunner`]: datasets are
//! synthesised once, models are compiled once per (dataset, network) pair
//! into [`SimSession`](gnnerator::SimSession)s, and every figure/table
//! enumerates [`ScenarioSpec`]s that execute in parallel through one code
//! path. Baseline platforms (GPU roofline, HyGCN) are scenario points of the
//! same sweep — [`SuiteContext::run_workload`] enumerates accelerator *and*
//! baseline [`BackendKind`]s in one batch instead of stitching estimates on
//! afterwards.

use gnnerator::{
    BackendEvaluation, BackendKind, DataflowConfig, GnneratorConfig, GnneratorError, Report,
    ScenarioResult, ScenarioSpec, SweepRunner,
};
use gnnerator_baselines::HygcnConfig;
use gnnerator_gnn::{GnnModel, NetworkKind};
use gnnerator_graph::datasets::{Dataset, DatasetKind, DatasetSpec};
use gnnerator_graph::ArtifactCache;
use std::fmt;
use std::sync::Arc;

/// One benchmark: a dataset paired with a network architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The input graph dataset.
    pub dataset: DatasetKind,
    /// The GNN architecture.
    pub network: NetworkKind,
}

impl Workload {
    /// Creates a workload.
    pub fn new(dataset: DatasetKind, network: NetworkKind) -> Self {
        Self { dataset, network }
    }

    /// The label used on the x-axis of Figure 3 (e.g. `cora-gcn`,
    /// `pub-gsage-max`).
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            self.dataset.short_name(),
            self.network.short_name()
        )
    }

    /// Number of output classes of the dataset (used as the model's output
    /// dimension, as DGL's node-classification setup does). Delegates to the
    /// shared per-dataset table the serving API defaults to as well.
    pub fn num_classes(&self) -> usize {
        self.dataset.num_classes()
    }

    /// HyGCN's window-shrinking sparsity-elimination speedup for this
    /// dataset, as quoted in the paper (≈1.1× for Cora/Pubmed, ≈3× for
    /// Citeseer). Delegates to the shared per-dataset table the HyGCN
    /// backend itself uses.
    pub fn hygcn_sparsity_speedup(&self) -> f64 {
        HygcnConfig::paper_sparsity_for(self.dataset.spec().name)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Parses an optional `--scale <factor>` argument from a binary's command
/// line, defaulting to 1.0 (the paper's full-size datasets).
///
/// Unrecognised arguments are ignored so the harness binaries stay
/// dependency-free.
///
/// # Examples
///
/// ```
/// use gnnerator_bench::suite::scale_from_args;
/// let args = ["fig3".to_string(), "--scale".to_string(), "0.25".to_string()];
/// assert!((scale_from_args(args.into_iter()) - 0.25).abs() < 1e-9);
/// assert_eq!(scale_from_args(["fig3".to_string()].into_iter()), 1.0);
/// ```
pub fn scale_from_args(args: impl Iterator<Item = String>) -> f64 {
    let args: Vec<String> = args.collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            if let Ok(scale) = window[1].parse::<f64>() {
                if scale > 0.0 && scale <= 1.0 {
                    return scale;
                }
            }
        }
    }
    1.0
}

/// The nine benchmarks of Figure 3, in the paper's order.
pub fn full_suite() -> Vec<Workload> {
    let mut suite = Vec::with_capacity(9);
    for dataset in DatasetKind::ALL {
        for network in NetworkKind::ALL {
            suite.push(Workload::new(dataset, network));
        }
    }
    suite
}

/// Options controlling how the suite is materialised and simulated.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteOptions {
    /// Scale factor applied to every dataset's vertex/edge counts (1.0 = the
    /// paper's full-size datasets; smaller values for fast smoke tests).
    pub scale: f64,
    /// Seed for dataset synthesis.
    pub seed: u64,
    /// Hidden dimension of the networks (16 in Table III).
    pub hidden_dim: usize,
    /// Accelerator configuration to simulate.
    pub config: GnneratorConfig,
    /// Feature-block size for the blocked dataflow (64 in the paper).
    pub block_size: usize,
}

impl SuiteOptions {
    /// The paper's configuration: full-size datasets, hidden dimension 16,
    /// block size 64.
    pub fn paper() -> Self {
        Self {
            scale: 1.0,
            seed: 42,
            hidden_dim: NetworkKind::PAPER_HIDDEN_DIM,
            config: GnneratorConfig::paper_default(),
            block_size: 64,
        }
    }

    /// A heavily scaled-down configuration for tests and doctests.
    pub fn quick() -> Self {
        Self {
            scale: 0.05,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different dataset scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Returns a copy with a different accelerator configuration.
    pub fn with_config(mut self, config: GnneratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns a copy with a different hidden dimension (Figure 5 sweeps 16,
    /// 128 and 1024).
    pub fn with_hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// Results of running one workload on every platform, folded from one
/// unified sweep (two accelerator dataflows plus both baseline backends).
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The workload that was run.
    pub workload: Workload,
    /// GNNerator with the feature-blocking dataflow.
    pub gnnerator_blocked: Report,
    /// GNNerator with the conventional dataflow ("w/o Feature Blocking").
    pub gnnerator_unblocked: Report,
    /// The GPU-roofline (RTX 2080 Ti) backend's evaluation.
    pub gpu: BackendEvaluation,
    /// The HyGCN backend's evaluation (with its dataset-specific sparsity
    /// elimination applied).
    pub hygcn: BackendEvaluation,
}

impl WorkloadResult {
    /// Speedup of blocked GNNerator over the GPU (a Figure 3 bar).
    pub fn speedup_blocked_vs_gpu(&self) -> f64 {
        self.gpu.seconds / self.gnnerator_blocked.seconds()
    }

    /// Speedup of unblocked GNNerator over the GPU (a Figure 3 bar).
    pub fn speedup_unblocked_vs_gpu(&self) -> f64 {
        self.gpu.seconds / self.gnnerator_unblocked.seconds()
    }

    /// Speedup of blocked GNNerator over HyGCN (a Table V entry).
    pub fn speedup_blocked_vs_hygcn(&self) -> f64 {
        self.hygcn.seconds / self.gnnerator_blocked.seconds()
    }

    /// Speedup of unblocked GNNerator over HyGCN (a Table V entry).
    pub fn speedup_unblocked_vs_hygcn(&self) -> f64 {
        self.hygcn.seconds / self.gnnerator_unblocked.seconds()
    }
}

/// A materialised benchmark suite: a shared sweep runner plus the options
/// scenarios are derived from.
///
/// Cloning is cheap and shares the runner's dataset/session caches — the
/// Figure 5 study clones the context per hidden dimension while reusing the
/// synthesised graphs.
#[derive(Debug, Clone)]
pub struct SuiteContext {
    options: SuiteOptions,
    runner: Arc<SweepRunner>,
}

impl SuiteContext {
    /// Synthesises every dataset in the suite according to `options`, with a
    /// purely in-memory runner.
    ///
    /// # Errors
    ///
    /// Propagates dataset-synthesis errors.
    pub fn materialize(options: &SuiteOptions) -> Result<Self, GnneratorError> {
        Self::build(options, SweepRunner::new())
    }

    /// Like [`SuiteContext::materialize`], but datasets and shard grids are
    /// additionally persisted in (and loaded from) `cache`, so repeated
    /// harness runs skip synthesis and re-sharding entirely.
    ///
    /// # Errors
    ///
    /// Propagates dataset-materialisation errors.
    pub fn materialize_with_cache(
        options: &SuiteOptions,
        cache: Arc<ArtifactCache>,
    ) -> Result<Self, GnneratorError> {
        Self::build(options, SweepRunner::new().with_artifact_cache(cache))
    }

    fn build(options: &SuiteOptions, runner: SweepRunner) -> Result<Self, GnneratorError> {
        let ctx = Self {
            options: options.clone(),
            runner: Arc::new(runner),
        };
        // Materialise eagerly so synthesis errors surface here and later
        // sweeps only pay simulation time.
        for kind in DatasetKind::ALL {
            ctx.dataset(kind)?;
        }
        Ok(ctx)
    }

    /// The options this context was materialised with.
    pub fn options(&self) -> &SuiteOptions {
        &self.options
    }

    /// The shared sweep runner (dataset + session caches).
    pub fn runner(&self) -> &SweepRunner {
        &self.runner
    }

    /// Returns a copy of this context with a different hidden dimension,
    /// sharing the already-synthesised datasets (the Figure 5 study sweeps
    /// hidden dimensions 16, 128 and 1024 over the same graphs).
    pub fn with_hidden_dim(&self, hidden_dim: usize) -> SuiteContext {
        let mut clone = self.clone();
        clone.options.hidden_dim = hidden_dim;
        clone
    }

    /// The (possibly scaled) dataset specification for `kind`.
    pub fn dataset_spec(&self, kind: DatasetKind) -> DatasetSpec {
        if (self.options.scale - 1.0).abs() < f64::EPSILON {
            kind.spec()
        } else {
            kind.spec().scaled(self.options.scale)
        }
    }

    /// The synthesis seed for `kind` (consecutive seeds in Table II order;
    /// the ogbn extension continues the sequence).
    pub fn dataset_seed(&self, kind: DatasetKind) -> u64 {
        self.options.seed + kind.seed_offset()
    }

    /// The blocked dataflow these options describe.
    pub fn blocked_dataflow(&self) -> DataflowConfig {
        DataflowConfig::blocked(self.options.block_size)
    }

    /// Builds the scenario point for a workload under this context's hidden
    /// dimension.
    pub fn scenario(
        &self,
        workload: &Workload,
        config: GnneratorConfig,
        dataflow: DataflowConfig,
    ) -> ScenarioSpec {
        let mut scenario = ScenarioSpec::new(
            workload.network,
            self.dataset_spec(workload.dataset),
            self.dataset_seed(workload.dataset),
            self.options.hidden_dim,
            workload.num_classes(),
            config,
            dataflow,
        );
        scenario.hidden_layers = 1;
        scenario
    }

    /// The synthesised dataset for `kind`.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors (cannot occur for the built-in specs).
    pub fn dataset(&self, kind: DatasetKind) -> Result<Arc<Dataset>, GnneratorError> {
        self.runner
            .dataset_for(self.dataset_spec(kind), self.dataset_seed(kind))
    }

    /// Builds the model for a workload at this context's hidden dimension.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn model_for(&self, workload: &Workload) -> Result<GnnModel, GnneratorError> {
        let dataset = self.dataset(workload.dataset)?;
        workload
            .network
            .build(
                dataset.features.dim(),
                self.options.hidden_dim,
                workload.num_classes(),
                1,
            )
            .map_err(GnneratorError::from)
    }

    /// Runs a batch of scenario points in parallel through the shared runner.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error in input order.
    pub fn run_scenarios(
        &self,
        scenarios: &[ScenarioSpec],
    ) -> Result<Vec<ScenarioResult>, GnneratorError> {
        self.runner.run(scenarios)
    }

    /// Simulates GNNerator (with the given dataflow) on a workload through
    /// the session cache.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn simulate_gnnerator(
        &self,
        workload: &Workload,
        dataflow: DataflowConfig,
    ) -> Result<Report, GnneratorError> {
        let scenario = self.scenario(workload, self.options.config.clone(), dataflow);
        Ok(self
            .runner
            .run_one(&scenario)?
            .report
            .expect("accelerator scenario carries a report"))
    }

    /// Simulates GNNerator with an explicit platform configuration (used by
    /// the Figure 5 scaling study).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn simulate_with_config(
        &self,
        workload: &Workload,
        config: GnneratorConfig,
        dataflow: DataflowConfig,
    ) -> Result<Report, GnneratorError> {
        let scenario = self.scenario(workload, config, dataflow);
        Ok(self
            .runner
            .run_one(&scenario)?
            .report
            .expect("accelerator scenario carries a report"))
    }

    /// Builds the scenario point that evaluates a workload on a baseline
    /// platform. Baseline backends ignore the accelerator configuration and
    /// dataflow, so the context defaults are stamped in for labelling only.
    pub fn baseline_scenario(&self, workload: &Workload, backend: BackendKind) -> ScenarioSpec {
        self.scenario(
            workload,
            self.options.config.clone(),
            self.blocked_dataflow(),
        )
        .with_backend(backend)
    }

    /// The four scenario points of one workload, in fold order: blocked and
    /// conventional GNNerator, then the GPU-roofline and HyGCN backends.
    fn workload_scenarios(&self, workload: &Workload) -> [ScenarioSpec; 4] {
        [
            self.scenario(
                workload,
                self.options.config.clone(),
                self.blocked_dataflow(),
            ),
            self.scenario(
                workload,
                self.options.config.clone(),
                DataflowConfig::conventional(),
            ),
            self.baseline_scenario(workload, BackendKind::GpuRoofline),
            self.baseline_scenario(workload, BackendKind::Hygcn),
        ]
    }

    fn fold_workload(workload: Workload, chunk: &[ScenarioResult]) -> WorkloadResult {
        WorkloadResult {
            workload,
            gnnerator_blocked: chunk[0]
                .report
                .clone()
                .expect("blocked point is an accelerator scenario"),
            gnnerator_unblocked: chunk[1]
                .report
                .clone()
                .expect("conventional point is an accelerator scenario"),
            gpu: chunk[2].evaluation.clone(),
            hygcn: chunk[3].evaluation.clone(),
        }
    }

    /// Runs one workload on all four platforms — both GNNerator dataflows
    /// plus the GPU-roofline and HyGCN backends — as one parallel sweep.
    ///
    /// # Errors
    ///
    /// Propagates simulation and backend-evaluation errors.
    pub fn run_workload(&self, workload: &Workload) -> Result<WorkloadResult, GnneratorError> {
        let results = self.runner.run(&self.workload_scenarios(workload))?;
        Ok(Self::fold_workload(*workload, &results))
    }

    /// Runs the whole nine-benchmark suite — accelerator and baseline
    /// platforms — as one parallel sweep of 36 scenario points.
    ///
    /// # Errors
    ///
    /// Propagates the first workload error encountered.
    pub fn run_suite(&self) -> Result<Vec<WorkloadResult>, GnneratorError> {
        let workloads = full_suite();
        let scenarios: Vec<ScenarioSpec> = workloads
            .iter()
            .flat_map(|w| self.workload_scenarios(w))
            .collect();
        let results = self.run_scenarios(&scenarios)?;
        Ok(workloads
            .iter()
            .zip(results.chunks_exact(4))
            .map(|(workload, chunk)| Self::fold_workload(*workload, chunk))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_context() -> SuiteContext {
        SuiteContext::materialize(&SuiteOptions::quick()).unwrap()
    }

    #[test]
    fn full_suite_has_nine_workloads_in_paper_order() {
        let suite = full_suite();
        assert_eq!(suite.len(), 9);
        assert_eq!(suite[0].label(), "cora-gcn");
        assert_eq!(suite[2].label(), "cora-gsage-max");
        assert_eq!(suite[8].label(), "pub-gsage-max");
    }

    #[test]
    fn workload_metadata() {
        let w = Workload::new(DatasetKind::Citeseer, NetworkKind::Graphsage);
        assert_eq!(w.label(), "citeseer-gsage");
        assert_eq!(w.num_classes(), 6);
        assert!((w.hygcn_sparsity_speedup() - 3.0).abs() < 1e-9);
        assert_eq!(w.to_string(), "citeseer-gsage");
        assert!(
            (Workload::new(DatasetKind::Cora, NetworkKind::Gcn).hygcn_sparsity_speedup() - 1.1)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn context_materialises_all_datasets() {
        let ctx = quick_context();
        for kind in DatasetKind::ALL {
            let ds = ctx.dataset(kind).unwrap();
            assert!(ds.num_nodes() > 0);
            assert_eq!(ds.features.dim(), kind.spec().feature_dim);
        }
        assert!((ctx.options().scale - 0.05).abs() < 1e-9);
        assert_eq!(ctx.runner().cached_datasets(), 3);
    }

    #[test]
    fn scenarios_inherit_the_context_options() {
        let ctx = quick_context();
        let w = Workload::new(DatasetKind::Pubmed, NetworkKind::Graphsage);
        let s = ctx.scenario(&w, ctx.options().config.clone(), ctx.blocked_dataflow());
        assert_eq!(s.network, NetworkKind::Graphsage);
        assert_eq!(s.out_dim, 3);
        assert_eq!(s.hidden_dim, 16);
        assert_eq!(s.seed, ctx.options().seed + 2);
        assert_eq!(s.dataflow, DataflowConfig::blocked(64));
    }

    #[test]
    fn run_workload_produces_consistent_results() {
        let ctx = quick_context();
        let result = ctx
            .run_workload(&Workload::new(DatasetKind::Cora, NetworkKind::Gcn))
            .unwrap();
        assert!(result.gnnerator_blocked.total_cycles > 0);
        assert!(result.gnnerator_unblocked.total_cycles > 0);
        assert!(result.gpu.seconds > 0.0);
        assert!(result.hygcn.seconds > 0.0);
        assert!(result.speedup_blocked_vs_gpu() > 0.0);
        assert!(result.speedup_unblocked_vs_gpu() > 0.0);
        assert!(result.speedup_blocked_vs_hygcn() > 0.0);
        assert!(result.speedup_unblocked_vs_hygcn() > 0.0);
    }

    #[test]
    fn run_suite_matches_per_workload_runs() {
        let ctx = quick_context();
        let all = ctx.run_suite().unwrap();
        assert_eq!(all.len(), 9);
        for result in &all {
            let single = ctx.run_workload(&result.workload).unwrap();
            assert_eq!(result.gnnerator_blocked, single.gnnerator_blocked);
            assert_eq!(result.gnnerator_unblocked, single.gnnerator_unblocked);
        }
    }

    #[test]
    fn workload_results_agree_with_the_speedup_columns() {
        // The gpu/hygcn evaluations folded into a WorkloadResult must be the
        // same numbers the accelerator points carry as baseline_seconds —
        // one sweep, one source of truth for every speedup figure.
        let ctx = quick_context();
        let w = Workload::new(DatasetKind::Citeseer, NetworkKind::Gcn);
        let result = ctx.run_workload(&w).unwrap();
        let blocked = ctx
            .runner()
            .run_one(&ctx.scenario(&w, ctx.options().config.clone(), ctx.blocked_dataflow()))
            .unwrap();
        let baselines = blocked.baseline_seconds.unwrap();
        assert_eq!(result.gpu.seconds, baselines.gpu);
        assert_eq!(result.hygcn.seconds, baselines.hygcn);
        assert_eq!(
            result.speedup_blocked_vs_gpu(),
            blocked.speedup_vs_gpu().unwrap()
        );
        assert_eq!(
            result.speedup_blocked_vs_hygcn(),
            blocked.speedup_vs_hygcn().unwrap()
        );
    }

    #[test]
    fn baseline_scenarios_name_their_backend() {
        let ctx = quick_context();
        let w = Workload::new(DatasetKind::Cora, NetworkKind::Gcn);
        let s = ctx.baseline_scenario(&w, BackendKind::Hygcn);
        assert_eq!(s.backend, BackendKind::Hygcn);
        assert_eq!(s.label(), "cora-gcn/hygcn");
    }

    #[test]
    fn hidden_dim_clones_share_datasets() {
        let ctx = quick_context();
        let wide = ctx.with_hidden_dim(128);
        assert_eq!(wide.options().hidden_dim, 128);
        wide.dataset(DatasetKind::Cora).unwrap();
        // Same runner, so no second synthesis of the same spec.
        assert_eq!(ctx.runner().cached_datasets(), 3);
    }

    #[test]
    fn options_builders() {
        let opts = SuiteOptions::paper()
            .with_scale(0.5)
            .with_hidden_dim(128)
            .with_config(GnneratorConfig::paper_default().with_double_dense_compute());
        assert!((opts.scale - 0.5).abs() < 1e-9);
        assert_eq!(opts.hidden_dim, 128);
        assert_eq!(opts.config.dense.array_rows, 128);
        assert_eq!(SuiteOptions::default(), SuiteOptions::paper());
    }
}
