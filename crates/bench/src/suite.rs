//! The nine-benchmark suite (Tables II & III) and its runner.
//!
//! A [`SuiteContext`] synthesises the three citation datasets once, then runs
//! any combination of dataset × network through the GNNerator simulator (with
//! and without feature blocking) and the two baseline models, producing
//! [`WorkloadResult`]s that the experiment assemblers turn into the paper's
//! tables and figures.

use gnnerator::{DataflowConfig, GnneratorConfig, GnneratorError, Report, Simulator};
use gnnerator_baselines::{BaselineEstimate, GpuModel, HygcnConfig, HygcnModel};
use gnnerator_gnn::{GnnModel, NetworkKind};
use gnnerator_graph::datasets::{Dataset, DatasetKind};
use std::collections::HashMap;
use std::fmt;

/// One benchmark: a dataset paired with a network architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The input graph dataset.
    pub dataset: DatasetKind,
    /// The GNN architecture.
    pub network: NetworkKind,
}

impl Workload {
    /// Creates a workload.
    pub fn new(dataset: DatasetKind, network: NetworkKind) -> Self {
        Self { dataset, network }
    }

    /// The label used on the x-axis of Figure 3 (e.g. `cora-gcn`,
    /// `pub-gsage-max`).
    pub fn label(&self) -> String {
        format!("{}-{}", self.dataset.short_name(), self.network.short_name())
    }

    /// Number of output classes of the dataset (used as the model's output
    /// dimension, as DGL's node-classification setup does).
    pub fn num_classes(&self) -> usize {
        match self.dataset {
            DatasetKind::Cora => 7,
            DatasetKind::Citeseer => 6,
            DatasetKind::Pubmed => 3,
        }
    }

    /// HyGCN's window-shrinking sparsity-elimination speedup for this
    /// dataset, as quoted in the paper (≈1.1× for Cora/Pubmed, ≈3× for
    /// Citeseer).
    pub fn hygcn_sparsity_speedup(&self) -> f64 {
        match self.dataset {
            DatasetKind::Citeseer => 3.0,
            DatasetKind::Cora | DatasetKind::Pubmed => 1.1,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Parses an optional `--scale <factor>` argument from a binary's command
/// line, defaulting to 1.0 (the paper's full-size datasets).
///
/// Unrecognised arguments are ignored so the harness binaries stay
/// dependency-free.
///
/// # Examples
///
/// ```
/// use gnnerator_bench::suite::scale_from_args;
/// let args = ["fig3".to_string(), "--scale".to_string(), "0.25".to_string()];
/// assert!((scale_from_args(args.into_iter()) - 0.25).abs() < 1e-9);
/// assert_eq!(scale_from_args(["fig3".to_string()].into_iter()), 1.0);
/// ```
pub fn scale_from_args(args: impl Iterator<Item = String>) -> f64 {
    let args: Vec<String> = args.collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            if let Ok(scale) = window[1].parse::<f64>() {
                if scale > 0.0 && scale <= 1.0 {
                    return scale;
                }
            }
        }
    }
    1.0
}

/// The nine benchmarks of Figure 3, in the paper's order.
pub fn full_suite() -> Vec<Workload> {
    let mut suite = Vec::with_capacity(9);
    for dataset in DatasetKind::ALL {
        for network in NetworkKind::ALL {
            suite.push(Workload::new(dataset, network));
        }
    }
    suite
}

/// Options controlling how the suite is materialised and simulated.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteOptions {
    /// Scale factor applied to every dataset's vertex/edge counts (1.0 = the
    /// paper's full-size datasets; smaller values for fast smoke tests).
    pub scale: f64,
    /// Seed for dataset synthesis.
    pub seed: u64,
    /// Hidden dimension of the networks (16 in Table III).
    pub hidden_dim: usize,
    /// Accelerator configuration to simulate.
    pub config: GnneratorConfig,
    /// Feature-block size for the blocked dataflow (64 in the paper).
    pub block_size: usize,
}

impl SuiteOptions {
    /// The paper's configuration: full-size datasets, hidden dimension 16,
    /// block size 64.
    pub fn paper() -> Self {
        Self {
            scale: 1.0,
            seed: 42,
            hidden_dim: NetworkKind::PAPER_HIDDEN_DIM,
            config: GnneratorConfig::paper_default(),
            block_size: 64,
        }
    }

    /// A heavily scaled-down configuration for tests and doctests.
    pub fn quick() -> Self {
        Self {
            scale: 0.05,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different dataset scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Returns a copy with a different accelerator configuration.
    pub fn with_config(mut self, config: GnneratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns a copy with a different hidden dimension (Figure 5 sweeps 16,
    /// 128 and 1024).
    pub fn with_hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// Results of running one workload on every platform.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The workload that was run.
    pub workload: Workload,
    /// GNNerator with the feature-blocking dataflow.
    pub gnnerator_blocked: Report,
    /// GNNerator with the conventional dataflow ("w/o Feature Blocking").
    pub gnnerator_unblocked: Report,
    /// The RTX 2080 Ti baseline estimate.
    pub gpu: BaselineEstimate,
    /// The HyGCN baseline estimate (with its dataset-specific sparsity
    /// elimination applied).
    pub hygcn: BaselineEstimate,
}

impl WorkloadResult {
    /// Speedup of blocked GNNerator over the GPU (a Figure 3 bar).
    pub fn speedup_blocked_vs_gpu(&self) -> f64 {
        self.gpu.seconds / self.gnnerator_blocked.seconds()
    }

    /// Speedup of unblocked GNNerator over the GPU (a Figure 3 bar).
    pub fn speedup_unblocked_vs_gpu(&self) -> f64 {
        self.gpu.seconds / self.gnnerator_unblocked.seconds()
    }

    /// Speedup of blocked GNNerator over HyGCN (a Table V entry).
    pub fn speedup_blocked_vs_hygcn(&self) -> f64 {
        self.hygcn.seconds / self.gnnerator_blocked.seconds()
    }

    /// Speedup of unblocked GNNerator over HyGCN (a Table V entry).
    pub fn speedup_unblocked_vs_hygcn(&self) -> f64 {
        self.hygcn.seconds / self.gnnerator_unblocked.seconds()
    }
}

/// A materialised benchmark suite: synthesised datasets plus the options they
/// were built with.
#[derive(Debug, Clone)]
pub struct SuiteContext {
    options: SuiteOptions,
    datasets: HashMap<DatasetKind, Dataset>,
}

impl SuiteContext {
    /// Synthesises every dataset in the suite according to `options`.
    ///
    /// # Errors
    ///
    /// Propagates dataset-synthesis errors.
    pub fn materialize(options: &SuiteOptions) -> Result<Self, GnneratorError> {
        let mut datasets = HashMap::new();
        for (i, kind) in DatasetKind::ALL.iter().enumerate() {
            let spec = if (options.scale - 1.0).abs() < f64::EPSILON {
                kind.spec()
            } else {
                kind.spec().scaled(options.scale)
            };
            let dataset = spec.synthesize(options.seed + i as u64)?;
            datasets.insert(*kind, dataset);
        }
        Ok(Self {
            options: options.clone(),
            datasets,
        })
    }

    /// The options this context was materialised with.
    pub fn options(&self) -> &SuiteOptions {
        &self.options
    }

    /// Returns a copy of this context with a different hidden dimension,
    /// reusing the already-synthesised datasets (the Figure 5 study sweeps
    /// hidden dimensions 16, 128 and 1024 over the same graphs).
    pub fn with_hidden_dim(&self, hidden_dim: usize) -> SuiteContext {
        let mut clone = self.clone();
        clone.options.hidden_dim = hidden_dim;
        clone
    }

    /// The synthesised dataset for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was somehow not materialised (cannot happen through
    /// [`SuiteContext::materialize`]).
    pub fn dataset(&self, kind: DatasetKind) -> &Dataset {
        self.datasets.get(&kind).expect("all datasets are materialised")
    }

    /// Builds the model for a workload at this context's hidden dimension.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn model_for(&self, workload: &Workload) -> Result<GnnModel, GnneratorError> {
        let dataset = self.dataset(workload.dataset);
        Ok(workload
            .network
            .build(
                dataset.features.dim(),
                self.options.hidden_dim,
                workload.num_classes(),
                1,
            )
            .map_err(GnneratorError::from)?)
    }

    /// Simulates GNNerator (with the given dataflow) on a workload.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn simulate_gnnerator(
        &self,
        workload: &Workload,
        dataflow: DataflowConfig,
    ) -> Result<Report, GnneratorError> {
        let dataset = self.dataset(workload.dataset);
        let model = self.model_for(workload)?;
        let sim = Simulator::with_dataflow(self.options.config.clone(), dataflow)?;
        sim.simulate(&model, dataset)
    }

    /// Simulates GNNerator with an explicit platform configuration (used by
    /// the Figure 5 scaling study).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn simulate_with_config(
        &self,
        workload: &Workload,
        config: GnneratorConfig,
        dataflow: DataflowConfig,
    ) -> Result<Report, GnneratorError> {
        let dataset = self.dataset(workload.dataset);
        let model = self.model_for(workload)?;
        let sim = Simulator::with_dataflow(config, dataflow)?;
        sim.simulate(&model, dataset)
    }

    /// Estimates the GPU baseline for a workload.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn estimate_gpu(&self, workload: &Workload) -> Result<BaselineEstimate, GnneratorError> {
        let dataset = self.dataset(workload.dataset);
        let model = self.model_for(workload)?;
        Ok(GpuModel::rtx_2080_ti().estimate(&model, dataset.num_nodes(), dataset.num_edges()))
    }

    /// Estimates the HyGCN baseline for a workload, applying the
    /// dataset-specific sparsity-elimination factor.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn estimate_hygcn(&self, workload: &Workload) -> Result<BaselineEstimate, GnneratorError> {
        let dataset = self.dataset(workload.dataset);
        let model = self.model_for(workload)?;
        let config =
            HygcnConfig::paper_default().with_sparsity_speedup(workload.hygcn_sparsity_speedup());
        Ok(HygcnModel::new(config).estimate(&model, dataset.num_nodes(), dataset.num_edges()))
    }

    /// Runs one workload on all four platforms.
    ///
    /// # Errors
    ///
    /// Propagates simulation and estimation errors.
    pub fn run_workload(&self, workload: &Workload) -> Result<WorkloadResult, GnneratorError> {
        let blocked_dataflow = DataflowConfig::blocked(self.options.block_size);
        Ok(WorkloadResult {
            workload: *workload,
            gnnerator_blocked: self.simulate_gnnerator(workload, blocked_dataflow)?,
            gnnerator_unblocked: self.simulate_gnnerator(workload, DataflowConfig::conventional())?,
            gpu: self.estimate_gpu(workload)?,
            hygcn: self.estimate_hygcn(workload)?,
        })
    }

    /// Runs the whole nine-benchmark suite.
    ///
    /// # Errors
    ///
    /// Propagates the first workload error encountered.
    pub fn run_suite(&self) -> Result<Vec<WorkloadResult>, GnneratorError> {
        full_suite().iter().map(|w| self.run_workload(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_context() -> SuiteContext {
        SuiteContext::materialize(&SuiteOptions::quick()).unwrap()
    }

    #[test]
    fn full_suite_has_nine_workloads_in_paper_order() {
        let suite = full_suite();
        assert_eq!(suite.len(), 9);
        assert_eq!(suite[0].label(), "cora-gcn");
        assert_eq!(suite[2].label(), "cora-gsage-max");
        assert_eq!(suite[8].label(), "pub-gsage-max");
    }

    #[test]
    fn workload_metadata() {
        let w = Workload::new(DatasetKind::Citeseer, NetworkKind::Graphsage);
        assert_eq!(w.label(), "citeseer-gsage");
        assert_eq!(w.num_classes(), 6);
        assert!((w.hygcn_sparsity_speedup() - 3.0).abs() < 1e-9);
        assert_eq!(w.to_string(), "citeseer-gsage");
        assert!((Workload::new(DatasetKind::Cora, NetworkKind::Gcn).hygcn_sparsity_speedup() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn context_materialises_all_datasets() {
        let ctx = quick_context();
        for kind in DatasetKind::ALL {
            let ds = ctx.dataset(kind);
            assert!(ds.num_nodes() > 0);
            assert_eq!(ds.features.dim(), kind.spec().feature_dim);
        }
        assert!((ctx.options().scale - 0.05).abs() < 1e-9);
    }

    #[test]
    fn run_workload_produces_consistent_results() {
        let ctx = quick_context();
        let result = ctx
            .run_workload(&Workload::new(DatasetKind::Cora, NetworkKind::Gcn))
            .unwrap();
        assert!(result.gnnerator_blocked.total_cycles > 0);
        assert!(result.gnnerator_unblocked.total_cycles > 0);
        assert!(result.gpu.seconds > 0.0);
        assert!(result.hygcn.seconds > 0.0);
        assert!(result.speedup_blocked_vs_gpu() > 0.0);
        assert!(result.speedup_unblocked_vs_gpu() > 0.0);
        assert!(result.speedup_blocked_vs_hygcn() > 0.0);
        assert!(result.speedup_unblocked_vs_hygcn() > 0.0);
    }

    #[test]
    fn options_builders() {
        let opts = SuiteOptions::paper()
            .with_scale(0.5)
            .with_hidden_dim(128)
            .with_config(GnneratorConfig::paper_default().with_double_dense_compute());
        assert!((opts.scale - 0.5).abs() < 1e-9);
        assert_eq!(opts.hidden_dim, 128);
        assert_eq!(opts.config.dense.array_rows, 128);
        assert_eq!(SuiteOptions::default(), SuiteOptions::paper());
    }
}
