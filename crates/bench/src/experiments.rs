//! Assembles the paper's tables and figures from scenario sweeps.
//!
//! Every figure/table follows the same shape: enumerate
//! [`ScenarioSpec`](gnnerator::ScenarioSpec) points, execute them as **one
//! parallel batch** through the context's [`SweepRunner`](gnnerator::SweepRunner),
//! then fold the ordered results into rows. Each function returns plain data
//! (rows of labels and numbers) plus a formatted [`Table`] so the harness
//! binaries, the criterion benches and the integration tests all share one
//! implementation.

use crate::rows::{format_speedup, geomean, Table};
use crate::suite::{full_suite, SuiteContext, Workload, WorkloadResult};
use gnnerator::{cost, BackendKind, DataflowConfig, GnneratorConfig, GnneratorError, ScenarioSpec};
use gnnerator_gnn::NetworkKind;
use gnnerator_graph::datasets::DatasetKind;

/// One bar group of Figure 3: speedups over the GPU baseline for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3Row {
    /// Workload label (`cora-gcn`, ...).
    pub label: String,
    /// Speedup of GNNerator (with feature blocking) over the GPU.
    pub gnnerator: f64,
    /// Speedup of GNNerator without feature blocking over the GPU.
    pub without_blocking: f64,
}

/// Figure 3: normalized speedup over the RTX 2080 Ti for the nine-benchmark
/// suite, for GNNerator with and without feature-dimension blocking.
///
/// Returns the per-workload rows (in the paper's order) followed by the
/// geometric means, matching the figure's final `Gmean` group.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure3(ctx: &SuiteContext) -> Result<(Vec<Figure3Row>, f64, f64), GnneratorError> {
    let mut rows = Vec::new();
    for result in ctx.run_suite()? {
        rows.push(Figure3Row {
            label: result.workload.label(),
            gnnerator: result.speedup_blocked_vs_gpu(),
            without_blocking: result.speedup_unblocked_vs_gpu(),
        });
    }
    let gm_blocked = geomean(&rows.iter().map(|r| r.gnnerator).collect::<Vec<_>>());
    let gm_unblocked = geomean(&rows.iter().map(|r| r.without_blocking).collect::<Vec<_>>());
    Ok((rows, gm_blocked, gm_unblocked))
}

/// Formats Figure 3 as a text table.
pub fn figure3_table(rows: &[Figure3Row], gm_blocked: f64, gm_unblocked: f64) -> Table {
    let mut table = Table::new(
        &format!(
            "Figure 3: speedup over the {} baseline (RTX 2080 Ti)",
            BackendKind::GpuRoofline
        ),
        &["benchmark", "GNNerator", "GNNerator w/o blocking"],
    );
    for row in rows {
        table.add_row(vec![
            row.label.clone(),
            format_speedup(row.gnnerator),
            format_speedup(row.without_blocking),
        ]);
    }
    table.add_row(vec![
        "Gmean".to_string(),
        format_speedup(gm_blocked),
        format_speedup(gm_unblocked),
    ]);
    table
}

/// One row of Table V: speedup over HyGCN for GCN on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Dataset name.
    pub dataset: String,
    /// Speedup of GNNerator without blocking over HyGCN.
    pub without_blocking: f64,
    /// Speedup of GNNerator with blocking over HyGCN.
    pub with_blocking: f64,
}

/// Table V: speedups of GNNerator over HyGCN for GCN on the three datasets,
/// read straight off the unified sweep's speedup columns (every accelerator
/// point carries its HyGCN baseline seconds).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table5(ctx: &SuiteContext) -> Result<Vec<Table5Row>, GnneratorError> {
    let workloads: Vec<Workload> = DatasetKind::ALL
        .into_iter()
        .map(|dataset| Workload::new(dataset, NetworkKind::Gcn))
        .collect();
    let scenarios: Vec<ScenarioSpec> = workloads
        .iter()
        .flat_map(|w| {
            [
                ctx.scenario(w, ctx.options().config.clone(), ctx.blocked_dataflow()),
                ctx.scenario(
                    w,
                    ctx.options().config.clone(),
                    DataflowConfig::conventional(),
                ),
            ]
        })
        .collect();
    let results = ctx.run_scenarios(&scenarios)?;
    workloads
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(workload, pair)| {
            let column = |r: &gnnerator::ScenarioResult| {
                r.speedup_vs_hygcn()
                    .expect("accelerator points carry baseline columns")
            };
            Ok(Table5Row {
                dataset: workload.dataset.to_string(),
                with_blocking: column(&pair[0]),
                without_blocking: column(&pair[1]),
            })
        })
        .collect()
}

/// Formats Table V as a text table.
pub fn table5_table(rows: &[Table5Row]) -> Table {
    let mut table = Table::new(
        &format!(
            "Table V: speedup of {} over the {} baseline (GCN)",
            BackendKind::Gnnerator,
            BackendKind::Hygcn
        ),
        &["configuration", "cora", "citeseer", "pubmed"],
    );
    let pick = |f: &dyn Fn(&Table5Row) -> f64| -> Vec<String> {
        rows.iter().map(|r| format_speedup(f(r))).collect()
    };
    let without = pick(&|r| r.without_blocking);
    let with = pick(&|r| r.with_blocking);
    let mut row = vec!["GNNerator w/o blocking".to_string()];
    row.extend(without);
    table.add_row(row);
    let mut row = vec!["GNNerator".to_string()];
    row.extend(with);
    table.add_row(row);
    table
}

/// One bar of Figure 4: geometric-mean slowdown (relative to `B = 64`) of a
/// block size over the whole suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4Row {
    /// The feature-block size.
    pub block_size: usize,
    /// Geometric-mean slowdown relative to the `B = 64` baseline (1.0 means
    /// identical performance, larger is worse).
    pub slowdown: f64,
}

/// The block sizes swept in Figure 4.
pub const FIGURE4_BLOCK_SIZES: [usize; 7] = [32, 64, 128, 256, 1024, 2048, 4096];

/// Figure 4: slowdown of each block size relative to `B = 64`, averaged
/// (geometric mean) over the nine-benchmark suite.
///
/// The baseline and every swept block size run as one parallel batch.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure4(
    ctx: &SuiteContext,
    block_sizes: &[usize],
) -> Result<Vec<Figure4Row>, GnneratorError> {
    let suite = full_suite();
    let config = ctx.options().config.clone();
    // One batch: the B = 64 baseline for every workload, then every swept
    // block size for every workload.
    let mut scenarios: Vec<ScenarioSpec> = suite
        .iter()
        .map(|w| ctx.scenario(w, config.clone(), DataflowConfig::blocked(64)))
        .collect();
    for &b in block_sizes {
        for w in &suite {
            scenarios.push(ctx.scenario(w, config.clone(), DataflowConfig::blocked(b)));
        }
    }
    let results = ctx.run_scenarios(&scenarios)?;
    let (baseline, swept) = results.split_at(suite.len());

    let mut rows = Vec::new();
    for (i, &b) in block_sizes.iter().enumerate() {
        let chunk = &swept[i * suite.len()..(i + 1) * suite.len()];
        let ratios: Vec<f64> = chunk
            .iter()
            .zip(baseline)
            .map(|(run, base)| accelerator_cycles(run) / accelerator_cycles(base))
            .collect();
        rows.push(Figure4Row {
            block_size: b,
            slowdown: geomean(&ratios),
        });
    }
    Ok(rows)
}

/// Formats Figure 4 as a text table.
pub fn figure4_table(rows: &[Figure4Row]) -> Table {
    let mut table = Table::new(
        "Figure 4: slowdown vs block size (relative to B = 64)",
        &["block size B", "slowdown"],
    );
    for row in rows {
        table.add_row(vec![
            format!("B={}", row.block_size),
            format!("{:.2}x", row.slowdown),
        ]);
    }
    table
}

/// One bar group of Figure 5: speedups of the three scaled next-generation
/// configurations over baseline GNNerator for one dataset / hidden-dimension
/// pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Row {
    /// Label in the paper's style (`Cora-16`, `Pubmed-1024`, ...).
    pub label: String,
    /// Speedup from doubling the Graph Engine's on-chip memory.
    pub more_graph_memory: f64,
    /// Speedup from doubling the Dense Engine's dimensions.
    pub more_dense_compute: f64,
    /// Speedup from doubling the feature-memory bandwidth.
    pub more_bandwidth: f64,
}

/// The hidden dimensions swept in Figure 5.
pub const FIGURE5_HIDDEN_DIMS: [usize; 3] = [16, 128, 1024];

/// Figure 5: where to invest additional hardware. For every dataset and
/// hidden dimension, the speedup of each scaled configuration over the
/// baseline GNNerator (all using the blocked dataflow).
///
/// All 36 scenario points (3 datasets × 3 hidden dimensions × 4
/// configurations) execute as one parallel batch.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure5(ctx: &SuiteContext) -> Result<(Vec<Figure5Row>, [f64; 3]), GnneratorError> {
    let base_config = ctx.options().config.clone();
    let scaled = [
        base_config.with_double_graph_memory(),
        base_config.with_double_dense_compute(),
        base_config.with_double_feature_bandwidth(),
    ];
    let dataflow = ctx.blocked_dataflow();

    // Enumerate: for every (hidden, dataset), the baseline then the three
    // scaled configurations.
    let mut scenarios = Vec::new();
    let mut labels = Vec::new();
    for &hidden in &FIGURE5_HIDDEN_DIMS {
        let swept = ctx.with_hidden_dim(hidden);
        for dataset in DatasetKind::ALL {
            let workload = Workload::new(dataset, NetworkKind::Gcn);
            labels.push(format!("{}-{}", capitalise(dataset.to_string()), hidden));
            scenarios.push(swept.scenario(&workload, base_config.clone(), dataflow));
            for config in &scaled {
                scenarios.push(swept.scenario(&workload, config.clone(), dataflow));
            }
        }
    }
    let results = ctx.run_scenarios(&scenarios)?;

    let mut rows = Vec::new();
    let mut ratios: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (label, group) in labels.into_iter().zip(results.chunks_exact(4)) {
        let baseline = accelerator_cycles(&group[0]);
        let mut speedups = [0.0; 3];
        for (i, run) in group[1..].iter().enumerate() {
            speedups[i] = baseline / accelerator_cycles(run);
            ratios[i].push(speedups[i]);
        }
        rows.push(Figure5Row {
            label,
            more_graph_memory: speedups[0],
            more_dense_compute: speedups[1],
            more_bandwidth: speedups[2],
        });
    }
    let gmeans = [
        geomean(&ratios[0]),
        geomean(&ratios[1]),
        geomean(&ratios[2]),
    ];
    Ok((rows, gmeans))
}

/// Formats Figure 5 as a text table.
pub fn figure5_table(rows: &[Figure5Row], gmeans: &[f64; 3]) -> Table {
    let mut table = Table::new(
        "Figure 5: scaling GNNerator (speedup over baseline)",
        &[
            "configuration",
            "more graph memory",
            "more dense compute",
            "more bandwidth",
        ],
    );
    for row in rows {
        table.add_row(vec![
            row.label.clone(),
            format_speedup(row.more_graph_memory),
            format_speedup(row.more_dense_compute),
            format_speedup(row.more_bandwidth),
        ]);
    }
    table.add_row(vec![
        "Gmean".to_string(),
        format_speedup(gmeans[0]),
        format_speedup(gmeans[1]),
        format_speedup(gmeans[2]),
    ]);
    table
}

/// Table I evaluated at representative grid sizes, as a text table.
pub fn table1_table() -> Table {
    let rows = cost::evaluate_table(&[2, 4, 8, 16], &[1, 4, 16, 64]);
    let mut table = Table::new(
        "Table I: analytical shard-dataflow costs",
        &[
            "S",
            "I",
            "SRC-stationary (reads/writes)",
            "DST-stationary (reads/writes)",
            "preferred",
        ],
    );
    for row in rows {
        table.add_row(vec![
            row.s.to_string(),
            row.i.to_string(),
            format!(
                "{} / {}",
                row.src_stationary.reads, row.src_stationary.writes
            ),
            format!(
                "{} / {}",
                row.dst_stationary.reads, row.dst_stationary.writes
            ),
            row.preferred.to_string(),
        ]);
    }
    table
}

/// Table II (dataset statistics) as a text table, for the sanity block the
/// harness binaries print.
pub fn table2_table() -> Table {
    let mut table = Table::new(
        "Table II: graph datasets",
        &["dataset", "vertices", "edges", "feature dim", "size"],
    );
    for kind in DatasetKind::ALL {
        let spec = kind.spec();
        table.add_row(vec![
            spec.name.to_string(),
            spec.vertices.to_string(),
            spec.edges.to_string(),
            spec.feature_dim.to_string(),
            format!("{:.1} MB", spec.feature_megabytes()),
        ]);
    }
    table
}

/// Table IV (compute platforms) as a text table.
pub fn table4_table() -> Table {
    let gnnerator = GnneratorConfig::paper_default();
    let mut table = Table::new(
        "Table IV: compute platforms",
        &[
            "platform",
            "peak compute",
            "on-chip memory",
            "off-chip bandwidth",
        ],
    );
    table.add_row(vec![
        "RTX 2080 Ti".to_string(),
        "13 TFLOPs".to_string(),
        "29.5 MiB".to_string(),
        "616 GB/s".to_string(),
    ]);
    table.add_row(vec![
        "GNNerator".to_string(),
        format!("{:.1} TFLOPs", gnnerator.peak_tflops()),
        format!("{} MiB", gnnerator.total_onchip_bytes() / (1024 * 1024)),
        format!("{} GB/s", gnnerator.dram.bandwidth_gb_s),
    ]);
    table.add_row(vec![
        "HyGCN".to_string(),
        "9 TFLOPs".to_string(),
        "24 MiB".to_string(),
        "256 GB/s".to_string(),
    ]);
    table
}

/// Runs the complete nine-benchmark suite and returns the raw results (used
/// by the `all_experiments` binary for its summary dump).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_full_suite(ctx: &SuiteContext) -> Result<Vec<WorkloadResult>, GnneratorError> {
    ctx.run_suite()
}

/// Total cycles of an accelerator scenario result (the figures' grids only
/// enumerate simulated points).
fn accelerator_cycles(result: &gnnerator::ScenarioResult) -> f64 {
    result
        .report
        .as_ref()
        .expect("figure grids enumerate accelerator points only")
        .total_cycles as f64
}

fn capitalise(s: String) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteOptions;

    fn quick_context() -> SuiteContext {
        SuiteContext::materialize(&SuiteOptions::quick()).unwrap()
    }

    #[test]
    fn figure3_produces_nine_rows_and_positive_geomeans() {
        let ctx = quick_context();
        let (rows, gm_blocked, gm_unblocked) = figure3(&ctx).unwrap();
        assert_eq!(rows.len(), 9);
        assert!(gm_blocked > 0.0);
        assert!(gm_unblocked > 0.0);
        let table = figure3_table(&rows, gm_blocked, gm_unblocked);
        assert_eq!(table.num_rows(), 10);
        assert!(table.to_string().contains("Gmean"));
    }

    #[test]
    fn table5_covers_all_datasets() {
        let ctx = quick_context();
        let rows = table5(&ctx).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.with_blocking > 0.0));
        let table = table5_table(&rows);
        assert!(table.to_string().contains(BackendKind::Hygcn.as_str()));
    }

    #[test]
    fn table5_agrees_with_per_workload_runs() {
        let ctx = quick_context();
        let rows = table5(&ctx).unwrap();
        for (dataset, row) in DatasetKind::ALL.into_iter().zip(&rows) {
            let single = ctx
                .run_workload(&Workload::new(dataset, NetworkKind::Gcn))
                .unwrap();
            assert!((row.with_blocking - single.speedup_blocked_vs_hygcn()).abs() < 1e-12);
            assert!((row.without_blocking - single.speedup_unblocked_vs_hygcn()).abs() < 1e-12);
        }
    }

    #[test]
    fn figure4_baseline_block_size_has_unit_slowdown() {
        let ctx = quick_context();
        let rows = figure4(&ctx, &[32, 64, 128]).unwrap();
        assert_eq!(rows.len(), 3);
        let b64 = rows.iter().find(|r| r.block_size == 64).unwrap();
        assert!((b64.slowdown - 1.0).abs() < 1e-9);
        let table = figure4_table(&rows);
        assert!(table.to_string().contains("B=64"));
    }

    #[test]
    fn figure5_produces_nine_rows_with_sane_speedups() {
        let ctx = quick_context();
        let (rows, gmeans) = figure5(&ctx).unwrap();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            for v in [
                row.more_graph_memory,
                row.more_dense_compute,
                row.more_bandwidth,
            ] {
                assert!(v > 0.3 && v < 10.0, "{}: {v}", row.label);
            }
        }
        assert!(gmeans.iter().all(|&g| g > 0.0));
        let table = figure5_table(&rows, &gmeans);
        assert!(table.to_string().contains("Cora-16"));
    }

    #[test]
    fn static_tables_render() {
        assert!(table1_table().to_string().contains("SRC-stationary"));
        assert!(table2_table().to_string().contains("2708"));
        assert!(table4_table().to_string().contains("GNNerator"));
    }
}
