//! Plain-text table formatting and small statistics helpers shared by the
//! benchmark harness binaries.

use std::fmt;

/// Geometric mean of a slice of positive values.
///
/// Returns 0.0 for an empty slice (the convention used when a figure has no
/// data points rather than panicking inside a report).
///
/// # Examples
///
/// ```
/// use gnnerator_bench::rows::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
/// assert_eq!(geomean(&[]), 0.0);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple fixed-width text table, printed by every harness binary.
///
/// # Examples
///
/// ```
/// use gnnerator_bench::rows::Table;
///
/// let mut t = Table::new("Speedups", &["benchmark", "speedup"]);
/// t.add_row(vec!["cora-gcn".into(), "7.5x".into()]);
/// let text = t.to_string();
/// assert!(text.contains("cora-gcn"));
/// assert!(text.contains("Speedups"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn add_row(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (header row followed by data rows), for
    /// downstream plotting scripts.
    ///
    /// Cells containing commas or quotes are quoted per RFC 4180.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_bench::rows::Table;
    /// let mut t = Table::new("Speedups", &["benchmark", "speedup"]);
    /// t.add_row(vec!["cora-gcn".into(), "7.5".into()]);
    /// let csv = t.to_csv();
    /// assert_eq!(csv.lines().count(), 2);
    /// assert!(csv.starts_with("benchmark,speedup"));
    /// ```
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a speedup as the paper's figures do (`7.5x`).
pub fn format_speedup(value: f64) -> String {
    format!("{value:.1}x")
}

/// Formats a time in milliseconds with three significant decimals.
pub fn format_ms(seconds: f64) -> String {
    format!("{:.3} ms", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean_for_spread_values() {
        let values = [1.0, 100.0];
        let gm = geomean(&values);
        assert!((gm - 10.0).abs() < 1e-9);
        assert!(gm < 50.5);
    }

    #[test]
    fn geomean_handles_empty_and_tiny_values() {
        assert_eq!(geomean(&[]), 0.0);
        assert!(geomean(&[0.0, 1.0]) >= 0.0);
    }

    #[test]
    fn table_pads_and_truncates_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0].len(), 2);
        assert_eq!(t.rows()[1].len(), 2);
    }

    #[test]
    fn table_display_aligns_columns() {
        let mut t = Table::new("Alignment", &["name", "value"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "2".into()]);
        let text = t.to_string();
        assert!(text.contains("Alignment"));
        assert!(text.contains("a-much-longer-name"));
        // Header separator present.
        assert!(text.contains("----"));
        assert_eq!(t.title(), "Alignment");
    }

    #[test]
    fn formatters() {
        assert_eq!(format_speedup(7.523), "7.5x");
        assert_eq!(format_ms(0.0015), "1.500 ms");
    }

    #[test]
    fn csv_export_quotes_special_cells() {
        let mut t = Table::new("T", &["name", "value"]);
        t.add_row(vec!["plain".into(), "1".into()]);
        t.add_row(vec!["with,comma".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_export_pads_short_rows() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1), Some("1,,"));
    }
}
