//! Benchmark harness for the GNNerator reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! section:
//!
//! | Artifact | Function | Binary | Criterion bench |
//! |----------|----------|--------|-----------------|
//! | Table I  | [`experiments::table1_rows`] | `table1` | `table1_dataflow` |
//! | Figure 3 | [`experiments::figure3`] | `fig3` | `fig3_speedup` |
//! | Table V  | [`experiments::table5`] | `table5` | `table5_hygcn` |
//! | Figure 4 | [`experiments::figure4`] | `fig4` | `fig4_blocksize` |
//! | Figure 5 | [`experiments::figure5`] | `fig5` | `fig5_scaling` |
//!
//! The [`suite`] module defines the nine-benchmark suite (three citation
//! datasets × three networks, Tables II & III) on top of the core crate's
//! [`SweepRunner`](gnnerator::SweepRunner): every figure/table enumerates
//! scenario points and executes them as one parallel batch over shared
//! compile-once sessions. The [`rows`] module provides the plain-text table
//! formatting shared by all harness binaries, [`experiments`] assembles the
//! per-figure result tables, and [`sweep_report`] measures the sweep engine
//! against the serial per-run path and emits `BENCH_sweep.json`.
//!
//! # Examples
//!
//! ```
//! use gnnerator_bench::suite::{SuiteContext, SuiteOptions, Workload};
//! use gnnerator_graph::datasets::DatasetKind;
//! use gnnerator_gnn::NetworkKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A scaled-down context so the doctest stays fast.
//! let ctx = SuiteContext::materialize(&SuiteOptions::quick())?;
//! let result = ctx.run_workload(&Workload::new(DatasetKind::Cora, NetworkKind::Gcn))?;
//! assert!(result.speedup_blocked_vs_gpu() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod rows;
pub mod suite;
pub mod sweep_report;
