//! Property-based tests for the hardware-modelling substrate.

use gnnerator_sim::{BandwidthChannel, EventQueue, PipelineTimer, SystolicArray};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bandwidth_requests_never_overlap(byte_counts in proptest::collection::vec(1u64..10_000, 1..50)) {
        let mut chan = BandwidthChannel::new("dram", 64.0).unwrap();
        let mut last_end = 0u64;
        for bytes in byte_counts {
            let end = chan.request(0, bytes);
            prop_assert!(end >= last_end + chan.transfer_cycles(bytes));
            last_end = end;
        }
        prop_assert_eq!(chan.busy_until(), last_end);
    }

    #[test]
    fn bandwidth_total_time_bounded_by_sum(byte_counts in proptest::collection::vec(0u64..5_000, 1..40)) {
        let mut chan = BandwidthChannel::new("dram", 100.0).unwrap();
        let sum_cycles: u64 = byte_counts.iter().map(|&b| chan.transfer_cycles(b)).sum();
        let mut end = 0;
        for bytes in &byte_counts {
            end = chan.request(0, *bytes);
        }
        prop_assert_eq!(end, sum_cycles);
    }

    #[test]
    fn systolic_cycles_monotonic_in_each_dimension(m in 1usize..300, k in 1usize..300, n in 1usize..300) {
        let a = SystolicArray::new(16, 16);
        prop_assert!(a.matmul_cycles(m + 16, k, n) >= a.matmul_cycles(m, k, n));
        prop_assert!(a.matmul_cycles(m, k + 1, n) >= a.matmul_cycles(m, k, n));
        prop_assert!(a.matmul_cycles(m, k, n + 16) >= a.matmul_cycles(m, k, n));
    }

    #[test]
    fn systolic_utilization_in_unit_interval(m in 1usize..500, k in 1usize..500, n in 1usize..500) {
        let a = SystolicArray::new(32, 32);
        let u = a.utilization(m, k, n);
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn systolic_cycles_at_least_ideal(m in 1usize..200, k in 1usize..200, n in 1usize..200) {
        // The array can never beat its peak MAC throughput.
        let a = SystolicArray::new(8, 8);
        let ideal = (a.useful_macs(m, k, n) as f64 / a.peak_macs_per_cycle() as f64).ceil() as u64;
        prop_assert!(a.matmul_cycles(m, k, n) >= ideal);
    }

    #[test]
    fn pipeline_bounded_between_max_and_sum(items in proptest::collection::vec((0u64..1000, 0u64..1000), 1..50)) {
        let mut p = PipelineTimer::new();
        for (l, c) in &items {
            p.push(*l, *c);
        }
        let sum_all: u64 = items.iter().map(|(l, c)| l + c).sum();
        let sum_load: u64 = items.iter().map(|(l, _)| *l).sum();
        let sum_compute: u64 = items.iter().map(|(_, c)| *c).sum();
        // Never slower than fully serial, never faster than either stage alone.
        prop_assert!(p.total_cycles() <= sum_all);
        prop_assert!(p.total_cycles() >= sum_load.max(sum_compute));
        prop_assert_eq!(p.total_load_cycles(), sum_load);
        prop_assert_eq!(p.total_compute_cycles(), sum_compute);
    }

    #[test]
    fn pipeline_dependency_only_delays(items in proptest::collection::vec((0u64..100, 0u64..100), 1..20), dep in 0u64..50) {
        let mut without = PipelineTimer::new();
        let mut with = PipelineTimer::new();
        for (l, c) in &items {
            without.push(*l, *c);
            with.push_with_dependency(*l, *c, dep);
        }
        prop_assert!(with.total_cycles() >= without.total_cycles());
    }

    #[test]
    fn event_queue_is_sorted_and_complete(events in proptest::collection::vec(0u64..10_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &cycle) in events.iter().enumerate() {
            q.schedule(cycle, i);
        }
        let mut popped = Vec::new();
        let mut last = 0u64;
        while let Some((cycle, idx)) = q.pop() {
            prop_assert!(cycle >= last);
            last = cycle;
            popped.push(idx);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..events.len()).collect::<Vec<_>>());
    }
}
