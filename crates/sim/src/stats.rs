use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Read/write byte counters for a memory interface.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::TrafficCounter;
///
/// let mut t = TrafficCounter::default();
/// t.record_read(1024);
/// t.record_write(256);
/// assert_eq!(t.total_bytes(), 1280);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficCounter {
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Number of read requests.
    pub read_requests: u64,
    /// Number of write requests.
    pub write_requests: u64,
}

impl TrafficCounter {
    /// Records a read of `bytes`.
    pub fn record_read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
        self.read_requests += 1;
    }

    /// Records a write of `bytes`.
    pub fn record_write(&mut self, bytes: u64) {
        self.write_bytes += bytes;
        self.write_requests += 1;
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounter) {
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.read_requests += other.read_requests;
        self.write_requests += other.write_requests;
    }
}

impl fmt::Display for TrafficCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {:.2} MB, wrote {:.2} MB",
            self.read_bytes as f64 / 1e6,
            self.write_bytes as f64 / 1e6
        )
    }
}

/// Tracks how many cycles a hardware unit spent busy versus idle.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::UtilizationTracker;
///
/// let mut u = UtilizationTracker::default();
/// u.record_busy(80);
/// u.record_idle(20);
/// assert!((u.utilization() - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UtilizationTracker {
    /// Cycles the unit was doing useful work.
    pub busy_cycles: Cycle,
    /// Cycles the unit was stalled or idle.
    pub idle_cycles: Cycle,
}

impl UtilizationTracker {
    /// Adds busy cycles.
    pub fn record_busy(&mut self, cycles: Cycle) {
        self.busy_cycles += cycles;
    }

    /// Adds idle/stall cycles.
    pub fn record_idle(&mut self, cycles: Cycle) {
        self.idle_cycles += cycles;
    }

    /// Total observed cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.busy_cycles + self.idle_cycles
    }

    /// Busy fraction in `[0, 1]`; zero if nothing was recorded.
    pub fn utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &UtilizationTracker) {
        self.busy_cycles += other.busy_cycles;
        self.idle_cycles += other.idle_cycles;
    }
}

impl fmt::Display for UtilizationTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}% busy", self.utilization() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counter_accumulates() {
        let mut t = TrafficCounter::default();
        t.record_read(100);
        t.record_read(50);
        t.record_write(25);
        assert_eq!(t.read_bytes, 150);
        assert_eq!(t.write_bytes, 25);
        assert_eq!(t.read_requests, 2);
        assert_eq!(t.write_requests, 1);
        assert_eq!(t.total_bytes(), 175);
    }

    #[test]
    fn traffic_counter_merge() {
        let mut a = TrafficCounter::default();
        a.record_read(10);
        let mut b = TrafficCounter::default();
        b.record_write(20);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.write_requests, 1);
    }

    #[test]
    fn utilization_tracker_fraction() {
        let mut u = UtilizationTracker::default();
        assert_eq!(u.utilization(), 0.0);
        u.record_busy(30);
        u.record_idle(70);
        assert!((u.utilization() - 0.3).abs() < 1e-9);
        assert_eq!(u.total_cycles(), 100);
    }

    #[test]
    fn utilization_tracker_merge() {
        let mut a = UtilizationTracker::default();
        a.record_busy(10);
        let mut b = UtilizationTracker::default();
        b.record_idle(10);
        a.merge(&b);
        assert!((a.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn displays_are_nonempty() {
        let mut t = TrafficCounter::default();
        t.record_read(2_000_000);
        assert!(t.to_string().contains("2.00 MB"));
        let mut u = UtilizationTracker::default();
        u.record_busy(1);
        u.record_idle(1);
        assert!(u.to_string().contains("50.0%"));
    }
}
