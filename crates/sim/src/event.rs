use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue keyed by cycle.
///
/// Events scheduled for the same cycle are delivered in insertion order
/// (FIFO), which keeps simulations reproducible regardless of how the heap
/// reorders equal keys internally.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "compute-done");
/// q.schedule(5, "load-done");
/// assert_eq!(q.pop(), Some((5, "load-done")));
/// assert_eq!(q.pop(), Some((10, "compute-done")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
    payloads: Vec<Option<E>>,
    sequence: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            sequence: 0,
        }
    }

    /// Schedules `event` to fire at `cycle`.
    pub fn schedule(&mut self, cycle: Cycle, event: E) {
        let slot = self.payloads.len();
        self.payloads.push(Some(event));
        self.heap.push(Reverse((cycle, self.sequence, slot)));
        self.sequence += 1;
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse((cycle, _, slot)) = self.heap.pop()?;
        let event = self.payloads[slot].take().expect("event delivered twice");
        Some((cycle, event))
    }

    /// The cycle of the earliest pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((cycle, _, _))| *cycle)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_cycle_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(42, ());
        q.schedule(7, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(7));
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u32> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(15, 3);
        q.schedule(5, 4); // scheduled "in the past" relative to 10, still fine
        assert_eq!(q.pop(), Some((5, 4)));
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), None);
    }
}
