use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Timing model of a double-buffered two-stage pipeline.
///
/// Every engine in GNNerator overlaps the *load* of the next work item with
/// the *compute* of the current one, thanks to double-buffered scratchpads:
/// the Graph Engine prefetches the next shard while processing the current
/// shard, and the Dense Engine streams weights for the next tile while the
/// systolic array drains the current tile. For a sequence of items with load
/// times `l_i` and compute times `c_i`, the standard recurrence is
///
/// ```text
/// load_done(i)    = max(load_done(i-1), compute_done(i-1) applies only when
///                       buffers are full — with two banks the load can run
///                       one item ahead) + l_i
/// compute_done(i) = max(compute_done(i-1), load_done(i)) + c_i
/// ```
///
/// The timer tracks both cursors plus aggregate busy/stall statistics.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::PipelineTimer;
///
/// let mut p = PipelineTimer::new();
/// p.push(10, 50);
/// p.push(10, 50);
/// p.push(10, 50);
/// // Compute-bound: total = first load + all computes.
/// assert_eq!(p.total_cycles(), 10 + 150);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineTimer {
    load_done: Cycle,
    compute_done: Cycle,
    items: u64,
    total_load: Cycle,
    total_compute: Cycle,
    compute_stall: Cycle,
}

impl PipelineTimer {
    /// Creates an empty pipeline starting at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline whose first load may not start before `start`.
    pub fn starting_at(start: Cycle) -> Self {
        Self {
            load_done: start,
            compute_done: start,
            ..Self::default()
        }
    }

    /// Feeds one work item through the pipeline.
    ///
    /// `load_cycles` is the time the fetch stage needs (typically DRAM
    /// transfer time); `compute_cycles` is the time the compute stage needs.
    /// Returns the cycle at which the item's compute completes.
    pub fn push(&mut self, load_cycles: Cycle, compute_cycles: Cycle) -> Cycle {
        // With double buffering the fetch of item i can start as soon as the
        // fetch of item i-1 finished (one bank is always free for it).
        self.load_done += load_cycles;
        let compute_start = self.compute_done.max(self.load_done);
        self.compute_stall += compute_start - self.compute_done;
        self.compute_done = compute_start + compute_cycles;
        self.items += 1;
        self.total_load += load_cycles;
        self.total_compute += compute_cycles;
        self.compute_done
    }

    /// Feeds one work item whose compute additionally depends on an external
    /// event finishing at `dependency_done` (e.g. the other engine producing
    /// the operand). Returns the completion cycle.
    pub fn push_with_dependency(
        &mut self,
        load_cycles: Cycle,
        compute_cycles: Cycle,
        dependency_done: Cycle,
    ) -> Cycle {
        self.load_done += load_cycles;
        let compute_start = self.compute_done.max(self.load_done).max(dependency_done);
        self.compute_stall += compute_start - self.compute_done;
        self.compute_done = compute_start + compute_cycles;
        self.items += 1;
        self.total_load += load_cycles;
        self.total_compute += compute_cycles;
        self.compute_done
    }

    /// Cycle at which the last pushed item's compute finishes.
    pub fn total_cycles(&self) -> Cycle {
        self.compute_done
    }

    /// Cycle at which the last pushed item's load finishes.
    pub fn load_frontier(&self) -> Cycle {
        self.load_done
    }

    /// Number of items pushed so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Sum of all load times (the fetch stage's busy cycles).
    pub fn total_load_cycles(&self) -> Cycle {
        self.total_load
    }

    /// Sum of all compute times (the compute stage's busy cycles).
    pub fn total_compute_cycles(&self) -> Cycle {
        self.total_compute
    }

    /// Cycles the compute stage spent waiting for loads or dependencies.
    pub fn compute_stall_cycles(&self) -> Cycle {
        self.compute_stall
    }

    /// Compute-stage utilisation over the pipeline's lifetime.
    pub fn compute_utilization(&self) -> f64 {
        if self.compute_done == 0 {
            0.0
        } else {
            self.total_compute as f64 / self.compute_done as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pipeline_is_zero() {
        let p = PipelineTimer::new();
        assert_eq!(p.total_cycles(), 0);
        assert_eq!(p.items(), 0);
        assert_eq!(p.compute_utilization(), 0.0);
    }

    #[test]
    fn compute_bound_pipeline_hides_loads() {
        let mut p = PipelineTimer::new();
        for _ in 0..4 {
            p.push(10, 100);
        }
        // First load exposed, all later loads hidden behind compute.
        assert_eq!(p.total_cycles(), 10 + 4 * 100);
        assert_eq!(p.compute_stall_cycles(), 10);
        assert!(p.compute_utilization() > 0.9);
    }

    #[test]
    fn load_bound_pipeline_is_limited_by_bandwidth() {
        let mut p = PipelineTimer::new();
        for _ in 0..4 {
            p.push(100, 10);
        }
        // Every compute waits for its load: total = 4 loads + last compute.
        assert_eq!(p.total_cycles(), 4 * 100 + 10);
        assert!(p.compute_utilization() < 0.2);
    }

    #[test]
    fn mixed_pipeline_matches_manual_recurrence() {
        let items = [(30u64, 50u64), (80, 20), (10, 90), (60, 60)];
        let mut p = PipelineTimer::new();
        let mut load = 0u64;
        let mut comp = 0u64;
        for (l, c) in items {
            load += l;
            comp = comp.max(load) + c;
            assert_eq!(p.push(l, c), comp);
        }
        assert_eq!(p.total_cycles(), comp);
        assert_eq!(p.items(), 4);
        assert_eq!(p.total_load_cycles(), 180);
        assert_eq!(p.total_compute_cycles(), 220);
    }

    #[test]
    fn dependency_delays_compute() {
        let mut p = PipelineTimer::new();
        let done = p.push_with_dependency(10, 20, 500);
        assert_eq!(done, 520);
        assert_eq!(p.compute_stall_cycles(), 500);
        // A dependency in the past has no effect.
        let mut q = PipelineTimer::new();
        assert_eq!(q.push_with_dependency(10, 20, 5), 30);
    }

    #[test]
    fn starting_offset_shifts_everything() {
        let mut p = PipelineTimer::starting_at(1000);
        p.push(10, 20);
        assert_eq!(p.total_cycles(), 1030);
    }

    #[test]
    fn pipelining_never_slower_than_serial() {
        let items = [(37u64, 91u64), (12, 4), (55, 60), (200, 10), (1, 1)];
        let mut p = PipelineTimer::new();
        let mut serial = 0u64;
        for (l, c) in items {
            p.push(l, c);
            serial += l + c;
        }
        assert!(p.total_cycles() <= serial);
        // And never faster than the compute lower bound.
        let compute_sum: u64 = items.iter().map(|(_, c)| *c).sum();
        assert!(p.total_cycles() >= compute_sum);
    }
}
