use crate::{Scratchpad, SimError};
use serde::{Deserialize, Serialize};

/// A double-buffered scratchpad: two equally-sized banks, one being filled by
/// the fetch units while the other is consumed by the compute units.
///
/// Every on-chip buffer in both of GNNerator's engines is double-buffered
/// (Section III), which is what enables the next shard to be prefetched
/// while the current shard is being processed. The model exposes the
/// *per-bank* capacity — the quantity that bounds how much of a shard can be
/// resident — plus a ping/pong switch for bookkeeping.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::DoubleBuffer;
///
/// # fn main() -> Result<(), gnnerator_sim::SimError> {
/// // 24 MiB of total storage double-buffered = 12 MiB usable per bank.
/// let buf = DoubleBuffer::new("graph-spad", 24 * 1024 * 1024)?;
/// assert_eq!(buf.bank_capacity_bytes(), 12 * 1024 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoubleBuffer {
    front: Scratchpad,
    back: Scratchpad,
    active_is_front: bool,
    swaps: u64,
}

impl DoubleBuffer {
    /// Creates a double buffer with `total_capacity_bytes` of physical SRAM,
    /// split evenly into two banks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the capacity is less than two
    /// bytes (each bank must be non-empty).
    pub fn new(name: &str, total_capacity_bytes: u64) -> Result<Self, SimError> {
        if total_capacity_bytes < 2 {
            return Err(SimError::invalid(
                "total_capacity_bytes",
                "must be at least 2 bytes to form two banks",
            ));
        }
        let bank = total_capacity_bytes / 2;
        Ok(Self {
            front: Scratchpad::new(format!("{name}.front"), bank)?,
            back: Scratchpad::new(format!("{name}.back"), bank)?,
            active_is_front: true,
            swaps: 0,
        })
    }

    /// Capacity of one bank — the amount of data compute can see at once.
    pub fn bank_capacity_bytes(&self) -> u64 {
        self.front.capacity_bytes()
    }

    /// Total physical capacity across both banks.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.front.capacity_bytes() + self.back.capacity_bytes()
    }

    /// The bank currently being consumed by compute.
    pub fn active(&self) -> &Scratchpad {
        if self.active_is_front {
            &self.front
        } else {
            &self.back
        }
    }

    /// The bank currently being filled by the fetch units.
    pub fn shadow(&self) -> &Scratchpad {
        if self.active_is_front {
            &self.back
        } else {
            &self.front
        }
    }

    /// Mutable access to the shadow bank (the one being filled).
    pub fn shadow_mut(&mut self) -> &mut Scratchpad {
        if self.active_is_front {
            &mut self.back
        } else {
            &mut self.front
        }
    }

    /// Swaps the banks: the freshly filled shadow becomes active and the old
    /// active bank is cleared for the next prefetch.
    pub fn swap(&mut self) {
        // Clear the outgoing active bank.
        if self.active_is_front {
            self.front.free_all();
        } else {
            self.back.free_all();
        }
        self.active_is_front = !self.active_is_front;
        self.swaps += 1;
    }

    /// Number of swaps performed (equals the number of shards processed when
    /// used as a shard buffer).
    pub fn swaps(&self) -> u64 {
        self.swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_split_in_half() {
        let buf = DoubleBuffer::new("spad", 1000).unwrap();
        assert_eq!(buf.bank_capacity_bytes(), 500);
        assert_eq!(buf.total_capacity_bytes(), 1000);
    }

    #[test]
    fn tiny_capacity_is_rejected() {
        assert!(DoubleBuffer::new("spad", 0).is_err());
        assert!(DoubleBuffer::new("spad", 1).is_err());
        assert!(DoubleBuffer::new("spad", 2).is_ok());
    }

    #[test]
    fn swap_alternates_banks_and_clears_old_active() {
        let mut buf = DoubleBuffer::new("spad", 100).unwrap();
        buf.shadow_mut().allocate(30).unwrap();
        assert_eq!(buf.shadow().used_bytes(), 30);
        assert_eq!(buf.active().used_bytes(), 0);

        buf.swap();
        // The filled bank is now active; the new shadow (old active) is empty.
        assert_eq!(buf.active().used_bytes(), 30);
        assert_eq!(buf.shadow().used_bytes(), 0);
        assert_eq!(buf.swaps(), 1);

        buf.swap();
        assert_eq!(buf.swaps(), 2);
        // The bank that held 30 bytes was cleared when it stopped being active.
        assert_eq!(buf.active().used_bytes(), 0);
    }

    #[test]
    fn bank_names_are_distinct() {
        let buf = DoubleBuffer::new("edges", 64).unwrap();
        assert_ne!(buf.active().name(), buf.shadow().name());
        assert!(buf.active().name().starts_with("edges"));
    }
}
