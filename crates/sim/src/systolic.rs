use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SCALE-Sim-style timing model of a 2-D output-stationary systolic array.
///
/// The Dense Engine's matrix-multiplication unit is a `rows x cols` systolic
/// array (64×64 in the paper's configuration, Table IV). Following SCALE-Sim's
/// output-stationary analytical model, one tile of an `M x K x N` product
/// mapped onto the array takes
///
/// ```text
/// 2 * rows + cols + K - 2   cycles
/// ```
///
/// (array fill + drain plus one cycle per reduction step), and the full
/// product takes `ceil(M / rows) * ceil(N / cols)` tiles. The model also
/// reports MAC utilisation so under-utilisation effects — such as a feature
/// block smaller than the array width (Figure 4's `B = 32` case) — show up
/// in results.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::SystolicArray;
///
/// let array = SystolicArray::new(64, 64);
/// // A single 64x64x64 tile.
/// assert_eq!(array.matmul_cycles(64, 64, 64), 2 * 64 + 64 - 2 + 64);
/// // Small inner dimension under-utilises the array.
/// assert!(array.utilization(64, 8, 64) < array.utilization(64, 64, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates a systolic array of `rows x cols` processing elements.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "systolic array dimensions must be positive"
        );
        Self { rows, cols }
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of multiply-accumulate units.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak throughput in MACs per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.num_pes() as u64
    }

    /// Cycles to compute one `tile_m x k x tile_n` tile where
    /// `tile_m <= rows` and `tile_n <= cols` (output-stationary dataflow).
    pub fn tile_cycles(&self, k: usize) -> Cycle {
        (2 * self.rows + self.cols + k).saturating_sub(2) as Cycle
    }

    /// Cycles to compute a full `m x k x n` matrix product, tiling the output
    /// over the array.
    ///
    /// Returns 0 when any dimension is 0.
    pub fn matmul_cycles(&self, m: usize, k: usize, n: usize) -> Cycle {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let tiles_m = m.div_ceil(self.rows) as Cycle;
        let tiles_n = n.div_ceil(self.cols) as Cycle;
        tiles_m * tiles_n * self.tile_cycles(k)
    }

    /// Cycles to compute a full `m x k x n` product with a *weight-stationary*
    /// mapping: a `rows x cols` tile of the `k x n` weight matrix is pinned in
    /// the array while all `m` input rows stream through it.
    ///
    /// ```text
    /// cycles = ceil(k / rows) * ceil(n / cols) * (m + rows + cols - 2)
    /// ```
    ///
    /// This is the mapping GNNerator's Dense Engine uses: it explains why a
    /// feature block narrower than the array (`B < 64`, Figure 4) halves the
    /// effective throughput — only `B` of the 64 weight rows are occupied, so
    /// the number of weight tiles (and hence passes over the inputs) doubles.
    ///
    /// Returns 0 when any dimension is 0.
    pub fn weight_stationary_cycles(&self, m: usize, k: usize, n: usize) -> Cycle {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let weight_tiles = (k.div_ceil(self.rows) * n.div_ceil(self.cols)) as Cycle;
        let pass = (m + self.rows + self.cols - 2) as Cycle;
        weight_tiles * pass
    }

    /// MAC-level utilisation for a weight-stationary `m x k x n` product.
    pub fn weight_stationary_utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cycles = self.weight_stationary_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        let available = cycles as f64 * self.num_pes() as f64;
        (self.useful_macs(m, k, n) as f64 / available).min(1.0)
    }

    /// Number of multiply-accumulates actually required by an `m x k x n`
    /// product.
    pub fn useful_macs(&self, m: usize, k: usize, n: usize) -> u64 {
        m as u64 * k as u64 * n as u64
    }

    /// MAC-level utilisation of the array for an `m x k x n` product: useful
    /// MACs divided by the MAC slots available over the product's runtime.
    pub fn utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cycles = self.matmul_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        let available = cycles as f64 * self.num_pes() as f64;
        (self.useful_macs(m, k, n) as f64 / available).min(1.0)
    }

    /// Bytes of operand traffic for an `m x k x n` product: inputs, weights
    /// and outputs, each read or written once (fp32).
    pub fn operand_bytes(&self, m: usize, k: usize, n: usize) -> u64 {
        4 * (m as u64 * k as u64 + k as u64 * n as u64 + m as u64 * n as u64)
    }

    /// Returns a scaled copy of the array (used by the Figure 5 study that
    /// doubles both dimensions of the Dense Engine).
    pub fn scaled(&self, factor: usize) -> SystolicArray {
        SystolicArray::new(self.rows * factor, self.cols * factor)
    }
}

impl Default for SystolicArray {
    /// The paper's Dense Engine configuration: a 64×64 array.
    fn default() -> Self {
        Self { rows: 64, cols: 64 }
    }
}

impl fmt::Display for SystolicArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} systolic array", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_panics() {
        let _ = SystolicArray::new(0, 64);
    }

    #[test]
    fn default_matches_table_iv() {
        let a = SystolicArray::default();
        assert_eq!(a.rows(), 64);
        assert_eq!(a.cols(), 64);
        assert_eq!(a.num_pes(), 4096);
        // 4096 MACs/cycle * 2 FLOPs/MAC * 1 GHz ≈ 8.2 TFLOP/s, matching the
        // 8 TFLOPs the paper allocates to the Dense Engine.
        assert_eq!(a.peak_macs_per_cycle(), 4096);
    }

    #[test]
    fn single_tile_formula() {
        let a = SystolicArray::new(8, 8);
        assert_eq!(a.tile_cycles(16), (2 * 8 + 8 + 16 - 2) as Cycle);
        assert_eq!(a.matmul_cycles(8, 16, 8), a.tile_cycles(16));
    }

    #[test]
    fn tiling_multiplies_tile_count() {
        let a = SystolicArray::new(8, 8);
        let one = a.matmul_cycles(8, 4, 8);
        assert_eq!(a.matmul_cycles(16, 4, 8), 2 * one);
        assert_eq!(a.matmul_cycles(16, 4, 16), 4 * one);
        // Partial tiles round up.
        assert_eq!(a.matmul_cycles(9, 4, 8), 2 * one);
    }

    #[test]
    fn zero_work_takes_zero_cycles() {
        let a = SystolicArray::default();
        assert_eq!(a.matmul_cycles(0, 10, 10), 0);
        assert_eq!(a.matmul_cycles(10, 0, 10), 0);
        assert_eq!(a.utilization(0, 10, 10), 0.0);
    }

    #[test]
    fn utilization_increases_with_k() {
        let a = SystolicArray::new(64, 64);
        let low = a.utilization(64, 8, 64);
        let high = a.utilization(64, 512, 64);
        assert!(
            high > low,
            "longer reductions amortise fill/drain: {low} vs {high}"
        );
        assert!(high <= 1.0);
    }

    #[test]
    fn small_output_tiles_underutilise() {
        // This is the Figure 4 B=32 effect: an output tile narrower than the
        // array wastes columns.
        let a = SystolicArray::new(64, 64);
        let narrow = a.utilization(64, 128, 32);
        let full = a.utilization(64, 128, 64);
        assert!(narrow < full);
    }

    #[test]
    fn operand_bytes_formula() {
        let a = SystolicArray::default();
        assert_eq!(a.operand_bytes(2, 3, 4), 4 * (6 + 12 + 8));
    }

    #[test]
    fn scaled_doubles_dimensions() {
        let a = SystolicArray::default().scaled(2);
        assert_eq!(a.rows(), 128);
        assert_eq!(a.cols(), 128);
        assert_eq!(SystolicArray::default().to_string(), "64x64 systolic array");
    }

    #[test]
    fn weight_stationary_blocked_k_sums_to_full_k() {
        // Splitting K into full-width blocks costs the same streaming time as
        // one pass per weight tile of the unblocked product.
        let a = SystolicArray::new(64, 64);
        let full = a.weight_stationary_cycles(2708, 128, 16);
        let blocked = 2 * a.weight_stationary_cycles(2708, 64, 16);
        assert_eq!(full, blocked);
    }

    #[test]
    fn weight_stationary_half_width_block_doubles_passes() {
        // The Figure 4 effect: K = 32 on a 64-row array needs as many weight
        // tiles as K = 64, so covering the same total K takes twice the time.
        let a = SystolicArray::new(64, 64);
        let b64 = a.weight_stationary_cycles(1000, 64, 16);
        let b32 = a.weight_stationary_cycles(1000, 32, 16);
        assert_eq!(b64, b32);
        // Per unit of K, B=32 is twice as expensive.
        assert!(
            a.weight_stationary_utilization(1000, 32, 16)
                < a.weight_stationary_utilization(1000, 64, 16)
        );
    }

    #[test]
    fn weight_stationary_zero_work() {
        let a = SystolicArray::default();
        assert_eq!(a.weight_stationary_cycles(0, 64, 64), 0);
        assert_eq!(a.weight_stationary_utilization(0, 64, 64), 0.0);
    }

    #[test]
    fn bigger_array_is_faster_on_large_products() {
        // For products that fill the array, doubling the array helps; for tiny
        // products the extra fill/drain latency can dominate, which is exactly
        // why Figure 4 shows B=32 hurting a 64-wide Dense Engine.
        let small = SystolicArray::new(32, 32);
        let big = SystolicArray::new(64, 64);
        for (m, k, n) in [(2708, 1433, 64), (256, 512, 128), (128, 64, 64)] {
            assert!(
                big.matmul_cycles(m, k, n) <= small.matmul_cycles(m, k, n),
                "({m},{k},{n})"
            );
        }
        // Tiny product: the big array pays more fill/drain.
        assert!(big.matmul_cycles(10, 10, 10) > small.matmul_cycles(10, 10, 10));
    }
}
