//! Cycle-level hardware-modelling substrate for the GNNerator reproduction.
//!
//! The paper's evaluation infrastructure is a cycle-level simulator built on
//! PyMTL3 for the Graph Engine and controller, with SCALE-Sim providing the
//! Dense Engine's systolic-array timing. Neither is available to a Rust
//! workspace, so this crate re-implements the modelling primitives those
//! frameworks provided:
//!
//! * [`ClockDomain`] and the [`Cycle`] type — frequency bookkeeping,
//! * [`BandwidthChannel`] and [`DramModel`] — a shared, serialising
//!   bandwidth-limited memory channel with fixed access latency,
//! * [`Scratchpad`] and [`DoubleBuffer`] — capacity-checked on-chip SRAM
//!   buffers with access counting,
//! * [`SystolicArray`] — a SCALE-Sim-style output-stationary systolic-array
//!   timing model,
//! * [`PipelineTimer`] — the double-buffered two-stage pipeline recurrence
//!   (load of item *i+1* overlaps compute of item *i*) used by every engine,
//! * [`EventQueue`] — a deterministic discrete-event queue,
//! * [`TrafficCounter`] / [`UtilizationTracker`] — statistics plumbing.
//!
//! # Examples
//!
//! ```
//! use gnnerator_sim::{SystolicArray, PipelineTimer};
//!
//! let array = SystolicArray::new(64, 64);
//! let cycles = array.matmul_cycles(128, 1433, 16);
//! assert!(cycles > 0);
//!
//! let mut pipe = PipelineTimer::new();
//! pipe.push(100, 80); // load 100 cycles, compute 80 cycles
//! pipe.push(100, 80);
//! assert!(pipe.total_cycles() < 2 * 180); // overlap saves time
//! ```

#![warn(missing_docs)]

mod bandwidth;
mod clock;
mod double_buffer;
mod dram;
mod error;
mod event;
mod pipeline;
mod sram;
mod stats;
mod systolic;

pub use bandwidth::BandwidthChannel;
pub use clock::{ClockDomain, Cycle};
pub use double_buffer::DoubleBuffer;
pub use dram::{DramConfig, DramModel};
pub use error::SimError;
pub use event::EventQueue;
pub use pipeline::PipelineTimer;
pub use sram::Scratchpad;
pub use stats::{TrafficCounter, UtilizationTracker};
pub use systolic::SystolicArray;
