use crate::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cycle count. All timing in the simulator is expressed in cycles of the
/// accelerator's core clock.
pub type Cycle = u64;

/// A clock domain, defined by its frequency in GHz.
///
/// GNNerator, HyGCN and the GPU baseline all run at different frequencies;
/// the clock domain converts between cycles and wall-clock time so results
/// can be compared across platforms.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::ClockDomain;
///
/// # fn main() -> Result<(), gnnerator_sim::SimError> {
/// let clk = ClockDomain::new(1.0)?; // 1 GHz
/// assert_eq!(clk.cycles_to_seconds(1_000_000_000), 1.0);
/// assert_eq!(clk.seconds_to_cycles(2e-9), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    frequency_ghz: f64,
}

impl ClockDomain {
    /// Creates a clock domain running at `frequency_ghz` GHz.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the frequency is not positive
    /// and finite.
    pub fn new(frequency_ghz: f64) -> Result<Self, SimError> {
        if !(frequency_ghz.is_finite() && frequency_ghz > 0.0) {
            return Err(SimError::invalid(
                "frequency_ghz",
                format!("{frequency_ghz} must be positive and finite"),
            ));
        }
        Ok(Self { frequency_ghz })
    }

    /// The clock frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// The clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_ghz * 1e9
    }

    /// Duration of one cycle in seconds.
    pub fn cycle_time_seconds(&self) -> f64 {
        1.0 / self.frequency_hz()
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.cycle_time_seconds()
    }

    /// Converts a duration in seconds to cycles (rounded up).
    pub fn seconds_to_cycles(&self, seconds: f64) -> Cycle {
        (seconds * self.frequency_hz()).ceil() as Cycle
    }

    /// Number of bytes transferred per cycle by a channel of `gb_per_s` GB/s
    /// when observed from this clock domain.
    pub fn bytes_per_cycle(&self, gb_per_s: f64) -> f64 {
        gb_per_s * 1e9 / self.frequency_hz()
    }
}

impl Default for ClockDomain {
    /// 1 GHz, the nominal accelerator frequency used throughout the paper's
    /// platform configuration.
    fn default() -> Self {
        Self { frequency_ghz: 1.0 }
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.frequency_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_positive_frequency() {
        assert!(ClockDomain::new(0.0).is_err());
        assert!(ClockDomain::new(-1.0).is_err());
        assert!(ClockDomain::new(f64::NAN).is_err());
        assert!(ClockDomain::new(f64::INFINITY).is_err());
    }

    #[test]
    fn cycle_time_at_one_ghz_is_one_ns() {
        let clk = ClockDomain::new(1.0).unwrap();
        assert!((clk.cycle_time_seconds() - 1e-9).abs() < 1e-15);
        assert_eq!(clk.frequency_hz(), 1e9);
    }

    #[test]
    fn conversions_roundtrip() {
        let clk = ClockDomain::new(1.35).unwrap();
        let cycles = 1_000_000;
        let secs = clk.cycles_to_seconds(cycles);
        let back = clk.seconds_to_cycles(secs);
        assert!(back >= cycles && back <= cycles + 1);
    }

    #[test]
    fn bytes_per_cycle_at_one_ghz() {
        let clk = ClockDomain::default();
        // 256 GB/s at 1 GHz = 256 bytes per cycle.
        assert!((clk.bytes_per_cycle(256.0) - 256.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_one_ghz() {
        assert_eq!(ClockDomain::default().frequency_ghz(), 1.0);
        assert_eq!(ClockDomain::default().to_string(), "1.00 GHz");
    }
}
