use crate::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An on-chip scratchpad memory with a fixed byte capacity.
///
/// GNNerator's engines use software-managed scratchpads rather than caches:
/// the Dense Engine has input/weight/output buffers and the Graph Engine has
/// edge and feature scratchpads. The model tracks how many bytes are
/// currently allocated and how many accesses have been made, and rejects
/// allocations that exceed capacity — which is exactly the constraint that
/// determines how many graph nodes fit on-chip and therefore the shard size.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::Scratchpad;
///
/// # fn main() -> Result<(), gnnerator_sim::SimError> {
/// let mut spad = Scratchpad::new("graph-features", 24 * 1024 * 1024)?;
/// assert!(spad.fits(1024));
/// spad.allocate(1024)?;
/// assert_eq!(spad.used_bytes(), 1024);
/// spad.free_all();
/// assert_eq!(spad.used_bytes(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scratchpad {
    name: String,
    capacity_bytes: u64,
    used_bytes: u64,
    reads: u64,
    writes: u64,
}

impl Scratchpad {
    /// Creates a scratchpad with the given capacity in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `capacity_bytes` is zero.
    pub fn new(name: impl Into<String>, capacity_bytes: u64) -> Result<Self, SimError> {
        if capacity_bytes == 0 {
            return Err(SimError::invalid("capacity_bytes", "must be positive"));
        }
        Ok(Self {
            name: name.into(),
            capacity_bytes,
            used_bytes: 0,
            reads: 0,
            writes: 0,
        })
    }

    /// Scratchpad name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// Returns `true` if an allocation of `bytes` would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free_bytes()
    }

    /// Allocates `bytes` from the scratchpad.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CapacityExceeded`] if the allocation does not fit.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), SimError> {
        if !self.fits(bytes) {
            return Err(SimError::CapacityExceeded {
                buffer: self.name.clone(),
                requested: bytes,
                capacity: self.free_bytes(),
            });
        }
        self.used_bytes += bytes;
        Ok(())
    }

    /// Releases all allocations (e.g. when a shard finishes processing).
    pub fn free_all(&mut self) {
        self.used_bytes = 0;
    }

    /// Records `count` read accesses (statistics only).
    pub fn record_reads(&mut self, count: u64) {
        self.reads += count;
    }

    /// Records `count` write accesses (statistics only).
    pub fn record_writes(&mut self, count: u64) {
        self.writes += count;
    }

    /// Number of read accesses recorded.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write accesses recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Current occupancy as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        self.used_bytes as f64 / self.capacity_bytes as f64
    }
}

impl fmt::Display for Scratchpad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} bytes ({:.1}% full)",
            self.name,
            self.used_bytes,
            self.capacity_bytes,
            self.occupancy() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(Scratchpad::new("x", 0).is_err());
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut spad = Scratchpad::new("buf", 100).unwrap();
        assert!(spad.allocate(60).is_ok());
        assert!(spad.allocate(40).is_ok());
        assert!(matches!(
            spad.allocate(1),
            Err(SimError::CapacityExceeded { .. })
        ));
        assert_eq!(spad.used_bytes(), 100);
        assert_eq!(spad.free_bytes(), 0);
        assert!((spad.occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn free_all_releases_everything() {
        let mut spad = Scratchpad::new("buf", 100).unwrap();
        spad.allocate(80).unwrap();
        spad.free_all();
        assert_eq!(spad.used_bytes(), 0);
        assert!(spad.fits(100));
    }

    #[test]
    fn access_counters_accumulate() {
        let mut spad = Scratchpad::new("buf", 10).unwrap();
        spad.record_reads(5);
        spad.record_reads(3);
        spad.record_writes(2);
        assert_eq!(spad.reads(), 8);
        assert_eq!(spad.writes(), 2);
    }

    #[test]
    fn display_shows_occupancy() {
        let mut spad = Scratchpad::new("edges", 200).unwrap();
        spad.allocate(50).unwrap();
        let s = spad.to_string();
        assert!(s.contains("edges"));
        assert!(s.contains("25.0%"));
    }
}
