use crate::{BandwidthChannel, Cycle, SimError, TrafficCounter};
use serde::{Deserialize, Serialize};

/// Configuration of an off-chip DRAM interface.
///
/// Table IV gives GNNerator and HyGCN 256 GB/s of off-chip bandwidth and the
/// RTX 2080 Ti 616 GB/s; `access_latency` models the fixed DRAM access
/// latency added to every request on top of the bandwidth-limited transfer
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Peak bandwidth in gigabytes per second.
    pub bandwidth_gb_s: f64,
    /// Core-clock frequency in GHz used to convert bandwidth to bytes/cycle.
    pub core_frequency_ghz: f64,
    /// Fixed access latency in core cycles charged once per request.
    pub access_latency: Cycle,
}

impl Default for DramConfig {
    /// GNNerator's off-chip memory configuration: 256 GB/s at a 1 GHz core
    /// clock with a 100-cycle access latency.
    fn default() -> Self {
        Self {
            bandwidth_gb_s: 256.0,
            core_frequency_ghz: 1.0,
            access_latency: 100,
        }
    }
}

impl DramConfig {
    /// Bytes transferred per core cycle at peak bandwidth.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_gb_s * 1e9 / (self.core_frequency_ghz * 1e9)
    }
}

/// A bandwidth- and latency-limited DRAM channel with read/write accounting.
///
/// Both engines of GNNerator share the feature-memory DRAM; they contend on
/// the underlying [`BandwidthChannel`]. Reads and writes are tracked
/// separately so reports can break traffic down the way Table I does.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::{DramConfig, DramModel};
///
/// # fn main() -> Result<(), gnnerator_sim::SimError> {
/// let mut dram = DramModel::new(DramConfig::default())?;
/// let done = dram.read(0, 4096);
/// assert!(done >= 100); // at least the access latency
/// assert_eq!(dram.traffic().read_bytes, 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    config: DramConfig,
    channel: BandwidthChannel,
    traffic: TrafficCounter,
}

impl DramModel {
    /// Creates a DRAM model from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the bandwidth or frequency is
    /// not positive and finite.
    pub fn new(config: DramConfig) -> Result<Self, SimError> {
        if !(config.core_frequency_ghz.is_finite() && config.core_frequency_ghz > 0.0) {
            return Err(SimError::invalid(
                "core_frequency_ghz",
                "must be positive and finite",
            ));
        }
        let channel = BandwidthChannel::new("dram", config.bytes_per_cycle())?;
        Ok(Self {
            config,
            channel,
            traffic: TrafficCounter::default(),
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Issues a read of `bytes` no earlier than `earliest_start`; returns the
    /// completion cycle.
    pub fn read(&mut self, earliest_start: Cycle, bytes: u64) -> Cycle {
        self.traffic.record_read(bytes);
        self.transfer(earliest_start, bytes)
    }

    /// Issues a write of `bytes` no earlier than `earliest_start`; returns
    /// the completion cycle.
    pub fn write(&mut self, earliest_start: Cycle, bytes: u64) -> Cycle {
        self.traffic.record_write(bytes);
        self.transfer(earliest_start, bytes)
    }

    fn transfer(&mut self, earliest_start: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return earliest_start;
        }
        self.channel.request(earliest_start, bytes) + self.config.access_latency
    }

    /// Pure latency estimate for moving `bytes` with no contention.
    pub fn isolated_cycles(&self, bytes: u64) -> Cycle {
        if bytes == 0 {
            0
        } else {
            self.channel.transfer_cycles(bytes) + self.config.access_latency
        }
    }

    /// Read/write traffic accumulated so far.
    pub fn traffic(&self) -> &TrafficCounter {
        &self.traffic
    }

    /// Cycle at which the channel next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.channel.busy_until()
    }

    /// Fraction of `elapsed` cycles the channel was transferring data.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.channel.utilization(elapsed)
    }

    /// Resets traffic counters and channel state, keeping the configuration.
    pub fn reset(&mut self) {
        self.channel.reset();
        self.traffic = TrafficCounter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table_iv() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.bandwidth_gb_s, 256.0);
        assert!((cfg.bytes_per_cycle() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_frequency() {
        let cfg = DramConfig {
            core_frequency_ghz: 0.0,
            ..DramConfig::default()
        };
        assert!(DramModel::new(cfg).is_err());
    }

    #[test]
    fn read_includes_latency_and_bandwidth() {
        let mut dram = DramModel::new(DramConfig {
            bandwidth_gb_s: 100.0,
            core_frequency_ghz: 1.0,
            access_latency: 50,
        })
        .unwrap();
        // 1000 bytes at 100 B/cycle = 10 cycles + 50 latency.
        assert_eq!(dram.read(0, 1000), 60);
        assert_eq!(dram.traffic().read_bytes, 1000);
        assert_eq!(dram.traffic().write_bytes, 0);
    }

    #[test]
    fn reads_and_writes_share_the_channel() {
        let mut dram = DramModel::new(DramConfig {
            bandwidth_gb_s: 10.0,
            core_frequency_ghz: 1.0,
            access_latency: 0,
        })
        .unwrap();
        let a = dram.read(0, 100); // 10 cycles
        let b = dram.write(0, 100); // queued behind the read
        assert_eq!(a, 10);
        assert_eq!(b, 20);
        assert_eq!(dram.traffic().total_bytes(), 200);
    }

    #[test]
    fn zero_byte_transfers_are_free() {
        let mut dram = DramModel::new(DramConfig::default()).unwrap();
        assert_eq!(dram.read(42, 0), 42);
        assert_eq!(dram.isolated_cycles(0), 0);
    }

    #[test]
    fn isolated_cycles_ignores_contention() {
        let mut dram = DramModel::new(DramConfig {
            bandwidth_gb_s: 1.0,
            core_frequency_ghz: 1.0,
            access_latency: 5,
        })
        .unwrap();
        dram.read(0, 1_000_000);
        // The channel is now busy, but isolated_cycles does not care.
        assert_eq!(dram.isolated_cycles(10), 15);
    }

    #[test]
    fn reset_clears_traffic() {
        let mut dram = DramModel::new(DramConfig::default()).unwrap();
        dram.read(0, 1024);
        dram.write(0, 512);
        dram.reset();
        assert_eq!(dram.traffic().total_bytes(), 0);
        assert_eq!(dram.busy_until(), 0);
    }
}
