use std::error::Error;
use std::fmt;

/// Error type for hardware-model configuration problems.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::Scratchpad;
///
/// // A zero-capacity scratchpad is a configuration error.
/// assert!(Scratchpad::new("weights", 0).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A hardware parameter was zero, negative or otherwise out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// A buffer allocation request exceeded the scratchpad capacity.
    CapacityExceeded {
        /// Name of the buffer.
        buffer: String,
        /// Requested size in bytes.
        requested: u64,
        /// Capacity in bytes.
        capacity: u64,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid(parameter: &'static str, message: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            parameter,
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for {parameter}: {message}")
            }
            SimError::CapacityExceeded {
                buffer,
                requested,
                capacity,
            } => write!(
                f,
                "buffer {buffer} cannot hold {requested} bytes (capacity {capacity})"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::invalid("rows", "must be positive");
        assert!(e.to_string().contains("rows"));
        let e = SimError::CapacityExceeded {
            buffer: "input".into(),
            requested: 100,
            capacity: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
