use crate::{Cycle, SimError};
use serde::{Deserialize, Serialize};

/// A serialising, bandwidth-limited channel.
///
/// The channel models a shared resource — the feature-memory DRAM interface
/// in GNNerator's case — that transfers `bytes_per_cycle` bytes per cycle and
/// services requests in arrival order. A request issued at cycle `t` for `b`
/// bytes completes at `max(t, busy_until) + ceil(b / bytes_per_cycle)`; the
/// channel remembers its own availability so concurrent requesters (the Dense
/// Engine and the Graph Engine) naturally contend for bandwidth.
///
/// # Examples
///
/// ```
/// use gnnerator_sim::BandwidthChannel;
///
/// # fn main() -> Result<(), gnnerator_sim::SimError> {
/// let mut chan = BandwidthChannel::new("dram", 256.0)?; // 256 B/cycle
/// let done_a = chan.request(0, 2560);   // 10 cycles
/// let done_b = chan.request(0, 2560);   // queued behind A
/// assert_eq!(done_a, 10);
/// assert_eq!(done_b, 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthChannel {
    name: String,
    bytes_per_cycle: f64,
    busy_until: Cycle,
    total_bytes: u64,
    busy_cycles: Cycle,
    requests: u64,
}

impl BandwidthChannel {
    /// Creates a channel delivering `bytes_per_cycle` bytes per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `bytes_per_cycle` is not
    /// positive and finite.
    pub fn new(name: impl Into<String>, bytes_per_cycle: f64) -> Result<Self, SimError> {
        if !(bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0) {
            return Err(SimError::invalid(
                "bytes_per_cycle",
                format!("{bytes_per_cycle} must be positive and finite"),
            ));
        }
        Ok(Self {
            name: name.into(),
            bytes_per_cycle,
            busy_until: 0,
            total_bytes: 0,
            busy_cycles: 0,
            requests: 0,
        })
    }

    /// Channel name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes the channel moves per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Number of cycles needed to move `bytes` in isolation.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.bytes_per_cycle).ceil() as Cycle
    }

    /// Issues a transfer of `bytes` no earlier than `earliest_start`,
    /// returning its completion cycle. The channel serialises requests in
    /// issue order.
    pub fn request(&mut self, earliest_start: Cycle, bytes: u64) -> Cycle {
        let duration = self.transfer_cycles(bytes);
        let start = earliest_start.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.total_bytes += bytes;
        self.busy_cycles += duration;
        self.requests += 1;
        end
    }

    /// The cycle at which the channel next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles the channel has spent transferring data.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Number of requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of `elapsed` cycles the channel was busy, in `[0, 1]`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }

    /// Resets the channel to its initial (idle) state, keeping the bandwidth.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.total_bytes = 0;
        self.busy_cycles = 0;
        self.requests = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_bandwidth() {
        assert!(BandwidthChannel::new("x", 0.0).is_err());
        assert!(BandwidthChannel::new("x", -2.0).is_err());
        assert!(BandwidthChannel::new("x", f64::NAN).is_err());
    }

    #[test]
    fn transfer_time_rounds_up() {
        let chan = BandwidthChannel::new("dram", 100.0).unwrap();
        assert_eq!(chan.transfer_cycles(0), 0);
        assert_eq!(chan.transfer_cycles(1), 1);
        assert_eq!(chan.transfer_cycles(100), 1);
        assert_eq!(chan.transfer_cycles(101), 2);
    }

    #[test]
    fn requests_serialise() {
        let mut chan = BandwidthChannel::new("dram", 10.0).unwrap();
        assert_eq!(chan.request(0, 100), 10);
        assert_eq!(chan.request(0, 100), 20);
        // A later start pushes out completion.
        assert_eq!(chan.request(50, 100), 60);
        assert_eq!(chan.busy_until(), 60);
        assert_eq!(chan.requests(), 3);
        assert_eq!(chan.total_bytes(), 300);
        assert_eq!(chan.busy_cycles(), 30);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut chan = BandwidthChannel::new("dram", 10.0).unwrap();
        chan.request(0, 100);
        assert!((chan.utilization(20) - 0.5).abs() < 1e-9);
        assert_eq!(chan.utilization(0), 0.0);
        assert!(chan.utilization(5) <= 1.0);
    }

    #[test]
    fn zero_byte_request_takes_no_time() {
        let mut chan = BandwidthChannel::new("dram", 10.0).unwrap();
        assert_eq!(chan.request(7, 0), 7);
    }

    #[test]
    fn reset_clears_state() {
        let mut chan = BandwidthChannel::new("dram", 10.0).unwrap();
        chan.request(0, 1000);
        chan.reset();
        assert_eq!(chan.busy_until(), 0);
        assert_eq!(chan.total_bytes(), 0);
        assert_eq!(chan.requests(), 0);
        assert_eq!(chan.bytes_per_cycle(), 10.0);
        assert_eq!(chan.name(), "dram");
    }
}
