//! Dense tensor kernels for the GNNerator reproduction.
//!
//! GNN feature extraction is a sequence of dense matrix products followed by
//! element-wise activations. The accelerator model, the functional reference
//! executor and the baselines all need a small, dependency-free numeric
//! substrate; this crate provides it:
//!
//! * [`Matrix`] — a row-major `f32` matrix with shape-checked constructors,
//! * [`ops`] — matrix products, transposition, concatenation and reductions,
//! * [`Activation`] — the element-wise non-linearities used by the paper's
//!   networks (ReLU for GCN/GraphSAGE, sigmoid for GraphSAGE-Pool's
//!   pooling MLP).
//!
//! # Examples
//!
//! ```
//! use gnnerator_tensor::{Matrix, ops, Activation};
//!
//! # fn main() -> Result<(), gnnerator_tensor::TensorError> {
//! let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
//! let w = Matrix::identity(2);
//! let y = ops::matmul(&x, &w)?;
//! let y = Activation::Relu.apply(&y);
//! assert_eq!(y.get(1, 1), 4.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod activation;
mod error;
mod matrix;
pub mod ops;

pub use activation::Activation;
pub use error::TensorError;
pub use matrix::Matrix;
