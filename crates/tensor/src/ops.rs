//! Matrix operations used by the GNN reference executor and the functional
//! accelerator model.
//!
//! All operations validate operand shapes and return [`TensorError`] on
//! mismatch; none of them panic on well-formed matrices.

use crate::{Matrix, TensorError};

/// Computes the matrix product `a * b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::{Matrix, ops};
/// # fn main() -> Result<(), gnnerator_tensor::TensorError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::from_rows(&[vec![5.0], vec![6.0]])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[17.0, 39.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (k, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for (j, &b_kj) in b_row.iter().enumerate() {
                out_row[j] += a_ik * b_kj;
            }
        }
    }
    Ok(out)
}

/// Computes `a * b + c`, reusing `c` as the accumulator (partial sums).
///
/// This mirrors the Dense Engine's partial-sum reload path: when the
/// feature-blocking dataflow splits a feature extraction across blocks, the
/// partial output of earlier blocks is reloaded and accumulated into.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes are not conformant.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::{Matrix, ops};
/// # fn main() -> Result<(), gnnerator_tensor::TensorError> {
/// let a = Matrix::identity(2);
/// let b = Matrix::filled(2, 2, 1.0);
/// let c = Matrix::filled(2, 2, 10.0);
/// let out = ops::matmul_accumulate(&a, &b, c)?;
/// assert_eq!(out.get(0, 0), 11.0);
/// # Ok(())
/// # }
/// ```
pub fn matmul_accumulate(a: &Matrix, b: &Matrix, c: Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_accumulate",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_accumulate",
            lhs: (a.rows(), b.cols()),
            rhs: c.shape(),
        });
    }
    let partial = matmul(a, b)?;
    add(&partial, &c)
}

/// Element-wise sum of two matrices.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes disagree.
pub fn add(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = a.clone();
    for r in 0..out.rows() {
        let b_row = b.row(r);
        for (v, &bv) in out.row_mut(r).iter_mut().zip(b_row) {
            *v += bv;
        }
    }
    Ok(out)
}

/// Element-wise maximum of two matrices.
///
/// This is the reduction performed by GraphSAGE-Pool's max aggregator.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes disagree.
pub fn elementwise_max(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "elementwise_max",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = a.clone();
    for r in 0..out.rows() {
        let b_row = b.row(r);
        for (v, &bv) in out.row_mut(r).iter_mut().zip(b_row) {
            *v = v.max(bv);
        }
    }
    Ok(out)
}

/// Multiplies every element of `a` by `factor`.
pub fn scale(a: &Matrix, factor: f32) -> Matrix {
    let mut out = a.clone();
    for r in 0..out.rows() {
        for v in out.row_mut(r) {
            *v *= factor;
        }
    }
    out
}

/// Returns the transpose of `a`.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::{Matrix, ops};
/// let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// let t = ops::transpose(&a);
/// assert_eq!(t.shape(), (3, 2));
/// assert_eq!(t.get(2, 1), a.get(1, 2));
/// ```
pub fn transpose(a: &Matrix) -> Matrix {
    Matrix::from_fn(a.cols(), a.rows(), |r, c| a.get(c, r))
}

/// Horizontally concatenates two matrices (`[a | b]`).
///
/// GraphSAGE concatenates the aggregated neighbourhood feature with the
/// node's own feature before the linear layer (`W · (z̄ ∪ h)` in Eq. 1).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the row counts disagree.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::{Matrix, ops};
/// # fn main() -> Result<(), gnnerator_tensor::TensorError> {
/// let a = Matrix::filled(2, 1, 1.0);
/// let b = Matrix::filled(2, 2, 2.0);
/// let c = ops::concat_cols(&a, &b)?;
/// assert_eq!(c.shape(), (2, 3));
/// assert_eq!(c.get(0, 0), 1.0);
/// assert_eq!(c.get(0, 2), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn concat_cols(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "concat_cols",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Matrix::zeros(a.rows(), a.cols() + b.cols());
    for r in 0..a.rows() {
        out.row_mut(r)[..a.cols()].copy_from_slice(a.row(r));
        out.row_mut(r)[a.cols()..].copy_from_slice(b.row(r));
    }
    Ok(out)
}

/// Mean of the selected rows of `a`, returned as a `1 x cols` matrix.
///
/// This is the mean aggregator of GraphSAGE / GCN applied to one node's
/// neighbourhood. An empty selection returns a zero row, matching the
/// convention that isolated nodes aggregate to zero.
pub fn mean_rows(a: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    if indices.is_empty() {
        return out;
    }
    for &idx in indices {
        for (o, &v) in out.row_mut(0).iter_mut().zip(a.row(idx)) {
            *o += v;
        }
    }
    let inv = 1.0 / indices.len() as f32;
    for o in out.row_mut(0) {
        *o *= inv;
    }
    out
}

/// Element-wise maximum over the selected rows of `a`, as a `1 x cols` matrix.
///
/// An empty selection returns a zero row.
pub fn max_rows(a: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    if indices.is_empty() {
        return out;
    }
    out.row_mut(0).copy_from_slice(a.row(indices[0]));
    for &idx in &indices[1..] {
        for (o, &v) in out.row_mut(0).iter_mut().zip(a.row(idx)) {
            *o = o.max(v);
        }
    }
    out
}

/// Sum of the selected rows of `a`, returned as a `1 x cols` matrix.
pub fn sum_rows(a: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for &idx in indices {
        for (o, &v) in out.row_mut(0).iter_mut().zip(a.row(idx)) {
            *o += v;
        }
    }
    out
}

/// Frobenius norm of `a` (square root of the sum of squared elements).
pub fn frobenius_norm(a: &Matrix) -> f32 {
    a.iter().map(|&v| v * v).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        (a, b)
    }

    #[test]
    fn matmul_2x2() {
        let (a, b) = small();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let (a, _) = small();
        let id = Matrix::identity(2);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dim() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r * c) as f32);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        // Manual check of entry (1, 1): sum_k a[1][k] * b[k][1]
        let expected: f32 = (0..4).map(|k| (1 + k) as f32 * k as f32).sum();
        assert_eq!(c.get(1, 1), expected);
    }

    #[test]
    fn matmul_accumulate_adds_partials() {
        let (a, b) = small();
        let c = Matrix::filled(2, 2, 1.0);
        let out = matmul_accumulate(&a, &b, c).unwrap();
        assert_eq!(out.as_slice(), &[20.0, 23.0, 44.0, 51.0]);
    }

    #[test]
    fn matmul_accumulate_rejects_bad_accumulator_shape() {
        let (a, b) = small();
        let c = Matrix::zeros(3, 2);
        assert!(matmul_accumulate(&a, &b, c).is_err());
    }

    #[test]
    fn blocked_matmul_equals_full_matmul() {
        // Splitting the inner dimension into blocks and accumulating partial
        // sums must give the same answer as one full product. This is the
        // numerical core of the feature-blocking dataflow.
        let a = Matrix::from_fn(5, 8, |r, c| ((r * 13 + c * 7) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(8, 3, |r, c| ((r * 3 + c) % 7) as f32 - 3.0);
        let full = matmul(&a, &b).unwrap();

        let mut acc = Matrix::zeros(5, 3);
        for block_start in (0..8).step_by(2) {
            let a_block = a.slice_cols(block_start, block_start + 2);
            let b_block = Matrix::from_fn(2, 3, |r, c| b.get(block_start + r, c));
            acc = matmul_accumulate(&a_block, &b_block, acc).unwrap();
        }
        assert!(full.approx_eq(&acc, 1e-4));
    }

    #[test]
    fn add_and_scale() {
        let (a, b) = small();
        let s = add(&a, &b).unwrap();
        assert_eq!(s.as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        let d = scale(&a, 2.0);
        assert_eq!(d.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn elementwise_max_picks_larger() {
        let (a, b) = small();
        let m = elementwise_max(&a, &b).unwrap();
        assert_eq!(m, b);
        let m2 = elementwise_max(&b, &a).unwrap();
        assert_eq!(m2, b);
    }

    #[test]
    fn elementwise_max_rejects_shape_mismatch() {
        assert!(elementwise_max(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn concat_cols_shapes() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let c = concat_cols(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 5));
        assert_eq!(c.get(1, 1), 1.0);
        assert_eq!(c.get(1, 4), 2.0);
    }

    #[test]
    fn concat_cols_rejects_row_mismatch() {
        assert!(concat_cols(&Matrix::zeros(2, 2), &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn mean_rows_of_neighbourhood() {
        let feats = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let mean = mean_rows(&feats, &[0, 2]);
        assert_eq!(mean.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn mean_rows_empty_selection_is_zero() {
        let feats = Matrix::filled(3, 2, 1.0);
        assert_eq!(mean_rows(&feats, &[]).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn max_rows_of_neighbourhood() {
        let feats = Matrix::from_rows(&[vec![1.0, 6.0], vec![3.0, 4.0], vec![5.0, 2.0]]).unwrap();
        let max = max_rows(&feats, &[0, 1, 2]);
        assert_eq!(max.as_slice(), &[5.0, 6.0]);
    }

    #[test]
    fn max_rows_empty_selection_is_zero() {
        let feats = Matrix::filled(3, 2, -1.0);
        assert_eq!(max_rows(&feats, &[]).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sum_rows_accumulates() {
        let feats = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert_eq!(sum_rows(&feats, &[0, 1, 2]).get(0, 0), 6.0);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((frobenius_norm(&a) - 5.0).abs() < 1e-6);
    }
}
