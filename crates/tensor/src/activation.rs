use crate::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Element-wise non-linearity applied by the Dense Engine's activation unit.
///
/// The paper's Dense Engine feeds the systolic-array output through a
/// one-dimensional activation unit before the result is written to the output
/// buffer (Section III-A). The networks in Table III use ReLU; the
/// GraphSAGE-Pool pooling MLP uses a sigmoid in the original GraphSAGE
/// formulation.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::Activation;
///
/// assert_eq!(Activation::Relu.apply_scalar(-2.0), 0.0);
/// assert_eq!(Activation::Identity.apply_scalar(-2.0), -2.0);
/// assert!(Activation::Sigmoid.apply_scalar(0.0) - 0.5 < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// No non-linearity; the value passes through unchanged.
    #[default]
    Identity,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Logistic sigmoid: `1 / (1 + exp(-x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Applies the activation element-wise, returning a new matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::{Activation, Matrix};
    /// let m = Matrix::from_fn(1, 3, |_, c| c as f32 - 1.0);
    /// let r = Activation::Relu.apply(&m);
    /// assert_eq!(r.as_slice(), &[0.0, 0.0, 1.0]);
    /// ```
    pub fn apply(self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        self.apply_in_place(&mut out);
        out
    }

    /// Applies the activation element-wise in place.
    pub fn apply_in_place(self, input: &mut Matrix) {
        if self == Activation::Identity {
            return;
        }
        for r in 0..input.rows() {
            for v in input.row_mut(r) {
                *v = self.apply_scalar(*v);
            }
        }
    }

    /// Returns `true` if applying this activation is a no-op.
    pub fn is_identity(self) -> bool {
        self == Activation::Identity
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply_scalar(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.5), 2.5);
        assert_eq!(Activation::Relu.apply_scalar(0.0), 0.0);
    }

    #[test]
    fn sigmoid_is_bounded() {
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let y = Activation::Sigmoid.apply_scalar(x);
            assert!((0.0..=1.0).contains(&y), "sigmoid({x}) = {y} out of range");
        }
        assert!((Activation::Sigmoid.apply_scalar(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let y = Activation::Tanh.apply_scalar(0.7);
        let z = Activation::Tanh.apply_scalar(-0.7);
        assert!((y + z).abs() < 1e-6);
    }

    #[test]
    fn identity_returns_input_unchanged() {
        let m = Matrix::from_fn(2, 2, |r, c| (r as f32) - (c as f32));
        assert_eq!(Activation::Identity.apply(&m), m);
        assert!(Activation::Identity.is_identity());
        assert!(!Activation::Relu.is_identity());
    }

    #[test]
    fn apply_matches_apply_scalar() {
        let m = Matrix::from_fn(3, 3, |r, c| (r as f32) - (c as f32));
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            let out = act.apply(&m);
            for r in 0..3 {
                for c in 0..3 {
                    assert_eq!(out.get(r, c), act.apply_scalar(m.get(r, c)));
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Identity.to_string(), "identity");
        assert_eq!(Activation::Sigmoid.to_string(), "sigmoid");
        assert_eq!(Activation::Tanh.to_string(), "tanh");
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
    }
}
