use std::error::Error;
use std::fmt;

/// Error type for shape and argument validation in tensor operations.
///
/// All fallible operations in this crate return `Result<_, TensorError>` so
/// that shape mismatches surface as recoverable errors rather than panics.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::{Matrix, ops};
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(2, 3);
/// // 2x3 * 2x3 is not a valid product: inner dimensions disagree.
/// assert!(ops::matmul(&a, &b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The raw buffer handed to a constructor does not match `rows * cols`.
    InvalidBufferLength {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A constructor was given rows of differing lengths.
    RaggedRows {
        /// Length of the first row, which sets the expectation.
        expected: usize,
        /// Index of the first offending row.
        row: usize,
        /// Length of the offending row.
        actual: usize,
    },
    /// An index was outside the bounds of the matrix.
    IndexOutOfBounds {
        /// Requested `(row, col)` position.
        index: (usize, usize),
        /// Shape of the matrix as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// The operation requires a non-empty matrix but an empty one was given.
    EmptyInput {
        /// Human readable name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidBufferLength { expected, actual } => write!(
                f,
                "buffer length {actual} does not match rows * cols = {expected}"
            ),
            TensorError::RaggedRows {
                expected,
                row,
                actual,
            } => write!(
                f,
                "row {row} has {actual} elements but the first row has {expected}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::EmptyInput { op } => {
                write!(f, "operation {op} requires a non-empty matrix")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_invalid_buffer() {
        let err = TensorError::InvalidBufferLength {
            expected: 6,
            actual: 5,
        };
        assert!(err.to_string().contains('6'));
        assert!(err.to_string().contains('5'));
    }

    #[test]
    fn display_ragged_rows() {
        let err = TensorError::RaggedRows {
            expected: 3,
            row: 2,
            actual: 4,
        };
        assert!(err.to_string().contains("row 2"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = TensorError::IndexOutOfBounds {
            index: (7, 8),
            shape: (2, 2),
        };
        assert!(err.to_string().contains("(7, 8)"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
