use crate::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// This is the only tensor type needed by the reproduction: node feature
/// tables are `(num_nodes, feature_dim)` matrices and layer weights are
/// `(in_dim, out_dim)` matrices. The type is deliberately simple — no views,
/// no strides — because the simulator only needs functional correctness for
/// cross-checking, not numerical performance.
///
/// # Examples
///
/// ```
/// use gnnerator_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.get(1, 2), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let z = Matrix::zeros(3, 4);
    /// assert_eq!(z.shape(), (3, 4));
    /// assert!(z.iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let m = Matrix::filled(2, 2, 1.5);
    /// assert_eq!(m.get(1, 1), 1.5);
    /// ```
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let id = Matrix::identity(3);
    /// assert_eq!(id.get(2, 2), 1.0);
    /// assert_eq!(id.get(0, 2), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix whose entry `(r, c)` is `f(r, c)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
    /// assert_eq!(m, Matrix::identity(2));
    /// ```
    pub fn from_fn<F>(rows: usize, cols: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize) -> f32,
    {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidBufferLength`] if `data.len()` is not
    /// `rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// # fn main() -> Result<(), gnnerator_tensor::TensorError> {
    /// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
    /// assert_eq!(m.get(1, 0), 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidBufferLength {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RaggedRows`] if the rows do not all have the
    /// same length, and [`TensorError::EmptyInput`] if `rows` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// # fn main() -> Result<(), gnnerator_tensor::TensorError> {
    /// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
    /// assert_eq!(m.shape(), (2, 2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, TensorError> {
        let first = rows
            .first()
            .ok_or(TensorError::EmptyInput { op: "from_rows" })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(TensorError::RaggedRows {
                    expected: cols,
                    row: i,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds. Use [`Matrix::try_get`] for
    /// a non-panicking variant.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col]
    }

    /// Returns the element at `(row, col)`, or an error if out of bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the position lies
    /// outside the matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let m = Matrix::zeros(2, 2);
    /// assert!(m.try_get(5, 0).is_err());
    /// ```
    pub fn try_get(&self, row: usize, col: usize) -> Result<f32, TensorError> {
        if row >= self.rows || col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        Ok(self.data[row * self.cols + col])
    }

    /// Sets the element at `(row, col)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[row * self.cols + col] = value;
    }

    /// Returns the `row`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(
            row < self.rows,
            "row {row} out of bounds ({} rows)",
            self.rows
        );
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the `row`-th row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(
            row < self.rows,
            "row {row} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Returns the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a new matrix containing the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `indices` is out of bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let m = Matrix::from_fn(4, 2, |r, _| r as f32);
    /// let sub = m.select_rows(&[3, 1]);
    /// assert_eq!(sub.get(0, 0), 3.0);
    /// assert_eq!(sub.get(1, 0), 1.0);
    /// ```
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Returns a new matrix containing columns `[start, end)` of `self`.
    ///
    /// This models the feature-dimension-blocking dataflow: a block of `B`
    /// feature dimensions is a column slice of the feature table.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_tensor::Matrix;
    /// let m = Matrix::from_fn(2, 4, |_, c| c as f32);
    /// let block = m.slice_cols(1, 3);
    /// assert_eq!(block.shape(), (2, 2));
    /// assert_eq!(block.get(0, 0), 1.0);
    /// ```
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "invalid column range {start}..{end}"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Writes `block` into columns `[start, start + block.cols())` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit at the requested offset or the row
    /// counts disagree.
    pub fn write_cols(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows, "row count mismatch in write_cols");
        assert!(
            start + block.cols <= self.cols,
            "column block {}..{} does not fit in {} columns",
            start,
            start + block.cols,
            self.cols
        );
        for r in 0..self.rows {
            self.row_mut(r)[start..start + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Maximum absolute difference between `self` and `other`.
    ///
    /// Used by tests to compare the functional simulator against the
    /// reference executor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes disagree.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max))
    }

    /// Approximate equality within an absolute tolerance.
    ///
    /// Returns `false` if the shapes differ.
    pub fn approx_eq(&self, other: &Matrix, tolerance: f32) -> bool {
        match self.max_abs_diff(other) {
            Ok(diff) => diff <= tolerance,
            Err(_) => false,
        }
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        let max_cols = 8.min(self.cols);
        for r in 0..max_rows {
            for c in 0..max_cols {
                write!(f, "{:>10.4}", self.get(r, c))?;
            }
            if max_cols < self.cols {
                write!(f, " ...")?;
            }
            writeln!(f)?;
        }
        if max_rows < self.rows {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Matrix {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_values() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn filled_sets_every_element() {
        let m = Matrix::filled(2, 2, 3.25);
        assert!(m.iter().all(|&v| v == 3.25));
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(id.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::InvalidBufferLength {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            Matrix::from_rows(&rows),
            Err(TensorError::RaggedRows { row: 1, .. })
        ));
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        let rows: Vec<Vec<f32>> = vec![];
        assert!(matches!(
            Matrix::from_rows(&rows),
            Err(TensorError::EmptyInput { .. })
        ));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(3, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(2, 1), 0.0);
    }

    #[test]
    fn try_get_out_of_bounds() {
        let m = Matrix::zeros(2, 2);
        assert!(m.try_get(0, 5).is_err());
        assert!(m.try_get(5, 0).is_err());
        assert_eq!(m.try_get(1, 1).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_fn(4, 1, |r, _| r as f32);
        let sel = m.select_rows(&[2, 0, 3]);
        assert_eq!(sel.as_slice(), &[2.0, 0.0, 3.0]);
    }

    #[test]
    fn slice_and_write_cols_roundtrip() {
        let m = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f32);
        let block = m.slice_cols(2, 5);
        assert_eq!(block.shape(), (3, 3));
        let mut out = Matrix::zeros(3, 6);
        out.write_cols(2, &block);
        assert_eq!(out.get(1, 3), m.get(1, 3));
        assert_eq!(out.get(1, 0), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.5);
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        assert!(!a.approx_eq(&b, 0.1));
        assert!(a.approx_eq(&b, 0.6));
    }

    #[test]
    fn max_abs_diff_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_err());
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn display_is_not_empty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn default_is_empty() {
        let m = Matrix::default();
        assert!(m.is_empty());
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn into_vec_preserves_row_major_order() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.into_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }
}
