//! Property-based tests for the tensor crate.

use gnnerator_tensor::{ops, Activation, Matrix};
use proptest::prelude::*;

/// Strategy producing a matrix of the given shape with small values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0_f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized buffer"))
}

/// Strategy for a small shape (1..=8 in each dimension).
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1_usize..=8, 1_usize..=8)
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right((r, c) in shape(), seed in 0u64..1000) {
        let m = deterministic_matrix(r, c, seed);
        let left = ops::matmul(&Matrix::identity(r), &m).unwrap();
        let right = ops::matmul(&m, &Matrix::identity(c)).unwrap();
        prop_assert!(left.approx_eq(&m, 1e-5));
        prop_assert!(right.approx_eq(&m, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let a = deterministic_matrix(4, 5, seed);
        let b = deterministic_matrix(5, 3, seed.wrapping_add(1));
        let c = deterministic_matrix(5, 3, seed.wrapping_add(2));
        let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(
            &ops::matmul(&a, &b).unwrap(),
            &ops::matmul(&a, &c).unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_is_involutive((r, c) in shape(), seed in 0u64..1000) {
        let m = deterministic_matrix(r, c, seed);
        prop_assert_eq!(ops::transpose(&ops::transpose(&m)), m);
    }

    #[test]
    fn transpose_swaps_matmul_order(seed in 0u64..500) {
        let a = deterministic_matrix(3, 4, seed);
        let b = deterministic_matrix(4, 2, seed.wrapping_add(7));
        let lhs = ops::transpose(&ops::matmul(&a, &b).unwrap());
        let rhs = ops::matmul(&ops::transpose(&b), &ops::transpose(&a)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn relu_is_idempotent(m in matrix(4, 4)) {
        let once = Activation::Relu.apply(&m);
        let twice = Activation::Relu.apply(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn relu_output_is_nonnegative(m in matrix(5, 3)) {
        let out = Activation::Relu.apply(&m);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sigmoid_output_in_unit_interval(m in matrix(3, 6)) {
        let out = Activation::Sigmoid.apply(&m);
        prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn elementwise_max_is_commutative_and_idempotent(seed in 0u64..1000) {
        let a = deterministic_matrix(4, 4, seed);
        let b = deterministic_matrix(4, 4, seed.wrapping_add(3));
        let ab = ops::elementwise_max(&a, &b).unwrap();
        let ba = ops::elementwise_max(&b, &a).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ops::elementwise_max(&ab, &ab).unwrap(), ab);
    }

    #[test]
    fn concat_then_slice_recovers_operands(seed in 0u64..1000) {
        let a = deterministic_matrix(3, 2, seed);
        let b = deterministic_matrix(3, 4, seed.wrapping_add(11));
        let cat = ops::concat_cols(&a, &b).unwrap();
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 6), b);
    }

    #[test]
    fn mean_rows_is_bounded_by_min_and_max(seed in 0u64..1000) {
        let feats = deterministic_matrix(6, 3, seed);
        let idx = [0_usize, 2, 4];
        let mean = ops::mean_rows(&feats, &idx);
        for c in 0..3 {
            let vals: Vec<f32> = idx.iter().map(|&i| feats.get(i, c)).collect();
            let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(mean.get(0, c) >= lo - 1e-5 && mean.get(0, c) <= hi + 1e-5);
        }
    }

    #[test]
    fn blocked_matmul_matches_full(seed in 0u64..200, block in 1usize..=4) {
        // Core invariant behind feature-dimension blocking: accumulating
        // block-wise partial products equals the unblocked product.
        let k = 8usize;
        let a = deterministic_matrix(5, k, seed);
        let b = deterministic_matrix(k, 3, seed.wrapping_add(17));
        let full = ops::matmul(&a, &b).unwrap();
        let mut acc = Matrix::zeros(5, 3);
        let mut start = 0;
        while start < k {
            let end = (start + block).min(k);
            let a_blk = a.slice_cols(start, end);
            let b_blk = Matrix::from_fn(end - start, 3, |r, c| b.get(start + r, c));
            acc = ops::matmul_accumulate(&a_blk, &b_blk, acc).unwrap();
            start = end;
        }
        prop_assert!(full.approx_eq(&acc, 1e-3));
    }
}

/// Builds a deterministic pseudo-random matrix from a seed without depending
/// on the `rand` crate in this test target.
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let mut x = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((r * 31 + c * 7 + 1) as u64);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        ((x % 2000) as f32) / 100.0 - 10.0
    })
}
