//! Deterministic fault injection and poison-proof locking primitives.
//!
//! The stack is only trustworthy under failure if failure can be produced on
//! demand, reproducibly. This crate provides:
//!
//! * a process-wide [`FailPoint`] registry, configured from a compact spec
//!   string (env var `GNNERATOR_FAULTS`, e.g.
//!   `cache_write:io@0.1,eval:panic@3,session_build:delay=200ms`) or
//!   programmatically via [`configure`] / [`clear`]. Call sites name a
//!   failpoint with [`check`]; when armed it injects a typed error, a panic,
//!   or a delay. Triggering is **seeded-deterministic**: every failpoint
//!   keeps an atomic hit counter and decides from
//!   `hash(seed, name, hit_number)` alone, so the set of tripped hits is
//!   identical run-to-run regardless of thread schedule;
//! * poison-recovering lock helpers ([`lock_recover`], [`wait_recover`],
//!   [`wait_timeout_recover`]) so a panic on one thread (injected or real)
//!   can never wedge every other thread behind a poisoned mutex.
//!
//! The disabled fast path is a single relaxed atomic load — leaving the
//! failpoints compiled in costs nothing measurable in production builds.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Environment variable holding the failpoint spec string.
pub const FAULTS_ENV_VAR: &str = "GNNERATOR_FAULTS";

/// Environment variable holding the deterministic trigger seed.
pub const FAULTS_SEED_ENV_VAR: &str = "GNNERATOR_FAULTS_SEED";

/// What an armed failpoint does when it trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Surface an injected I/O-shaped error (`Err` at the call site).
    Io,
    /// Surface an injected logical error (`Err` at the call site).
    Error,
    /// Panic on the calling thread.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
}

/// When an armed failpoint trips, relative to its per-point hit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Trip on every hit.
    Always,
    /// Trip whenever `hash(seed, name, hit_number)` falls below this
    /// fraction — a deterministic stand-in for "with probability p".
    Probability(f64),
    /// Trip on every `n`-th hit (hits `n`, `2n`, `3n`, …).
    EveryNth(u64),
}

/// One named fault-injection point.
#[derive(Debug, Clone, PartialEq)]
pub struct FailPoint {
    /// The call-site name (`cache_write`, `eval`, `session_build`, …).
    pub name: String,
    /// What happens when the point trips.
    pub kind: FaultKind,
    /// When the point trips.
    pub trigger: Trigger,
}

/// The error injected by an [`FaultKind::Io`] / [`FaultKind::Error`] trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Name of the failpoint that tripped.
    pub point: String,
    /// Whether the fault was declared `io` (call sites may wrap it in their
    /// native I/O error type) or a plain logical `error`.
    pub io: bool,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.point)
    }
}

impl std::error::Error for FaultError {}

/// Hit/trip counters for one failpoint, as reported by [`stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPointStats {
    /// Failpoint name.
    pub name: String,
    /// Times a call site evaluated the point.
    pub hits: u64,
    /// Times the point actually tripped.
    pub trips: u64,
}

struct PointState {
    point: FailPoint,
    hits: AtomicU64,
    trips: AtomicU64,
}

struct Registry {
    seed: u64,
    points: HashMap<String, PointState>,
}

/// Fast-path flag: true iff the registry holds at least one failpoint.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Registry>> {
    static REGISTRY: OnceLock<Mutex<Option<Registry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// FNV-1a 64-bit over the trigger identity `(seed, name, hit_number)`.
fn trigger_hash(seed: u64, name: &str, hit: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    seed.to_le_bytes().into_iter().for_each(&mut mix);
    name.bytes().for_each(&mut mix);
    hit.to_le_bytes().into_iter().for_each(&mut mix);
    hash
}

/// Parses a duration literal: `200ms`, `2s`, or a bare millisecond count.
fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, unit) = match text.strip_suffix("ms") {
        Some(d) => (d, 1u64),
        None => match text.strip_suffix('s') {
            Some(d) => (d, 1000),
            None => (text, 1),
        },
    };
    digits
        .parse::<u64>()
        .map(|n| Duration::from_millis(n * unit))
        .map_err(|_| format!("bad duration {text:?} (want e.g. 200ms or 2s)"))
}

/// Parses one `name:kind[@trigger]` item.
fn parse_point(item: &str) -> Result<FailPoint, String> {
    let (name, rest) = item
        .split_once(':')
        .ok_or_else(|| format!("bad failpoint {item:?} (want name:kind[@trigger])"))?;
    if name.is_empty() {
        return Err(format!("bad failpoint {item:?}: empty name"));
    }
    let (kind_text, trigger_text) = match rest.split_once('@') {
        Some((k, t)) => (k, Some(t)),
        None => (rest, None),
    };
    let kind = match kind_text {
        "io" => FaultKind::Io,
        "error" | "err" => FaultKind::Error,
        "panic" => FaultKind::Panic,
        _ => match kind_text.strip_prefix("delay=") {
            Some(duration) => FaultKind::Delay(parse_duration(duration)?),
            None => {
                return Err(format!(
                    "bad fault kind {kind_text:?} (want io, error, panic or delay=<duration>)"
                ))
            }
        },
    };
    let trigger = match trigger_text {
        None => Trigger::Always,
        Some(t) => {
            if let Ok(n) = t.parse::<u64>() {
                if n == 0 {
                    return Err(format!("bad trigger {t:?}: every-nth must be >= 1"));
                }
                Trigger::EveryNth(n)
            } else if let Ok(p) = t.parse::<f64>() {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("bad trigger {t:?}: probability must be in [0, 1]"));
                }
                Trigger::Probability(p)
            } else {
                return Err(format!(
                    "bad trigger {t:?} (want a probability like 0.1 or a count like 3)"
                ));
            }
        }
    };
    Ok(FailPoint {
        name: name.to_string(),
        kind,
        trigger,
    })
}

/// Parses a full comma-separated failpoint spec string.
///
/// # Errors
///
/// Returns a human-readable message naming the malformed item.
pub fn parse_spec(spec: &str) -> Result<Vec<FailPoint>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|item| !item.is_empty())
        .map(parse_point)
        .collect()
}

/// Installs `points` as the process-wide fault configuration (replacing any
/// previous configuration) with the given deterministic trigger seed.
pub fn configure_points(points: Vec<FailPoint>, seed: u64) {
    let map = points
        .into_iter()
        .map(|point| {
            (
                point.name.clone(),
                PointState {
                    point,
                    hits: AtomicU64::new(0),
                    trips: AtomicU64::new(0),
                },
            )
        })
        .collect::<HashMap<_, _>>();
    let mut guard = lock_recover(registry());
    ACTIVE.store(!map.is_empty(), Ordering::Release);
    *guard = Some(Registry { seed, points: map });
}

/// Parses `spec` and installs it as the process-wide fault configuration.
///
/// # Errors
///
/// Returns the parse error without touching the current configuration.
pub fn configure(spec: &str, seed: u64) -> Result<(), String> {
    let points = parse_spec(spec)?;
    configure_points(points, seed);
    Ok(())
}

/// Removes every failpoint; subsequent [`check`] calls are no-ops.
pub fn clear() {
    let mut guard = lock_recover(registry());
    ACTIVE.store(false, Ordering::Release);
    *guard = None;
}

/// Configures the registry from `GNNERATOR_FAULTS` /
/// `GNNERATOR_FAULTS_SEED`, returning whether any failpoints were armed.
///
/// # Errors
///
/// Returns a parse error for a malformed spec or seed.
pub fn init_from_env() -> Result<bool, String> {
    let Ok(spec) = std::env::var(FAULTS_ENV_VAR) else {
        return Ok(false);
    };
    if spec.trim().is_empty() {
        return Ok(false);
    }
    let seed = match std::env::var(FAULTS_SEED_ENV_VAR) {
        Ok(raw) => raw
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("bad {FAULTS_SEED_ENV_VAR} {raw:?} (want a u64)"))?,
        Err(_) => 0,
    };
    configure(&spec, seed)?;
    Ok(active())
}

/// Whether any failpoint is currently armed (single relaxed atomic load).
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Evaluates failpoint `name`.
///
/// When the registry is empty (the normal case) this is a single atomic
/// load. When `name` is armed and trips, the configured fault happens here:
/// a [`FaultKind::Delay`] sleeps then returns `Ok`, a [`FaultKind::Panic`]
/// panics on this thread, and [`FaultKind::Io`] / [`FaultKind::Error`]
/// return the injected error for the call site to surface through its own
/// error type.
///
/// # Errors
///
/// Returns [`FaultError`] iff an armed `io`/`error` fault trips.
///
/// # Panics
///
/// Panics iff an armed `panic` fault trips (that is its job).
pub fn check(name: &str) -> Result<(), FaultError> {
    if !active() {
        return Ok(());
    }
    let action = {
        let guard = lock_recover(registry());
        let Some(registry) = guard.as_ref() else {
            return Ok(());
        };
        let Some(state) = registry.points.get(name) else {
            return Ok(());
        };
        let hit = state.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let tripped = match state.point.trigger {
            Trigger::Always => true,
            Trigger::EveryNth(n) => hit % n == 0,
            Trigger::Probability(p) => {
                (trigger_hash(registry.seed, name, hit) as f64) < p * (u64::MAX as f64)
            }
        };
        if !tripped {
            return Ok(());
        }
        state.trips.fetch_add(1, Ordering::Relaxed);
        state.point.kind
    };
    match action {
        FaultKind::Delay(duration) => {
            std::thread::sleep(duration);
            Ok(())
        }
        FaultKind::Panic => panic!("injected panic at failpoint `{name}`"),
        FaultKind::Io => Err(FaultError {
            point: name.to_string(),
            io: true,
        }),
        FaultKind::Error => Err(FaultError {
            point: name.to_string(),
            io: false,
        }),
    }
}

/// Hit/trip counters for every configured failpoint, sorted by name.
pub fn stats() -> Vec<FaultPointStats> {
    let guard = lock_recover(registry());
    let Some(registry) = guard.as_ref() else {
        return Vec::new();
    };
    let mut rows: Vec<FaultPointStats> = registry
        .points
        .values()
        .map(|state| FaultPointStats {
            name: state.point.name.clone(),
            hits: state.hits.load(Ordering::Relaxed),
            trips: state.trips.load(Ordering::Relaxed),
        })
        .collect();
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Io => f.write_str("io"),
            FaultKind::Error => f.write_str("error"),
            FaultKind::Panic => f.write_str("panic"),
            FaultKind::Delay(d) => write!(f, "delay={}ms", d.as_millis()),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Always => Ok(()),
            Trigger::Probability(p) => write!(f, "@{p}"),
            Trigger::EveryNth(n) => write!(f, "@{n}"),
        }
    }
}

impl fmt::Display for FailPoint {
    /// Renders the point back to its `name:kind[@trigger]` spec syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}{}", self.name, self.kind, self.trigger)
    }
}

/// The armed fault configuration rendered back to spec syntax
/// (`name:kind[@trigger]`, comma-separated, name-sorted), or `None` when no
/// failpoints are armed. This is what `/stats` and `/metrics` surface so an
/// operator can see exactly which chaos spec a serving process is running
/// under.
pub fn armed_spec() -> Option<String> {
    let guard = lock_recover(registry());
    let registry = guard.as_ref()?;
    if registry.points.is_empty() {
        return None;
    }
    let mut rendered: Vec<String> = registry
        .points
        .values()
        .map(|state| state.point.to_string())
        .collect();
    rendered.sort();
    Some(rendered.join(","))
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Mutex poisoning exists to warn about *possibly* inconsistent protected
/// state; every structure in this workspace keeps its invariants on panic
/// paths (counters, maps of `Arc`s, queues of owned jobs), so the right
/// response is to keep serving rather than wedge every later caller.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] that recovers from poisoning instead of panicking.
pub fn wait_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers from poisoning instead of
/// panicking. The timed-out flag is reported as `false` on the poison path
/// (the wait did return; callers re-check their predicate regardless).
pub fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match condvar.wait_timeout(guard, timeout) {
        Ok((guard, timed_out)) => (guard, timed_out.timed_out()),
        Err(poisoned) => {
            let (guard, timed_out) = poisoned.into_inner();
            (guard, timed_out.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-global registry.
    fn global_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        lock_recover(&GUARD)
    }

    #[test]
    fn spec_parsing_round_trips_the_documented_syntax() {
        let points =
            parse_spec("cache_write:io@0.1, eval:panic@3,session_build:delay=200ms").unwrap();
        assert_eq!(
            points,
            vec![
                FailPoint {
                    name: "cache_write".into(),
                    kind: FaultKind::Io,
                    trigger: Trigger::Probability(0.1),
                },
                FailPoint {
                    name: "eval".into(),
                    kind: FaultKind::Panic,
                    trigger: Trigger::EveryNth(3),
                },
                FailPoint {
                    name: "session_build".into(),
                    kind: FaultKind::Delay(Duration::from_millis(200)),
                    trigger: Trigger::Always,
                },
            ]
        );
        assert_eq!(
            parse_spec("x:delay=2s@0.5").unwrap()[0].kind,
            FaultKind::Delay(Duration::from_secs(2))
        );
        assert_eq!(parse_spec("x:error").unwrap()[0].kind, FaultKind::Error);
        assert_eq!(parse_spec("").unwrap(), Vec::new());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "noseparator",
            "x:frobnicate",
            "x:io@-1",
            "x:io@1.5",
            "x:io@zero",
            "x:io@0",
            "x:delay=fast",
            ":io",
        ] {
            let err = parse_spec(bad).unwrap_err();
            assert!(err.contains("bad"), "spec {bad:?} gave error {err:?}");
        }
    }

    #[test]
    fn every_nth_trigger_trips_on_exact_multiples() {
        let _guard = global_guard();
        configure("nth_point:error@3", 0).unwrap();
        let outcomes: Vec<bool> = (1..=9).map(|_| check("nth_point").is_err()).collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        let s = stats();
        assert_eq!(s.len(), 1);
        assert_eq!((s[0].hits, s[0].trips), (9, 3));
        clear();
        assert!(check("nth_point").is_ok());
        assert!(stats().is_empty());
    }

    #[test]
    fn probability_trigger_is_seed_deterministic() {
        let _guard = global_guard();
        let run = |seed: u64| -> Vec<bool> {
            configure("p_point:io@0.3", seed).unwrap();
            (0..64).map(|_| check("p_point").is_err()).collect()
        };
        let first = run(7);
        let second = run(7);
        assert_eq!(first, second, "same seed must trip the same hit numbers");
        let other = run(8);
        assert_ne!(first, other, "a different seed should reshuffle trips");
        let rate = first.iter().filter(|t| **t).count();
        assert!(
            (8..=30).contains(&rate),
            "0.3 probability tripped {rate}/64 times"
        );
        clear();
    }

    #[test]
    fn unarmed_and_unknown_points_are_no_ops() {
        let _guard = global_guard();
        clear();
        assert!(!active());
        assert!(check("anything").is_ok());
        configure("only_this:error", 0).unwrap();
        assert!(active());
        assert!(check("some_other_point").is_ok());
        assert!(check("only_this").is_err());
        clear();
    }

    #[test]
    fn io_flag_distinguishes_io_from_logical_faults() {
        let _guard = global_guard();
        configure("a:io,b:error", 0).unwrap();
        assert!(check("a").unwrap_err().io);
        assert!(!check("b").unwrap_err().io);
        let err = check("a").unwrap_err();
        assert_eq!(err.to_string(), "injected fault at failpoint `a`");
        clear();
    }

    #[test]
    fn init_from_env_reads_spec_and_seed() {
        let _guard = global_guard();
        // Serialised by the global guard; set_var is safe enough here.
        std::env::set_var(FAULTS_ENV_VAR, "env_point:error@2");
        std::env::set_var(FAULTS_SEED_ENV_VAR, "41");
        assert!(init_from_env().unwrap());
        assert!(check("env_point").is_ok());
        assert!(check("env_point").is_err());
        std::env::set_var(FAULTS_ENV_VAR, "not a spec");
        assert!(init_from_env().is_err());
        std::env::remove_var(FAULTS_ENV_VAR);
        std::env::remove_var(FAULTS_SEED_ENV_VAR);
        assert!(!init_from_env().unwrap());
        clear();
    }

    #[test]
    fn delay_faults_block_then_continue() {
        let _guard = global_guard();
        configure("slow:delay=30ms", 0).unwrap();
        let started = std::time::Instant::now();
        assert!(check("slow").is_ok());
        assert!(started.elapsed() >= Duration::from_millis(30));
        clear();
    }

    #[test]
    fn lock_helpers_recover_poisoned_guards() {
        let mutex = std::sync::Arc::new(Mutex::new(7_u32));
        let clone = std::sync::Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned());
        let mut guard = lock_recover(&mutex);
        *guard += 1;
        drop(guard);
        assert_eq!(*lock_recover(&mutex), 8);

        // Condvar recovery: wait_timeout on a poisoned mutex still returns
        // a usable guard.
        let condvar = Condvar::new();
        let guard = lock_recover(&mutex);
        let (guard, timed_out) = wait_timeout_recover(&condvar, guard, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*guard, 8);
    }
}
