use std::error::Error;
use std::fmt;

/// Error type for graph construction, sharding and dataset synthesis.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{EdgeList, CsrGraph};
///
/// let edges = EdgeList::from_pairs(4, &[(0, 9)]);
/// assert!(edges.is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// The feature table does not match the graph it is attached to.
    FeatureShapeMismatch {
        /// Number of nodes in the graph.
        graph_nodes: usize,
        /// Number of rows in the feature table.
        feature_rows: usize,
    },
    /// A dataset specification describes a graph too degenerate to shard or
    /// simulate (no vertices, no edges, a zero feature dimension, or more
    /// edges than a simple graph can hold).
    DegenerateDataset {
        /// Name of the dataset specification.
        name: String,
        /// Number of vertices in the spec.
        vertices: usize,
        /// Number of edges in the spec.
        edges: usize,
        /// Description of what makes the spec degenerate.
        message: String,
    },
    /// A persistent artifact-cache entry could not be used: the file is
    /// corrupt (bad magic, checksum mismatch, truncated payload), was written
    /// by a different format version, or does not match the requested key.
    ///
    /// Callers treat this as a *miss with a cause*: the artifact is rebuilt
    /// from scratch and the stale file overwritten.
    CacheArtifact {
        /// Path of the offending cache file.
        path: String,
        /// Description of why the artifact was rejected.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            GraphError::FeatureShapeMismatch {
                graph_nodes,
                feature_rows,
            } => write!(
                f,
                "feature table has {feature_rows} rows but the graph has {graph_nodes} nodes"
            ),
            GraphError::DegenerateDataset {
                name,
                vertices,
                edges,
                message,
            } => write!(
                f,
                "dataset {name} ({vertices} vertices, {edges} edges) is degenerate: {message}"
            ),
            GraphError::CacheArtifact { path, message } => {
                write!(f, "unusable cache artifact {path}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

impl GraphError {
    /// Convenience constructor for [`GraphError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        GraphError::InvalidParameter {
            name,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`GraphError::CacheArtifact`].
    pub fn cache(path: impl Into<String>, message: impl Into<String>) -> Self {
        GraphError::CacheArtifact {
            path: path.into(),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 12,
            num_nodes: 10,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("10"));

        let e = GraphError::invalid("probability", "must be in [0, 1]");
        assert!(e.to_string().contains("probability"));

        let e = GraphError::FeatureShapeMismatch {
            graph_nodes: 5,
            feature_rows: 4,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('4'));

        let e = GraphError::cache("/tmp/ds-1.bin", "checksum mismatch");
        assert!(e.to_string().contains("ds-1.bin"));
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
