use crate::{GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed edge `source -> destination`.
///
/// During aggregation the destination node reads the source node's feature,
/// so an edge `(u, v)` means "v aggregates from u".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node (feature producer).
    pub src: NodeId,
    /// Destination node (feature consumer / aggregator).
    pub dst: NodeId,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Self { src, dst }
    }

    /// Returns the edge with source and destination swapped.
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((src, dst): (NodeId, NodeId)) -> Self {
        Edge { src, dst }
    }
}

/// An edge-list representation of a directed graph.
///
/// The edge list is the representation consumed by the 2-D sharding algorithm
/// (the paper shards "a graph's edge list ... into shards such that each shard
/// contains a maximum of n² edges"). It is also the natural input format for
/// synthetic generators.
///
/// The list tracks whether its edges are currently sorted by `(src, dst)`.
/// The canonicalising operations ([`EdgeList::dedup`],
/// [`EdgeList::symmetrize`], [`EdgeList::add_self_loops`]) exploit the
/// invariant: on an already-sorted list they run as single merge passes
/// instead of re-sorting the whole edge vector, which is what makes repeated
/// pipeline stages (dedup → symmetrize → self-loops) linear instead of
/// `O(E log E)` each.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::EdgeList;
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(edges.num_edges(), 3);
/// assert_eq!(edges.num_nodes(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeList {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// Whether `edges` is sorted ascending by `(src, dst)`. Maintained
    /// incrementally by `push`/`extend` and restored by the canonicalising
    /// operations; lets no-op sorts be skipped.
    sorted: bool,
}

/// Equality ignores the internal sortedness flag: two lists holding the same
/// edges in the same order are equal however they were built.
impl PartialEq for EdgeList {
    fn eq(&self, other: &Self) -> bool {
        self.num_nodes == other.num_nodes && self.edges == other.edges
    }
}

impl Eq for EdgeList {}

impl EdgeList {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
            sorted: true,
        }
    }

    /// Builds an edge list from `(src, dst)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= num_nodes`.
    pub fn from_pairs(num_nodes: usize, pairs: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut list = Self::new(num_nodes);
        for &(src, dst) in pairs {
            list.push(Edge::new(src, dst))?;
        }
        Ok(list)
    }

    /// Builds an edge list from already-validated edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for e in &edges {
            Self::validate(num_nodes, *e)?;
        }
        let sorted = edges.windows(2).all(|w| w[0] <= w[1]);
        Ok(Self {
            num_nodes,
            edges,
            sorted,
        })
    }

    /// Builds an edge list from edges known to be validated and sorted by
    /// `(src, dst)` — the chunked builder and the artifact cache's merge
    /// paths use this to skip the `O(E)` re-checks.
    pub(crate) fn from_sorted_edges_unchecked(num_nodes: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(edges
            .iter()
            .all(|e| (e.src as usize) < num_nodes && (e.dst as usize) < num_nodes));
        Self {
            num_nodes,
            edges,
            sorted: true,
        }
    }

    fn validate(num_nodes: usize, edge: Edge) -> Result<(), GraphError> {
        for node in [edge.src, edge.dst] {
            if node as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node, num_nodes });
            }
        }
        Ok(())
    }

    /// Appends an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn push(&mut self, edge: Edge) -> Result<(), GraphError> {
        Self::validate(self.num_nodes, edge)?;
        self.sorted = self.sorted && self.edges.last().map_or(true, |last| *last <= edge);
        self.edges.push(edge);
        Ok(())
    }

    /// Number of nodes in the graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the edge list contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` if the edges are known to be sorted by `(src, dst)`.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Iterates over the edges in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }

    /// Returns the edges as a slice.
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Sorts edges by `(src, dst)` and removes duplicates and self-loops.
    ///
    /// Citation graphs are simple graphs; the synthetic generators may emit
    /// duplicates which are removed here so the statistics stay faithful.
    /// Already-sorted lists skip the sort and run a single linear pass.
    pub fn dedup(&mut self) {
        // `retain` preserves order, so sortedness survives the filter.
        self.edges.retain(|e| e.src != e.dst);
        if !self.sorted {
            self.edges.sort_unstable();
            self.sorted = true;
        }
        self.edges.dedup();
    }

    /// Adds the reverse of every edge and deduplicates, making the graph
    /// symmetric (undirected semantics, as used by the citation datasets).
    ///
    /// On a sorted list this is one sort of the *reversed* half plus a single
    /// merge pass; the original edges are never re-sorted.
    pub fn symmetrize(&mut self) {
        if !self.sorted {
            let reversed: Vec<Edge> = self.edges.iter().map(|e| e.reversed()).collect();
            self.edges.extend(reversed);
            self.dedup();
            return;
        }
        let mut reversed: Vec<Edge> = self
            .edges
            .iter()
            .filter(|e| e.src != e.dst)
            .map(|e| e.reversed())
            .collect();
        reversed.sort_unstable();
        let forward = std::mem::take(&mut self.edges);
        self.edges = merge_sorted_unique(
            forward.into_iter().filter(|e| e.src != e.dst),
            reversed.into_iter(),
        );
        self.sorted = true;
    }

    /// Adds a self-loop `v -> v` for every node that the GNN formulation
    /// includes in its own neighbourhood (`N(u) ∪ u` in Eq. 1).
    ///
    /// The result is sorted and deduplicated; a sorted input takes a single
    /// merge pass with the (already sorted) loop sequence instead of a full
    /// re-sort.
    pub fn add_self_loops(&mut self) {
        let loops = (0..self.num_nodes as NodeId).map(|v| Edge::new(v, v));
        if !self.sorted {
            self.edges.extend(loops);
            self.edges.sort_unstable();
            self.sorted = true;
            self.edges.dedup();
            return;
        }
        let existing = std::mem::take(&mut self.edges);
        self.edges = merge_sorted_unique(existing.into_iter(), loops);
        self.sorted = true;
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }
}

/// Merges two individually sorted edge sequences into one sorted vector,
/// dropping duplicates (within and across the inputs).
fn merge_sorted_unique(a: impl Iterator<Item = Edge>, b: impl Iterator<Item = Edge>) -> Vec<Edge> {
    let mut a = a.peekable();
    let mut b = b.peekable();
    let mut out: Vec<Edge> = Vec::new();
    loop {
        let next = match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    a.next()
                } else {
                    b.next()
                }
            }
            (Some(_), None) => a.next(),
            (None, Some(_)) => b.next(),
            (None, None) => break,
        };
        let next = next.expect("peeked a value");
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl Extend<Edge> for EdgeList {
    /// Extends the list with edges, silently clamping out-of-range endpoints
    /// is **not** done; out-of-range edges are skipped. Prefer [`EdgeList::push`]
    /// when error reporting matters.
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for edge in iter {
            if Self::validate(self.num_nodes, edge).is_ok() {
                self.sorted = self.sorted && self.edges.last().map_or(true, |last| *last <= edge);
                self.edges.push(edge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_validates_endpoints() {
        assert!(EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).is_ok());
        assert!(matches!(
            EdgeList::from_pairs(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, .. })
        ));
    }

    #[test]
    fn push_appends_and_counts() {
        let mut list = EdgeList::new(4);
        assert!(list.is_empty());
        list.push(Edge::new(0, 1)).unwrap();
        list.push(Edge::new(1, 0)).unwrap();
        assert_eq!(list.num_edges(), 2);
        assert!(!list.is_empty());
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let mut list = EdgeList::from_pairs(3, &[(0, 1), (0, 1), (1, 1), (2, 0)]).unwrap();
        list.dedup();
        assert_eq!(list.num_edges(), 2);
        assert!(list.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut list = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        list.symmetrize();
        assert_eq!(list.num_edges(), 4);
        assert!(list.as_slice().contains(&Edge::new(1, 0)));
        assert!(list.as_slice().contains(&Edge::new(2, 1)));
    }

    #[test]
    fn add_self_loops_covers_every_node() {
        let mut list = EdgeList::from_pairs(3, &[(0, 1)]).unwrap();
        list.add_self_loops();
        for v in 0..3 {
            assert!(list.as_slice().contains(&Edge::new(v, v)));
        }
        assert_eq!(list.num_edges(), 4);
    }

    #[test]
    fn degree_counts() {
        let list = EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        assert_eq!(list.out_degrees(), vec![2, 1, 0]);
        assert_eq!(list.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn reversed_edge_swaps_endpoints() {
        let e = Edge::new(3, 7);
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert_eq!(Edge::from((1, 2)), Edge::new(1, 2));
    }

    #[test]
    fn extend_skips_invalid_edges() {
        let mut list = EdgeList::new(2);
        list.extend(vec![Edge::new(0, 1), Edge::new(0, 5)]);
        assert_eq!(list.num_edges(), 1);
    }

    #[test]
    fn display_edge() {
        assert_eq!(Edge::new(1, 2).to_string(), "1 -> 2");
    }

    #[test]
    fn iterate_edges() {
        let list = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let collected: Vec<Edge> = list.iter().copied().collect();
        assert_eq!(collected.len(), 2);
        let borrowed: Vec<&Edge> = (&list).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }

    #[test]
    fn sortedness_is_tracked_incrementally() {
        let mut list = EdgeList::new(5);
        assert!(list.is_sorted(), "empty list is trivially sorted");
        list.push(Edge::new(0, 1)).unwrap();
        list.push(Edge::new(0, 1)).unwrap(); // duplicate keeps sortedness
        list.push(Edge::new(2, 3)).unwrap();
        assert!(list.is_sorted());
        list.push(Edge::new(1, 0)).unwrap();
        assert!(!list.is_sorted());
        // Canonicalising restores the invariant.
        list.dedup();
        assert!(list.is_sorted());
        assert_eq!(
            list.as_slice(),
            &[Edge::new(0, 1), Edge::new(1, 0), Edge::new(2, 3)]
        );
    }

    #[test]
    fn from_edges_detects_sortedness() {
        let sorted = EdgeList::from_edges(4, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        assert!(sorted.is_sorted());
        let unsorted = EdgeList::from_edges(4, vec![Edge::new(1, 2), Edge::new(0, 1)]).unwrap();
        assert!(!unsorted.is_sorted());
    }

    /// Reference implementations of the canonicalising operations, the way
    /// they worked before sortedness tracking: always a full sort + dedup.
    fn reference_dedup(pairs: &[(NodeId, NodeId)], n: usize) -> Vec<Edge> {
        let mut edges: Vec<Edge> = pairs
            .iter()
            .map(|&(s, d)| Edge::new(s, d))
            .filter(|e| e.src != e.dst && (e.src as usize) < n && (e.dst as usize) < n)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    #[test]
    fn merge_based_ops_match_the_resort_reference() {
        let pairs: &[(NodeId, NodeId)] = &[(0, 1), (3, 2), (0, 1), (2, 2), (1, 0), (3, 0), (2, 3)];
        let n = 4;

        // dedup on sorted and unsorted inputs.
        for presort in [false, true] {
            let mut list = EdgeList::from_pairs(n, pairs).unwrap();
            if presort {
                list.dedup(); // canonicalise first so the second call is the fast path
            }
            list.dedup();
            assert_eq!(list.as_slice(), reference_dedup(pairs, n).as_slice());
            assert!(list.is_sorted());
        }

        // symmetrize: sorted fast path against the extend-then-sort reference.
        let mut fast = EdgeList::from_pairs(n, pairs).unwrap();
        fast.dedup();
        fast.symmetrize();
        let mut reference: Vec<Edge> = reference_dedup(pairs, n);
        reference.extend(
            reference_dedup(pairs, n)
                .iter()
                .map(|e| e.reversed())
                .collect::<Vec<_>>(),
        );
        reference.sort_unstable();
        reference.dedup();
        assert_eq!(fast.as_slice(), reference.as_slice());
        assert!(fast.is_sorted());

        // add_self_loops: sorted fast path against sort+dedup semantics.
        let mut fast = EdgeList::from_pairs(n, pairs).unwrap();
        fast.dedup();
        fast.add_self_loops();
        let mut reference = reference_dedup(pairs, n);
        reference.extend((0..n as NodeId).map(|v| Edge::new(v, v)));
        reference.sort_unstable();
        reference.dedup();
        assert_eq!(fast.as_slice(), reference.as_slice());
        assert!(fast.is_sorted());
    }

    #[test]
    fn add_self_loops_does_not_duplicate_existing_loops() {
        let mut list = EdgeList::from_pairs(3, &[(0, 0), (0, 1)]).unwrap();
        list.add_self_loops();
        assert_eq!(list.num_edges(), 4); // (0,0) once, (0,1), (1,1), (2,2)
        assert!(list.is_sorted());
    }

    #[test]
    fn equality_ignores_the_sortedness_flag() {
        let a = EdgeList::from_edges(3, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
        let mut b = EdgeList::new(3);
        b.push(Edge::new(0, 1)).unwrap();
        b.push(Edge::new(1, 2)).unwrap();
        assert_eq!(a, b);
    }
}
