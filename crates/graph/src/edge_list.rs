use crate::{GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed edge `source -> destination`.
///
/// During aggregation the destination node reads the source node's feature,
/// so an edge `(u, v)` means "v aggregates from u".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node (feature producer).
    pub src: NodeId,
    /// Destination node (feature consumer / aggregator).
    pub dst: NodeId,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Self { src, dst }
    }

    /// Returns the edge with source and destination swapped.
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((src, dst): (NodeId, NodeId)) -> Self {
        Edge { src, dst }
    }
}

/// An edge-list representation of a directed graph.
///
/// The edge list is the representation consumed by the 2-D sharding algorithm
/// (the paper shards "a graph's edge list ... into shards such that each shard
/// contains a maximum of n² edges"). It is also the natural input format for
/// synthetic generators.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::EdgeList;
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(3, &[(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(edges.num_edges(), 3);
/// assert_eq!(edges.num_nodes(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeList {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Builds an edge list from `(src, dst)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= num_nodes`.
    pub fn from_pairs(num_nodes: usize, pairs: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut list = Self::new(num_nodes);
        for &(src, dst) in pairs {
            list.push(Edge::new(src, dst))?;
        }
        Ok(list)
    }

    /// Builds an edge list from already-validated edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for e in &edges {
            Self::validate(num_nodes, *e)?;
        }
        Ok(Self { num_nodes, edges })
    }

    fn validate(num_nodes: usize, edge: Edge) -> Result<(), GraphError> {
        for node in [edge.src, edge.dst] {
            if node as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node, num_nodes });
            }
        }
        Ok(())
    }

    /// Appends an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn push(&mut self, edge: Edge) -> Result<(), GraphError> {
        Self::validate(self.num_nodes, edge)?;
        self.edges.push(edge);
        Ok(())
    }

    /// Number of nodes in the graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the edge list contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over the edges in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }

    /// Returns the edges as a slice.
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Sorts edges by `(src, dst)` and removes duplicates and self-loops.
    ///
    /// Citation graphs are simple graphs; the synthetic generators may emit
    /// duplicates which are removed here so the statistics stay faithful.
    pub fn dedup(&mut self) {
        self.edges.retain(|e| e.src != e.dst);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Adds the reverse of every edge and deduplicates, making the graph
    /// symmetric (undirected semantics, as used by the citation datasets).
    pub fn symmetrize(&mut self) {
        let reversed: Vec<Edge> = self.edges.iter().map(|e| e.reversed()).collect();
        self.edges.extend(reversed);
        self.dedup();
    }

    /// Adds a self-loop `v -> v` for every node that the GNN formulation
    /// includes in its own neighbourhood (`N(u) ∪ u` in Eq. 1).
    pub fn add_self_loops(&mut self) {
        for v in 0..self.num_nodes as NodeId {
            self.edges.push(Edge::new(v, v));
        }
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl Extend<Edge> for EdgeList {
    /// Extends the list with edges, silently clamping out-of-range endpoints
    /// is **not** done; out-of-range edges are skipped. Prefer [`EdgeList::push`]
    /// when error reporting matters.
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for edge in iter {
            if Self::validate(self.num_nodes, edge).is_ok() {
                self.edges.push(edge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_validates_endpoints() {
        assert!(EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).is_ok());
        assert!(matches!(
            EdgeList::from_pairs(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, .. })
        ));
    }

    #[test]
    fn push_appends_and_counts() {
        let mut list = EdgeList::new(4);
        assert!(list.is_empty());
        list.push(Edge::new(0, 1)).unwrap();
        list.push(Edge::new(1, 0)).unwrap();
        assert_eq!(list.num_edges(), 2);
        assert!(!list.is_empty());
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let mut list = EdgeList::from_pairs(3, &[(0, 1), (0, 1), (1, 1), (2, 0)]).unwrap();
        list.dedup();
        assert_eq!(list.num_edges(), 2);
        assert!(list.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut list = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        list.symmetrize();
        assert_eq!(list.num_edges(), 4);
        assert!(list.as_slice().contains(&Edge::new(1, 0)));
        assert!(list.as_slice().contains(&Edge::new(2, 1)));
    }

    #[test]
    fn add_self_loops_covers_every_node() {
        let mut list = EdgeList::from_pairs(3, &[(0, 1)]).unwrap();
        list.add_self_loops();
        for v in 0..3 {
            assert!(list.as_slice().contains(&Edge::new(v, v)));
        }
        assert_eq!(list.num_edges(), 4);
    }

    #[test]
    fn degree_counts() {
        let list = EdgeList::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        assert_eq!(list.out_degrees(), vec![2, 1, 0]);
        assert_eq!(list.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn reversed_edge_swaps_endpoints() {
        let e = Edge::new(3, 7);
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert_eq!(Edge::from((1, 2)), Edge::new(1, 2));
    }

    #[test]
    fn extend_skips_invalid_edges() {
        let mut list = EdgeList::new(2);
        list.extend(vec![Edge::new(0, 1), Edge::new(0, 5)]);
        assert_eq!(list.num_edges(), 1);
    }

    #[test]
    fn display_edge() {
        assert_eq!(Edge::new(1, 2).to_string(), "1 -> 2");
    }

    #[test]
    fn iterate_edges() {
        let list = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let collected: Vec<Edge> = list.iter().copied().collect();
        assert_eq!(collected.len(), 2);
        let borrowed: Vec<&Edge> = (&list).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }
}
