//! Streaming, chunked edge-list construction with optional disk spilling.
//!
//! The synthetic generators used to build one giant `Vec<Edge>` and sort it
//! at the end — an `O(E log E)` single-threaded wall that made ogbn-scale
//! graphs (millions of edges) the cold-start bottleneck of every sweep. The
//! [`EdgeListBuilder`] replaces that flow with the classic external-sort
//! shape:
//!
//! 1. generators *stream* edges into the builder, which seals them into
//!    fixed-capacity chunks;
//! 2. sealed chunks stay in memory while they fit the builder's
//!    [`MemoryBudget`]; beyond the cap a chunk is sorted immediately and
//!    spilled to a `spill-<pid>-<nonce>.run` file (raw little-endian
//!    `(src, dst)` pairs) in the cache directory;
//! 3. [`EdgeListBuilder::finish`] sorts the remaining in-memory chunks
//!    **in parallel** (rayon) and k-way merges every cursor — in-memory
//!    slices and buffered spill-file readers alike — into one globally
//!    sorted, duplicate-free [`EdgeList`] in a single pass.
//!
//! The output is bit-identical to `collect → sort_unstable → dedup` on the
//! same edge multiset regardless of how many chunks spilled (the property
//! tests pin this), so the generators' seeded determinism is preserved.
//! Spill run-files are deleted as soon as the merge consumes them; files
//! orphaned by a crash are reaped by the
//! [`ArtifactCache`](crate::ArtifactCache) startup sweep.

use crate::cache;
use crate::memory::MemoryBudget;
use crate::{Edge, EdgeList, GraphError};
use gnnerator_observe::Recorder;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

/// Default number of edges per sealed chunk (~512 KiB of edge records): big
/// enough that per-chunk sort overhead amortises, small enough that a dozen
/// worker threads all get work on million-edge graphs.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1 << 16;

/// Bytes per edge record in a spill run-file: two little-endian `u32`s.
const SPILL_RECORD_BYTES: usize = 8;

/// A sorted run of edges spilled to disk; the file is removed on drop.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
    edges: usize,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A streaming builder that accumulates edges in sorted chunks — in memory
/// or spilled to disk under a [`MemoryBudget`] — and merges them into a
/// canonical (sorted, deduplicated) [`EdgeList`].
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{Edge, EdgeListBuilder};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let mut builder = EdgeListBuilder::new(4);
/// builder.push(Edge::new(2, 1))?;
/// builder.push(Edge::new(0, 3))?;
/// builder.push(Edge::new(2, 1))?; // duplicate, removed on finish
/// let edges = builder.finish();
/// assert_eq!(edges.as_slice(), &[Edge::new(0, 3), Edge::new(2, 1)]);
/// assert!(edges.is_sorted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EdgeListBuilder {
    num_nodes: usize,
    chunk_capacity: usize,
    budget: MemoryBudget,
    /// Directory spill run-files land in; resolved lazily on first spill.
    spill_dir: Option<PathBuf>,
    /// Sealed, still-unsorted chunks held in memory.
    mem_chunks: Vec<Vec<Edge>>,
    /// Sealed, sorted chunks spilled to disk run-files.
    spilled: Vec<SpillFile>,
    /// The chunk currently being filled.
    current: Vec<Edge>,
    /// Edges held across `mem_chunks` (excludes `current` and spills).
    resident_edges: usize,
    /// Edges sealed so far, in memory or on disk.
    sealed_edges: usize,
    /// Builder-local resident-bytes high-water mark.
    peak_resident_bytes: u64,
    /// Telemetry sink for spill counts and the resident-bytes peak.
    /// Defaults to the process global; a scoped recorder attributes this
    /// build's counts to its scope.
    recorder: Recorder,
}

impl EdgeListBuilder {
    /// Creates a builder for a graph over `num_nodes` nodes with the default
    /// chunk capacity and the process-wide [`MemoryBudget::from_env`] budget.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_chunk_capacity(num_nodes, DEFAULT_CHUNK_CAPACITY)
    }

    /// Creates a builder with an explicit chunk capacity (clamped to at
    /// least 1). Small capacities are useful in tests to force many-chunk
    /// merges.
    pub fn with_chunk_capacity(num_nodes: usize, chunk_capacity: usize) -> Self {
        let chunk_capacity = chunk_capacity.max(1);
        Self {
            num_nodes,
            chunk_capacity,
            budget: MemoryBudget::from_env(),
            spill_dir: None,
            mem_chunks: Vec::new(),
            spilled: Vec::new(),
            current: Vec::with_capacity(chunk_capacity.min(1 << 20)),
            resident_edges: 0,
            sealed_edges: 0,
            peak_resident_bytes: 0,
            recorder: Recorder::default(),
        }
    }

    /// Overrides the telemetry sink spill counts and the resident-bytes
    /// peak are recorded into (the default is the process-global recorder).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Overrides the builder's memory budget. Sealed chunks that would push
    /// resident sealed bytes past the cap are sorted and spilled to disk;
    /// the one chunk currently being filled is the fixed working set and is
    /// not counted against the cap.
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the directory spill run-files are written to. The default
    /// is the artifact-cache directory (or the system temp directory when
    /// the cache is disabled).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Number of nodes the builder validates endpoints against.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The memory budget governing this builder's spill decisions.
    pub fn memory_budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Number of sealed chunks spilled to disk so far.
    pub fn spilled_chunks(&self) -> usize {
        self.spilled.len()
    }

    /// This builder's resident-bytes high-water mark (sealed in-memory
    /// chunks plus the chunk being sealed, at each seal point).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes
    }

    /// Total number of raw (pre-dedup) edges streamed in so far.
    pub fn len(&self) -> usize {
        self.sealed_edges + self.current.len()
    }

    /// Returns `true` if no edges have been streamed in.
    pub fn is_empty(&self) -> bool {
        self.sealed_edges == 0 && self.current.is_empty()
    }

    /// Streams one edge into the builder.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is
    /// `>= num_nodes`.
    pub fn push(&mut self, edge: Edge) -> Result<(), GraphError> {
        for node in [edge.src, edge.dst] {
            if node as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        self.current.push(edge);
        if self.current.len() >= self.chunk_capacity {
            let full = std::mem::replace(
                &mut self.current,
                Vec::with_capacity(self.chunk_capacity.min(1 << 20)),
            );
            self.seal(full);
        }
        Ok(())
    }

    /// Streams an edge and its reverse — the building block of symmetric
    /// (undirected-semantics) graphs, replacing a post-hoc
    /// [`EdgeList::symmetrize`] pass over the full list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn push_symmetric(&mut self, edge: Edge) -> Result<(), GraphError> {
        self.push(edge)?;
        self.push(edge.reversed())
    }

    /// Seals one chunk: kept in memory while the budget allows, otherwise
    /// sorted and spilled to a run-file. A failed spill write degrades
    /// gracefully by keeping the chunk in memory.
    fn seal(&mut self, mut chunk: Vec<Edge>) {
        let chunk_bytes = (chunk.len() * SPILL_RECORD_BYTES) as u64;
        let resident_bytes = (self.resident_edges * SPILL_RECORD_BYTES) as u64;
        // The freshly sealed chunk is momentarily resident either way.
        self.note_resident(resident_bytes + chunk_bytes);
        self.sealed_edges += chunk.len();
        if self.budget.would_exceed(resident_bytes, chunk_bytes) && !chunk.is_empty() {
            chunk.sort_unstable();
            match self.spill(&chunk) {
                Ok(file) => {
                    self.spilled.push(file);
                    self.recorder.note_spilled_chunks(1);
                    return;
                }
                Err(_) => {
                    // Disk trouble must not lose edges: fall back to memory.
                    // (The chunk arrives sorted at finish, which is fine —
                    // the merge only assumes per-chunk sortedness.)
                }
            }
        }
        self.resident_edges += chunk.len();
        self.mem_chunks.push(chunk);
    }

    /// Writes one sorted chunk to a fresh spill run-file.
    fn spill(&mut self, chunk: &[Edge]) -> std::io::Result<SpillFile> {
        let dir = match &self.spill_dir {
            Some(dir) => dir.clone(),
            None => {
                let dir = cache::default_spill_dir();
                self.spill_dir = Some(dir.clone());
                dir
            }
        };
        std::fs::create_dir_all(&dir)?;
        let path = cache::new_spill_run_path(&dir);
        let file = SpillFile {
            path: path.clone(),
            edges: chunk.len(),
        };
        let mut writer =
            BufWriter::with_capacity(self.budget.io_buffer_bytes(1), File::create(&path)?);
        for edge in chunk {
            writer.write_all(&edge.src.to_le_bytes())?;
            writer.write_all(&edge.dst.to_le_bytes())?;
        }
        writer.flush()?;
        Ok(file)
    }

    fn note_resident(&mut self, bytes: u64) {
        if bytes > self.peak_resident_bytes {
            self.peak_resident_bytes = bytes;
        }
        self.recorder.note_resident_bytes(bytes);
    }

    /// Sorts all in-memory chunks in parallel, k-way merges every chunk —
    /// in-memory and spilled — and returns the canonical edge list: sorted
    /// by `(src, dst)`, duplicates removed.
    ///
    /// Self-loops are *kept* (the builder is policy-free); generators that
    /// need simple graphs simply never stream self-loops in.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] if a spill run-file written
    /// earlier cannot be read back. Builders that never spilled cannot fail.
    pub fn try_finish(mut self) -> Result<EdgeList, GraphError> {
        if !self.current.is_empty() {
            let rest = std::mem::take(&mut self.current);
            self.seal(rest);
        }
        self.mem_chunks
            .par_iter_mut()
            .for_each(|chunk| chunk.sort_unstable());

        let merged = if self.spilled.is_empty() {
            match self.mem_chunks.len() {
                0 => Vec::new(),
                1 => {
                    let mut only = self.mem_chunks.pop().expect("one chunk");
                    only.dedup();
                    only
                }
                _ => merge_chunks(&self.mem_chunks),
            }
        } else {
            merge_spilled(&self.mem_chunks, &self.spilled, self.budget)?
        };
        self.note_resident(((merged.len() + self.resident_edges) * SPILL_RECORD_BYTES) as u64);
        Ok(EdgeList::from_sorted_edges_unchecked(
            self.num_nodes,
            merged,
        ))
    }

    /// [`EdgeListBuilder::try_finish`], for builders that cannot have
    /// spilled (or callers content to treat spill-file loss as fatal).
    ///
    /// # Panics
    ///
    /// Panics if a spill run-file cannot be read back; prefer `try_finish`
    /// on paths where the builder may run under a bounded budget.
    pub fn finish(self) -> EdgeList {
        self.try_finish()
            .expect("spill run-file readable until finish")
    }
}

/// K-way merge of sorted chunks with duplicate elimination, via a min-heap of
/// `(head edge, chunk index)` cursors: `O(E log k)` comparisons total.
fn merge_chunks(chunks: &[Vec<Edge>]) -> Vec<Edge> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out: Vec<Edge> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; chunks.len()];
    let mut heap: BinaryHeap<Reverse<(Edge, usize)>> = chunks
        .iter()
        .enumerate()
        .filter(|(_, chunk)| !chunk.is_empty())
        .map(|(i, chunk)| Reverse((chunk[0], i)))
        .collect();
    while let Some(Reverse((edge, chunk_index))) = heap.pop() {
        if out.last() != Some(&edge) {
            out.push(edge);
        }
        cursors[chunk_index] += 1;
        if let Some(&next) = chunks[chunk_index].get(cursors[chunk_index]) {
            heap.push(Reverse((next, chunk_index)));
        }
    }
    out
}

/// One input to the heterogeneous k-way merge: an in-memory sorted slice or
/// a buffered reader over a sorted spill run-file.
enum MergeCursor<'a> {
    Mem {
        chunk: &'a [Edge],
        pos: usize,
    },
    Run {
        reader: BufReader<File>,
        remaining: usize,
        path: &'a PathBuf,
    },
}

impl MergeCursor<'_> {
    fn next(&mut self) -> Result<Option<Edge>, GraphError> {
        match self {
            MergeCursor::Mem { chunk, pos } => {
                let edge = chunk.get(*pos).copied();
                *pos += 1;
                Ok(edge)
            }
            MergeCursor::Run {
                reader,
                remaining,
                path,
            } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                let mut record = [0u8; SPILL_RECORD_BYTES];
                reader.read_exact(&mut record).map_err(|e| {
                    GraphError::cache(
                        path.display().to_string(),
                        format!("spill run-file read failed: {e}"),
                    )
                })?;
                *remaining -= 1;
                Ok(Some(Edge::new(
                    u32::from_le_bytes(record[0..4].try_into().expect("4 bytes")),
                    u32::from_le_bytes(record[4..8].try_into().expect("4 bytes")),
                )))
            }
        }
    }
}

/// K-way merge across in-memory chunks and spilled run-files. Identical
/// ordering and dedup semantics to [`merge_chunks`]; read buffers divide the
/// budget across the open run-files.
fn merge_spilled(
    mem_chunks: &[Vec<Edge>],
    spilled: &[SpillFile],
    budget: MemoryBudget,
) -> Result<Vec<Edge>, GraphError> {
    let total: usize = mem_chunks.iter().map(Vec::len).sum::<usize>()
        + spilled.iter().map(|s| s.edges).sum::<usize>();
    let buffer_bytes = budget.io_buffer_bytes(spilled.len());
    let mut cursors: Vec<MergeCursor<'_>> = Vec::with_capacity(mem_chunks.len() + spilled.len());
    for chunk in mem_chunks {
        cursors.push(MergeCursor::Mem { chunk, pos: 0 });
    }
    for run in spilled {
        let file = File::open(&run.path).map_err(|e| {
            GraphError::cache(
                run.path.display().to_string(),
                format!("spill run-file vanished: {e}"),
            )
        })?;
        cursors.push(MergeCursor::Run {
            reader: BufReader::with_capacity(buffer_bytes, file),
            remaining: run.edges,
            path: &run.path,
        });
    }

    let mut out: Vec<Edge> = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(Edge, usize)>> = BinaryHeap::with_capacity(cursors.len());
    for (i, cursor) in cursors.iter_mut().enumerate() {
        if let Some(edge) = cursor.next()? {
            heap.push(Reverse((edge, i)));
        }
    }
    while let Some(Reverse((edge, i))) = heap.pop() {
        if out.last() != Some(&edge) {
            out.push(edge);
        }
        if let Some(next) = cursors[i].next()? {
            heap.push(Reverse((next, i)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(num_nodes: usize, edges: &[Edge]) -> EdgeList {
        let mut all: Vec<Edge> = edges.to_vec();
        all.sort_unstable();
        all.dedup();
        EdgeList::from_edges(num_nodes, all).unwrap()
    }

    fn pseudo_random_edges(n: usize, count: usize) -> Vec<Edge> {
        let mut state = 0x1234_5678_u64;
        let mut edges = Vec::new();
        for _ in 0..count {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let src = ((state >> 33) % n as u64) as u32;
            let dst = ((state >> 17) % n as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        edges
    }

    fn spill_dir(label: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gnnerator-spill-test-{label}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn builder_matches_collect_sort_dedup() {
        // A deterministic pseudo-random edge stream spanning many chunks.
        let n = 50usize;
        let edges = pseudo_random_edges(n, 5000);
        for capacity in [1, 7, 64, 4096, usize::MAX] {
            let mut builder = EdgeListBuilder::with_chunk_capacity(n, capacity)
                .with_memory_budget(MemoryBudget::unbounded());
            for &e in &edges {
                builder.push(e).unwrap();
            }
            let built = builder.finish();
            assert_eq!(built, reference(n, &edges), "capacity {capacity}");
            assert!(built.is_sorted());
        }
    }

    #[test]
    fn spilled_builder_is_bit_identical_to_in_memory() {
        let n = 64usize;
        let edges = pseudo_random_edges(n, 4000);
        let expected = reference(n, &edges);
        let dir = spill_dir("bit-identical");
        // Budgets straddling the chunk size: spill-everything, exactly one
        // resident chunk, and a mid-stream cap.
        let chunk_bytes = (128 * SPILL_RECORD_BYTES) as u64;
        for budget in [0, chunk_bytes, 3 * chunk_bytes + 1] {
            let mut builder = EdgeListBuilder::with_chunk_capacity(n, 128)
                .with_memory_budget(MemoryBudget::bytes(budget))
                .with_spill_dir(&dir);
            for &e in &edges {
                builder.push(e).unwrap();
            }
            assert!(
                builder.spilled_chunks() > 0,
                "budget {budget} never spilled"
            );
            let built = builder.try_finish().unwrap();
            assert_eq!(built, expected, "budget {budget}");
        }
        // Run-files are deleted once the merge consumed them.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_budget_spills_every_sealed_chunk() {
        let dir = spill_dir("zero-budget");
        let mut builder = EdgeListBuilder::with_chunk_capacity(16, 4)
            .with_memory_budget(MemoryBudget::bytes(0))
            .with_spill_dir(&dir);
        for e in pseudo_random_edges(16, 41) {
            builder.push(e).unwrap();
        }
        // 10 full chunks sealed during push; the remainder seals in finish.
        assert_eq!(builder.spilled_chunks(), 10);
        assert_eq!(builder.len(), 41);
        assert!(builder.peak_resident_bytes() <= (4 * SPILL_RECORD_BYTES) as u64);
        let built = builder.try_finish().unwrap();
        assert!(built.is_sorted());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exact_fit_budget_never_spills() {
        let dir = spill_dir("exact-fit");
        let edges = pseudo_random_edges(32, 256);
        let mut builder = EdgeListBuilder::with_chunk_capacity(32, 64)
            .with_memory_budget(MemoryBudget::bytes((256 * SPILL_RECORD_BYTES) as u64))
            .with_spill_dir(&dir);
        for &e in &edges {
            builder.push(e).unwrap();
        }
        assert_eq!(builder.spilled_chunks(), 0);
        assert_eq!(builder.try_finish().unwrap(), reference(32, &edges));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn symmetric_push_matches_symmetrize() {
        let n = 20usize;
        let pairs: &[(u32, u32)] = &[(0, 1), (5, 2), (19, 0), (5, 2), (3, 4)];
        let mut builder = EdgeListBuilder::with_chunk_capacity(n, 3);
        for &(s, d) in pairs {
            builder.push_symmetric(Edge::new(s, d)).unwrap();
        }
        let built = builder.finish();
        let mut reference = EdgeList::from_pairs(n, pairs).unwrap();
        reference.symmetrize();
        assert_eq!(built, reference);
    }

    #[test]
    fn rejects_out_of_range_endpoints() {
        let mut builder = EdgeListBuilder::new(3);
        assert!(matches!(
            builder.push(Edge::new(0, 3)),
            Err(GraphError::NodeOutOfRange { node: 3, .. })
        ));
        assert!(builder.push_symmetric(Edge::new(4, 0)).is_err());
        assert!(builder.is_empty());
    }

    #[test]
    fn empty_builder_finishes_to_an_empty_list() {
        let builder = EdgeListBuilder::new(10);
        let edges = builder.finish();
        assert!(edges.is_empty());
        assert_eq!(edges.num_nodes(), 10);
    }

    #[test]
    fn len_counts_raw_edges_across_chunks() {
        let mut builder = EdgeListBuilder::with_chunk_capacity(4, 2);
        for _ in 0..5 {
            builder.push(Edge::new(0, 1)).unwrap();
        }
        assert_eq!(builder.len(), 5);
        assert!(!builder.is_empty());
        // Duplicates collapse on finish.
        assert_eq!(builder.finish().num_edges(), 1);
    }
}
