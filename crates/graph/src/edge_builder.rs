//! Streaming, chunked edge-list construction.
//!
//! The synthetic generators used to build one giant `Vec<Edge>` and sort it
//! at the end — an `O(E log E)` single-threaded wall that made ogbn-scale
//! graphs (millions of edges) the cold-start bottleneck of every sweep. The
//! [`EdgeListBuilder`] replaces that flow with the classic external-sort
//! shape, kept in memory:
//!
//! 1. generators *stream* edges into the builder, which seals them into
//!    fixed-capacity chunks;
//! 2. [`EdgeListBuilder::finish`] sorts the sealed chunks **in parallel**
//!    (rayon) — each chunk is small enough to sort fast and the sorts are
//!    independent;
//! 3. a k-way heap merge emits one globally sorted, duplicate-free
//!    [`EdgeList`] in a single pass.
//!
//! The output is bit-identical to `collect → sort_unstable → dedup` on the
//! same edge multiset (the property tests pin this), so the generators'
//! seeded determinism is preserved.

use crate::{Edge, EdgeList, GraphError};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default number of edges per sealed chunk (~512 KiB of edge records): big
/// enough that per-chunk sort overhead amortises, small enough that a dozen
/// worker threads all get work on million-edge graphs.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1 << 16;

/// A streaming builder that accumulates edges in sorted chunks and merges
/// them into a canonical (sorted, deduplicated) [`EdgeList`].
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{Edge, EdgeListBuilder};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let mut builder = EdgeListBuilder::new(4);
/// builder.push(Edge::new(2, 1))?;
/// builder.push(Edge::new(0, 3))?;
/// builder.push(Edge::new(2, 1))?; // duplicate, removed on finish
/// let edges = builder.finish();
/// assert_eq!(edges.as_slice(), &[Edge::new(0, 3), Edge::new(2, 1)]);
/// assert!(edges.is_sorted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EdgeListBuilder {
    num_nodes: usize,
    chunk_capacity: usize,
    /// Sealed, still-unsorted chunks of exactly `chunk_capacity` edges.
    sealed: Vec<Vec<Edge>>,
    /// The chunk currently being filled.
    current: Vec<Edge>,
}

impl EdgeListBuilder {
    /// Creates a builder for a graph over `num_nodes` nodes with the default
    /// chunk capacity.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_chunk_capacity(num_nodes, DEFAULT_CHUNK_CAPACITY)
    }

    /// Creates a builder with an explicit chunk capacity (clamped to at
    /// least 1). Small capacities are useful in tests to force many-chunk
    /// merges.
    pub fn with_chunk_capacity(num_nodes: usize, chunk_capacity: usize) -> Self {
        let chunk_capacity = chunk_capacity.max(1);
        Self {
            num_nodes,
            chunk_capacity,
            sealed: Vec::new(),
            current: Vec::with_capacity(chunk_capacity.min(1 << 20)),
        }
    }

    /// Number of nodes the builder validates endpoints against.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of raw (pre-dedup) edges streamed in so far.
    pub fn len(&self) -> usize {
        self.sealed.len() * self.chunk_capacity + self.current.len()
    }

    /// Returns `true` if no edges have been streamed in.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.current.is_empty()
    }

    /// Streams one edge into the builder.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is
    /// `>= num_nodes`.
    pub fn push(&mut self, edge: Edge) -> Result<(), GraphError> {
        for node in [edge.src, edge.dst] {
            if node as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        self.current.push(edge);
        if self.current.len() >= self.chunk_capacity {
            let full = std::mem::replace(
                &mut self.current,
                Vec::with_capacity(self.chunk_capacity.min(1 << 20)),
            );
            self.sealed.push(full);
        }
        Ok(())
    }

    /// Streams an edge and its reverse — the building block of symmetric
    /// (undirected-semantics) graphs, replacing a post-hoc
    /// [`EdgeList::symmetrize`] pass over the full list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn push_symmetric(&mut self, edge: Edge) -> Result<(), GraphError> {
        self.push(edge)?;
        self.push(edge.reversed())
    }

    /// Sorts all chunks in parallel, k-way merges them and returns the
    /// canonical edge list: sorted by `(src, dst)`, duplicates removed.
    ///
    /// Self-loops are *kept* (the builder is policy-free); generators that
    /// need simple graphs simply never stream self-loops in.
    pub fn finish(mut self) -> EdgeList {
        if !self.current.is_empty() {
            let rest = std::mem::take(&mut self.current);
            self.sealed.push(rest);
        }
        self.sealed
            .par_iter_mut()
            .for_each(|chunk| chunk.sort_unstable());

        let merged = match self.sealed.len() {
            0 => Vec::new(),
            1 => {
                let mut only = self.sealed.pop().expect("one chunk");
                only.dedup();
                only
            }
            _ => merge_chunks(&self.sealed),
        };
        EdgeList::from_sorted_edges_unchecked(self.num_nodes, merged)
    }
}

/// K-way merge of sorted chunks with duplicate elimination, via a min-heap of
/// `(head edge, chunk index)` cursors: `O(E log k)` comparisons total.
fn merge_chunks(chunks: &[Vec<Edge>]) -> Vec<Edge> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out: Vec<Edge> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; chunks.len()];
    let mut heap: BinaryHeap<Reverse<(Edge, usize)>> = chunks
        .iter()
        .enumerate()
        .filter(|(_, chunk)| !chunk.is_empty())
        .map(|(i, chunk)| Reverse((chunk[0], i)))
        .collect();
    while let Some(Reverse((edge, chunk_index))) = heap.pop() {
        if out.last() != Some(&edge) {
            out.push(edge);
        }
        cursors[chunk_index] += 1;
        if let Some(&next) = chunks[chunk_index].get(cursors[chunk_index]) {
            heap.push(Reverse((next, chunk_index)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(num_nodes: usize, edges: &[Edge]) -> EdgeList {
        let mut all: Vec<Edge> = edges.to_vec();
        all.sort_unstable();
        all.dedup();
        EdgeList::from_edges(num_nodes, all).unwrap()
    }

    #[test]
    fn builder_matches_collect_sort_dedup() {
        // A deterministic pseudo-random edge stream spanning many chunks.
        let n = 50usize;
        let mut state = 0x1234_5678_u64;
        let mut edges = Vec::new();
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let src = ((state >> 33) % n as u64) as u32;
            let dst = ((state >> 17) % n as u64) as u32;
            edges.push(Edge::new(src, dst));
        }
        for capacity in [1, 7, 64, 4096, usize::MAX] {
            let mut builder = EdgeListBuilder::with_chunk_capacity(n, capacity);
            for &e in &edges {
                builder.push(e).unwrap();
            }
            let built = builder.finish();
            assert_eq!(built, reference(n, &edges), "capacity {capacity}");
            assert!(built.is_sorted());
        }
    }

    #[test]
    fn symmetric_push_matches_symmetrize() {
        let n = 20usize;
        let pairs: &[(u32, u32)] = &[(0, 1), (5, 2), (19, 0), (5, 2), (3, 4)];
        let mut builder = EdgeListBuilder::with_chunk_capacity(n, 3);
        for &(s, d) in pairs {
            builder.push_symmetric(Edge::new(s, d)).unwrap();
        }
        let built = builder.finish();
        let mut reference = EdgeList::from_pairs(n, pairs).unwrap();
        reference.symmetrize();
        assert_eq!(built, reference);
    }

    #[test]
    fn rejects_out_of_range_endpoints() {
        let mut builder = EdgeListBuilder::new(3);
        assert!(matches!(
            builder.push(Edge::new(0, 3)),
            Err(GraphError::NodeOutOfRange { node: 3, .. })
        ));
        assert!(builder.push_symmetric(Edge::new(4, 0)).is_err());
        assert!(builder.is_empty());
    }

    #[test]
    fn empty_builder_finishes_to_an_empty_list() {
        let builder = EdgeListBuilder::new(10);
        let edges = builder.finish();
        assert!(edges.is_empty());
        assert_eq!(edges.num_nodes(), 10);
    }

    #[test]
    fn len_counts_raw_edges_across_chunks() {
        let mut builder = EdgeListBuilder::with_chunk_capacity(4, 2);
        for _ in 0..5 {
            builder.push(Edge::new(0, 1)).unwrap();
        }
        assert_eq!(builder.len(), 5);
        assert!(!builder.is_empty());
        // Duplicates collapse on finish.
        assert_eq!(builder.finish().num_edges(), 1);
    }
}
