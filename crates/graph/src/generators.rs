//! Seeded synthetic graph generators.
//!
//! The paper's evaluation uses real citation graphs fetched through DGL. A
//! hermetic reproduction cannot download them, so the [`datasets`](crate::datasets)
//! module synthesises graphs with matching statistics using the generators in
//! this module. All generators are deterministic given a seed.
//!
//! The generators stream edges through the chunked
//! [`EdgeListBuilder`](crate::EdgeListBuilder) — per-chunk parallel sorts
//! plus one k-way merge — instead of materialising an unsorted list and
//! sorting it at the end, which keeps ogbn-scale synthesis (millions of
//! edges) off the cold-start critical path.

use crate::{Edge, EdgeList, EdgeListBuilder, GraphError, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an Erdős–Rényi `G(n, p)` directed graph (no self-loops).
///
/// Uses geometric skip sampling (Batagelj–Brandes): instead of flipping a
/// coin for each of the `n(n-1)` ordered pairs, the generator draws the gap
/// to the next present edge directly, so a sparse graph costs `O(edges)`
/// rather than `O(n²)`. Edges are emitted in ascending `(src, dst)` order,
/// so the result is born sorted.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::generators;
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let g = generators::erdos_renyi(50, 0.05, 42)?;
/// assert_eq!(g.num_nodes(), 50);
/// assert!(g.is_sorted());
/// # Ok(())
/// # }
/// ```
pub fn erdos_renyi(num_nodes: usize, p: f64, seed: u64) -> Result<EdgeList, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::invalid("p", format!("{p} is not in [0, 1]")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if num_nodes < 2 || p == 0.0 {
        return Ok(EdgeList::new(num_nodes));
    }
    // Linear index space over the n(n-1) ordered pairs with the diagonal
    // removed: index `i` maps to src = i / (n-1) and the i % (n-1)-th
    // non-diagonal destination. Ascending indexes are ascending (src, dst).
    let stride = (num_nodes - 1) as u64;
    let total = num_nodes as u64 * stride;
    let mut edges: Vec<Edge> = Vec::with_capacity((total as f64 * p).ceil() as usize);
    // ln(1 - p) is the geometric distribution's log-survival slope. For
    // p == 1 it is -inf and every gap below computes to 1, emitting all pairs.
    let log_survival = (1.0 - p).ln();
    let mut position = 0u64;
    while position < total {
        let u: f64 = rng.gen();
        // Gap to the next present pair, >= 1: 1 + floor(ln(1-u) / ln(1-p)).
        let skipped = ((1.0 - u).ln() / log_survival).floor();
        position = position.saturating_add(skipped as u64);
        if position >= total {
            break;
        }
        let src = (position / stride) as NodeId;
        let offset = (position % stride) as NodeId;
        let dst = offset + u32::from(offset >= src);
        edges.push(Edge::new(src, dst));
        position += 1;
    }
    Ok(EdgeList::from_sorted_edges_unchecked(num_nodes, edges))
}

/// Generates a power-law graph with approximately `target_edges` directed
/// edges using the R-MAT recursive-quadrant method.
///
/// R-MAT (with the classic `a=0.57, b=0.19, c=0.19, d=0.05` partition) yields
/// the skewed degree distributions characteristic of real-world graphs such
/// as the paper's citation networks: a few hub nodes with large
/// neighbourhoods and many low-degree nodes. Sampled edges are streamed
/// symmetrically (each accepted edge and its reverse) through the chunked
/// builder, which sorts chunks in parallel and merge-deduplicates — the
/// result matches the historical sort-everything-then-dedup flow bit for
/// bit, at a fraction of the single-threaded sort cost.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `num_nodes` is zero or
/// `target_edges` is zero.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::generators;
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let g = generators::rmat(1000, 5000, 1)?;
/// assert_eq!(g.num_nodes(), 1000);
/// assert!(g.num_edges() > 4000);
/// # Ok(())
/// # }
/// ```
pub fn rmat(num_nodes: usize, target_edges: usize, seed: u64) -> Result<EdgeList, GraphError> {
    if num_nodes == 0 {
        return Err(GraphError::invalid("num_nodes", "must be positive"));
    }
    if target_edges == 0 {
        return Err(GraphError::invalid("target_edges", "must be positive"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = (num_nodes as f64).log2().ceil() as u32;
    let side = 1usize << levels;
    let (a, b, c) = (0.57, 0.19, 0.19);

    let mut builder = EdgeListBuilder::new(num_nodes);
    // Symmetrisation halves the unique directed edge count on average, and
    // deduplication removes collisions, so oversample before trimming.
    let attempts = target_edges * 2;
    for _ in 0..attempts {
        let (mut src, mut dst) = (0usize, 0usize);
        let mut span = side;
        while span > 1 {
            span /= 2;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant: no offset
            } else if r < a + b {
                dst += span;
            } else if r < a + b + c {
                src += span;
            } else {
                src += span;
                dst += span;
            }
        }
        if src < num_nodes && dst < num_nodes && src != dst {
            builder
                .push_symmetric(Edge::new(src as NodeId, dst as NodeId))
                .expect("endpoints in range by construction");
        }
    }
    let mut edges = builder.try_finish()?;
    trim_to(&mut edges, target_edges, &mut rng);
    Ok(edges)
}

/// Generates a power-law graph with *exactly* `target_edges` directed edges
/// (after symmetrisation and deduplication) by topping up an R-MAT sample
/// with random edges when the sample falls short.
///
/// The Table II datasets report exact edge counts, so the dataset synthesiser
/// needs an exact-count generator. Top-up candidates are membership-tested
/// with a binary search over the sorted list (the R-MAT output maintains the
/// sorted invariant), not a linear scan.
///
/// # Errors
///
/// Propagates errors from [`rmat`] and rejects impossible edge counts
/// (`target_edges > num_nodes * (num_nodes - 1)`).
pub fn rmat_exact(
    num_nodes: usize,
    target_edges: usize,
    seed: u64,
) -> Result<EdgeList, GraphError> {
    let max_edges = num_nodes.saturating_mul(num_nodes.saturating_sub(1));
    if target_edges > max_edges {
        return Err(GraphError::invalid(
            "target_edges",
            format!("{target_edges} exceeds the maximum simple-graph edge count {max_edges}"),
        ));
    }
    let mut edges = rmat(num_nodes, target_edges, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    if edges.num_edges() < target_edges {
        // Top up with uniform random edges until the exact count is reached.
        // Membership is a binary search over the (immutable, sorted) R-MAT
        // base plus a BTreeSet of top-up edges, merged once at the end —
        // inserting into the sorted vector directly would memmove O(n) bytes
        // per accepted edge, which is catastrophic at ogbn-products scale.
        let base: Vec<Edge> = edges.iter().copied().collect();
        let mut added = std::collections::BTreeSet::new();
        let mut guard = 0usize;
        while base.len() + added.len() < target_edges {
            let src = rng.gen_range(0..num_nodes as NodeId);
            let dst = rng.gen_range(0..num_nodes as NodeId);
            if src != dst {
                let candidate = Edge::new(src, dst);
                if base.binary_search(&candidate).is_err() {
                    added.insert(candidate);
                }
            }
            guard += 1;
            if guard > target_edges * 100 {
                break;
            }
        }
        // Linear merge of two sorted, disjoint sequences.
        let mut all: Vec<Edge> = Vec::with_capacity(base.len() + added.len());
        let mut added = added.into_iter().peekable();
        for edge in base {
            while let Some(a) = added.next_if(|a| *a < edge) {
                all.push(a);
            }
            all.push(edge);
        }
        all.extend(added);
        edges = EdgeList::from_sorted_edges_unchecked(num_nodes, all);
    }
    trim_to(&mut edges, target_edges, &mut rng);
    Ok(edges)
}

/// Removes random edges until the list holds at most `target` edges.
fn trim_to(edges: &mut EdgeList, target: usize, rng: &mut StdRng) {
    if edges.num_edges() <= target {
        return;
    }
    let mut all: Vec<Edge> = edges.iter().copied().collect();
    // Fisher-Yates style partial shuffle, then truncate.
    for i in 0..target {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    all.truncate(target);
    all.sort_unstable();
    *edges = EdgeList::from_sorted_edges_unchecked(edges.num_nodes(), all);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_rejects_bad_probability() {
        assert!(erdos_renyi(10, -0.1, 0).is_err());
        assert!(erdos_renyi(10, 1.5, 0).is_err());
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = erdos_renyi(30, 0.1, 7).unwrap();
        let b = erdos_renyi(30, 0.1, 7).unwrap();
        assert_eq!(a, b);
        let c = erdos_renyi(30, 0.1, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let n = 100;
        let p = 0.05;
        let g = erdos_renyi(n, p, 3).unwrap();
        let expected = (n * (n - 1)) as f64 * p;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < expected * 0.5,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        // p = 0: no edges. p = 1: every ordered non-diagonal pair.
        assert!(erdos_renyi(20, 0.0, 5).unwrap().is_empty());
        let complete = erdos_renyi(20, 1.0, 5).unwrap();
        assert_eq!(complete.num_edges(), 20 * 19);
        // Degenerate node counts.
        assert!(erdos_renyi(0, 0.5, 5).unwrap().is_empty());
        assert!(erdos_renyi(1, 0.5, 5).unwrap().is_empty());
    }

    #[test]
    fn erdos_renyi_is_simple_and_sorted() {
        let g = erdos_renyi(80, 0.07, 11).unwrap();
        assert!(g.is_sorted());
        let slice = g.as_slice();
        assert!(slice.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(slice.iter().all(|e| e.src != e.dst), "no self-loops");
        assert!(slice.iter().all(|e| e.src < 80 && e.dst < 80));
    }

    #[test]
    fn rmat_rejects_degenerate_parameters() {
        assert!(rmat(0, 10, 0).is_err());
        assert!(rmat(10, 0, 0).is_err());
    }

    #[test]
    fn rmat_is_deterministic_and_simple() {
        let a = rmat(256, 1000, 11).unwrap();
        let b = rmat(256, 1000, 11).unwrap();
        assert_eq!(a, b);
        // simple graph: no self loops, no duplicates
        let mut seen = std::collections::HashSet::new();
        for e in a.iter() {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert(*e));
        }
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = rmat(512, 4000, 5).unwrap();
        let degs = g.in_degrees();
        let max = *degs.iter().max().unwrap();
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            max as f64 > 3.0 * avg,
            "power-law graph should have hubs: max {max}, avg {avg:.1}"
        );
    }

    #[test]
    fn rmat_matches_the_historical_symmetrize_flow() {
        // The streaming builder path must reproduce the original
        // build-everything-then-symmetrize flow bit for bit: same RNG
        // consumption, same sorted/deduped set, same trim.
        let (n, target, seed) = (200usize, 900usize, 17u64);
        let streamed = rmat(n, target, seed).unwrap();

        // Historical reference: replay the identical sampling loop into a
        // plain list, then symmetrize + trim the old way.
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = (n as f64).log2().ceil() as u32;
        let side = 1usize << levels;
        let (a, b, c) = (0.57, 0.19, 0.19);
        let mut edges = EdgeList::new(n);
        for _ in 0..target * 2 {
            let (mut src, mut dst) = (0usize, 0usize);
            let mut span = side;
            while span > 1 {
                span /= 2;
                let r: f64 = rng.gen();
                if r < a {
                } else if r < a + b {
                    dst += span;
                } else if r < a + b + c {
                    src += span;
                } else {
                    src += span;
                    dst += span;
                }
            }
            if src < n && dst < n && src != dst {
                edges.push(Edge::new(src as NodeId, dst as NodeId)).unwrap();
            }
        }
        edges.symmetrize();
        trim_to(&mut edges, target, &mut rng);
        assert_eq!(streamed, edges);
    }

    #[test]
    fn rmat_exact_hits_requested_edge_count() {
        let g = rmat_exact(300, 2000, 9).unwrap();
        assert_eq!(g.num_edges(), 2000);
        assert_eq!(g.num_nodes(), 300);
    }

    #[test]
    fn rmat_exact_rejects_impossible_counts() {
        assert!(rmat_exact(3, 100, 0).is_err());
    }

    #[test]
    fn rmat_exact_small_graph() {
        let g = rmat_exact(10, 20, 123).unwrap();
        assert_eq!(g.num_edges(), 20);
        for e in g.iter() {
            assert!(e.src < 10 && e.dst < 10);
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn rmat_exact_matches_the_historical_insert_top_up() {
        // The BTreeSet + merge top-up must reproduce the original
        // insert-into-sorted-vec flow bit for bit: same RNG consumption,
        // same accept/reject decisions, same final ordering.
        let (n, target, seed) = (150usize, 1100usize, 21u64);
        let fast = rmat_exact(n, target, seed).unwrap();

        let mut edges = rmat(n, target, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        if edges.num_edges() < target {
            let mut all: Vec<Edge> = edges.iter().copied().collect();
            let mut guard = 0usize;
            while all.len() < target {
                let src = rng.gen_range(0..n as NodeId);
                let dst = rng.gen_range(0..n as NodeId);
                if src != dst {
                    let candidate = Edge::new(src, dst);
                    if let Err(slot) = all.binary_search(&candidate) {
                        all.insert(slot, candidate);
                    }
                }
                guard += 1;
                if guard > target * 100 {
                    break;
                }
            }
            edges = EdgeList::from_sorted_edges_unchecked(n, all);
        }
        trim_to(&mut edges, target, &mut rng);
        assert!(
            fast.num_edges() == target,
            "the sample must actually fall short so the top-up runs"
        );
        assert_eq!(fast, edges);
    }

    #[test]
    fn rmat_exact_output_is_sorted() {
        let g = rmat_exact(120, 800, 3).unwrap();
        assert!(g.is_sorted());
        assert!(g.as_slice().windows(2).all(|w| w[0] < w[1]));
    }
}
