//! Graph substrate for the GNNerator reproduction.
//!
//! The paper evaluates GNNerator on three citation graphs (Cora, Citeseer,
//! Pubmed — Table II) that are sharded with a GridGraph-style two-dimensional
//! sharding scheme (Section II-B, Figure 1) before being streamed through the
//! Graph Engine. This crate provides everything between "a graph exists" and
//! "the accelerator can be pointed at it":
//!
//! * [`EdgeList`] and [`CsrGraph`] — edge-list and compressed-sparse-row
//!   graph representations,
//! * [`EdgeListBuilder`] — streaming chunked construction: generators emit
//!   edge chunks that are sorted in parallel and k-way merged, instead of
//!   sorting one giant vector at the end; under a bounded [`MemoryBudget`]
//!   sealed chunks spill to disk run-files and the merge streams them back,
//! * [`MemoryBudget`] (and the [`memory`] module) — the out-of-core memory
//!   cap (`GNNERATOR_MEM_BUDGET`) plus process-wide spill/peak telemetry,
//! * [`NodeFeatures`] — the dense per-node feature table,
//! * [`generators`] — seeded synthetic graph generators (Erdős–Rényi with
//!   geometric skip sampling and an R-MAT/power-law generator) used to stand
//!   in for the real datasets,
//! * [`datasets`] — the Table II dataset specifications (plus an ogbn-scale
//!   extension) and synthesisers,
//! * [`ShardGrid`] — the 2-D shard grid, stored sparsely as one sorted edge
//!   arena plus per-occupied-shard [`ShardMeta`], with source-/destination-
//!   stationary traversal orders that skip empty cells; under a bounded
//!   budget (or an explicit [`GridResidency`]) the arena stays on disk and
//!   shard extents are faulted through a bounded LRU [`ShardWindow`],
//! * [`ArtifactCache`] — a persistent, checksummed on-disk store of
//!   synthesised datasets and shard grids, keyed by `(spec, seed)` and shard
//!   parameters, so repeated harness runs skip synthesis and re-sharding,
//! * [`GraphStats`] — degree and locality statistics used in reports.
//!
//! # Examples
//!
//! ```
//! use gnnerator_graph::{generators, ShardGrid};
//!
//! # fn main() -> Result<(), gnnerator_graph::GraphError> {
//! let graph = generators::erdos_renyi(64, 0.1, 7)?;
//! let grid = ShardGrid::build(&graph, 16)?;
//! assert_eq!(grid.grid_dim(), 4);
//! assert_eq!(grid.total_edges(), graph.num_edges());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
mod csr;
pub mod datasets;
mod edge_builder;
mod edge_list;
mod error;
mod features;
pub mod generators;
pub mod memory;
mod plan_cache;
pub mod reorder;
mod shard;
mod stats;

pub use cache::{ArtifactCache, CACHE_ENV_VAR, FORMAT_VERSION};
pub use csr::CsrGraph;
pub use edge_builder::{EdgeListBuilder, DEFAULT_CHUNK_CAPACITY};
pub use edge_list::{Edge, EdgeList};
pub use error::GraphError;
pub use features::NodeFeatures;
pub use memory::{
    memory_telemetry, GridResidency, MemoryBudget, MemoryTelemetry, GRID_RESIDENCY_ENV_VAR,
    MEM_BUDGET_ENV_VAR,
};
pub use plan_cache::{PlanKey, ShardPlanCache};
pub use shard::{
    EdgeSegment, OccupiedTraversal, SerpentineCoords, ShardCoord, ShardGrid, ShardMeta, ShardView,
    ShardWindow, TraversalOrder, WindowPool, WindowStats, BYTES_PER_EDGE,
    BYTES_PER_FEATURE_ELEMENT,
};
pub use stats::GraphStats;

/// Node identifier type used throughout the workspace.
///
/// 32 bits is enough for the paper's datasets (the largest, Pubmed, has
/// 19 717 vertices) and matches the 4-byte edge-record entries assumed by the
/// Graph Engine's edge memory sizing.
pub type NodeId = u32;
