//! The Table II benchmark datasets and their synthesisers.
//!
//! The paper evaluates on Cora, Citeseer and Pubmed. We cannot download the
//! real graphs in a hermetic build, so [`DatasetSpec::synthesize`] generates
//! a seeded power-law graph with the *published* vertex count, edge count and
//! feature dimension. The accelerator's timing behaviour depends on exactly
//! these statistics (plus degree skew, which the R-MAT generator preserves
//! qualitatively), so the reproduction's speedup *shapes* carry over even
//! though the node features themselves are random.

use crate::{generators, CsrGraph, EdgeList, GraphError, NodeFeatures};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for one of the benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Cora: 2708 vertices, 10556 edges, 1433-dimensional features.
    Cora,
    /// Citeseer: 3327 vertices, 9104 edges, 3703-dimensional features.
    Citeseer,
    /// Pubmed: 19717 vertices, 88648 edges, 500-dimensional features.
    Pubmed,
    /// ogbn-arxiv: 169343 vertices, 1166243 directed edges, 128-dimensional
    /// features — an OGB-scale workload (an order of magnitude beyond
    /// Table II) that the streaming graph-build pipeline opens to the sweep.
    /// Synthesised, like the others; swap in the real download when
    /// networked builds land.
    OgbnArxiv,
    /// ogbn-products scale class: 2.4M vertices, 60M directed edges,
    /// 100-dimensional features — the out-of-core stress workload. Its edge
    /// arena alone is ~480 MB, so building it under a smaller
    /// `GNNERATOR_MEM_BUDGET` exercises the disk-spill + streaming-shard
    /// path end to end. Synthesised (the real ogbn-products has 2 449 029
    /// vertices and ~61.9M directed edges; the round counts keep synthesis
    /// and cache keys tidy at the same scale class).
    OgbnProductsScale,
}

impl DatasetKind {
    /// The paper's three Table II datasets, in the order the table lists
    /// them. [`DatasetKind::OgbnArxiv`] is intentionally excluded: the
    /// figure/table reproductions enumerate exactly the paper's workloads.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Cora,
        DatasetKind::Citeseer,
        DatasetKind::Pubmed,
    ];

    /// Every dataset the harness knows, Table II plus the ogbn-scale
    /// extensions.
    pub const EXTENDED: [DatasetKind; 5] = [
        DatasetKind::Cora,
        DatasetKind::Citeseer,
        DatasetKind::Pubmed,
        DatasetKind::OgbnArxiv,
        DatasetKind::OgbnProductsScale,
    ];

    /// Stable per-kind offset added to a base synthesis seed so each dataset
    /// gets a distinct deterministic seed.
    pub fn seed_offset(self) -> u64 {
        match self {
            DatasetKind::Cora => 0,
            DatasetKind::Citeseer => 1,
            DatasetKind::Pubmed => 2,
            DatasetKind::OgbnArxiv => 3,
            DatasetKind::OgbnProductsScale => 4,
        }
    }

    /// The Table II specification for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetKind::Cora => DatasetSpec {
                kind: self,
                name: "cora",
                vertices: 2708,
                edges: 10556,
                feature_dim: 1433,
            },
            DatasetKind::Citeseer => DatasetSpec {
                kind: self,
                name: "citeseer",
                vertices: 3327,
                edges: 9104,
                feature_dim: 3703,
            },
            DatasetKind::Pubmed => DatasetSpec {
                kind: self,
                name: "pubmed",
                vertices: 19717,
                edges: 88648,
                feature_dim: 500,
            },
            DatasetKind::OgbnArxiv => DatasetSpec {
                kind: self,
                name: "ogbn-arxiv",
                vertices: 169_343,
                edges: 1_166_243,
                feature_dim: 128,
            },
            DatasetKind::OgbnProductsScale => DatasetSpec {
                kind: self,
                name: "ogbn-products",
                vertices: 2_400_000,
                edges: 60_000_000,
                feature_dim: 100,
            },
        }
    }

    /// Number of output classes of the dataset — the model's output
    /// dimension in DGL's node-classification setup, which the benchmark
    /// harness and the serving API both default to.
    pub fn num_classes(self) -> usize {
        match self {
            DatasetKind::Cora => 7,
            DatasetKind::Citeseer => 6,
            DatasetKind::Pubmed => 3,
            DatasetKind::OgbnArxiv => 40,
            DatasetKind::OgbnProductsScale => 47,
        }
    }

    /// Short lowercase name as used in the paper's figure labels
    /// (`cora`, `citeseer`, `pub`; `arxiv` / `products` for the ogbn
    /// extensions).
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetKind::Cora => "cora",
            DatasetKind::Citeseer => "citeseer",
            DatasetKind::Pubmed => "pub",
            DatasetKind::OgbnArxiv => "arxiv",
            DatasetKind::OgbnProductsScale => "products",
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Static description of a dataset (the row of Table II).
///
/// # Examples
///
/// ```
/// use gnnerator_graph::datasets::DatasetKind;
///
/// let spec = DatasetKind::Cora.spec();
/// assert_eq!(spec.vertices, 2708);
/// assert_eq!(spec.feature_dim, 1433);
/// assert!(spec.feature_megabytes() > 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub kind: DatasetKind,
    /// Lowercase dataset name.
    pub name: &'static str,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Input feature dimension.
    pub feature_dim: usize,
}

impl DatasetSpec {
    /// Size of the input feature table in megabytes (fp32 features), the
    /// quantity Table II reports in its "Size" column.
    pub fn feature_megabytes(&self) -> f64 {
        (self.vertices * self.feature_dim * 4) as f64 / 1.0e6
    }

    /// Average degree of the graph.
    pub fn average_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Synthesises a dataset with these statistics.
    ///
    /// The graph topology comes from [`generators::rmat_exact`]; node features
    /// are drawn uniformly from `[0, 1)` with the same seed, which mimics the
    /// sparsity-free dense feature tables DGL hands to the accelerator.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (they cannot occur for the built-in specs).
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_graph::datasets::DatasetKind;
    /// # fn main() -> Result<(), gnnerator_graph::GraphError> {
    /// // Synthesise a scaled-down Cora for fast tests.
    /// let tiny = DatasetKind::Cora.spec().scaled(0.05).synthesize(42)?;
    /// assert_eq!(tiny.features.dim(), 1433);
    /// # Ok(())
    /// # }
    /// ```
    pub fn synthesize(&self, seed: u64) -> Result<Dataset, GraphError> {
        self.validate()?;
        let start = std::time::Instant::now();
        let edge_list = generators::rmat_exact(self.vertices, self.edges, seed)?;
        let graph = CsrGraph::from_edge_list(&edge_list);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let features = NodeFeatures::from_fn(self.vertices, self.feature_dim, |_, _| {
            rng.gen_range(0.0..1.0)
        });
        Ok(Dataset {
            spec: *self,
            seed,
            edge_list,
            graph,
            features,
            build_seconds: start.elapsed().as_secs_f64(),
            loaded_from_cache: false,
        })
    }

    /// Returns a proportionally scaled-down copy of this spec.
    ///
    /// Scaling keeps the feature dimension (the architecturally interesting
    /// quantity) and shrinks vertex/edge counts by `factor`, clamped to at
    /// least 16 vertices and 32 edges so tiny factors can never produce a
    /// 0-node or 0-edge graph that the sharder would reject downstream. Used
    /// by tests and by the fast variants of the benchmark harness.
    ///
    /// Prefer [`DatasetSpec::try_scaled`] when the factor comes from user
    /// input: it reports non-finite or non-positive factors as a typed error
    /// instead of silently clamping.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        let factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            0.0 // the clamps below produce the minimum viable spec
        };
        let vertices = ((self.vertices as f64 * factor).round() as usize).max(16);
        let max_edges = vertices * (vertices - 1);
        let edges = ((self.edges as f64 * factor).round() as usize)
            .max(32)
            .min(max_edges);
        DatasetSpec {
            kind: self.kind,
            name: self.name,
            vertices,
            edges,
            feature_dim: self.feature_dim,
        }
    }

    /// Like [`DatasetSpec::scaled`], but rejects factors that cannot describe
    /// a graph (NaN, infinite, zero or negative) with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for non-finite or
    /// non-positive factors.
    pub fn try_scaled(&self, factor: f64) -> Result<DatasetSpec, GraphError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(GraphError::invalid(
                "factor",
                format!("scale factor {factor} is not a positive finite number"),
            ));
        }
        Ok(self.scaled(factor))
    }

    /// Checks that this spec describes a graph the rest of the pipeline can
    /// shard and simulate.
    ///
    /// The built-in Table II specs and anything produced by
    /// [`DatasetSpec::scaled`] always pass; hand-rolled specs with zero
    /// vertices/edges/feature dimensions (or more edges than a simple graph
    /// can hold) are rejected here rather than panicking inside the sharder.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DegenerateDataset`] describing the violation.
    pub fn validate(&self) -> Result<(), GraphError> {
        let degenerate = |message: String| GraphError::DegenerateDataset {
            name: self.name.to_string(),
            vertices: self.vertices,
            edges: self.edges,
            message,
        };
        if self.vertices == 0 {
            return Err(degenerate("a graph needs at least one vertex".to_string()));
        }
        if self.edges == 0 {
            return Err(degenerate("a graph needs at least one edge".to_string()));
        }
        if self.feature_dim == 0 {
            return Err(degenerate(
                "features need at least one dimension".to_string(),
            ));
        }
        let max_edges = self
            .vertices
            .saturating_mul(self.vertices.saturating_sub(1));
        if self.edges > max_edges {
            return Err(degenerate(format!(
                "{} edges exceed the simple-graph maximum of {max_edges}",
                self.edges
            )));
        }
        Ok(())
    }

    /// Returns a copy of this spec with a different feature dimension.
    ///
    /// The Figure 5 scaling study sweeps the hidden dimension; sweeping the
    /// input dimension in tests uses this helper.
    pub fn with_feature_dim(&self, feature_dim: usize) -> DatasetSpec {
        DatasetSpec {
            feature_dim,
            ..*self
        }
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} vertices, {} edges, {}-d features ({:.1} MB)",
            self.name,
            self.vertices,
            self.edges,
            self.feature_dim,
            self.feature_megabytes()
        )
    }
}

/// A fully materialised dataset: topology (edge list + CSR) and features.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The specification this dataset was synthesised from.
    pub spec: DatasetSpec,
    /// The seed it was synthesised with — together with `spec` this is the
    /// dataset's identity in the persistent
    /// [`ArtifactCache`](crate::ArtifactCache).
    pub seed: u64,
    /// Edge-list form (input to the sharder).
    pub edge_list: EdgeList,
    /// CSR form (input to the reference executor).
    pub graph: CsrGraph,
    /// Node feature table.
    pub features: NodeFeatures,
    /// Wall-clock seconds materialising this dataset took (synthesis, or a
    /// cache load — see `loaded_from_cache`). Feeds the
    /// `graph_build_seconds` telemetry in `BENCH_sweep.json`.
    pub build_seconds: f64,
    /// `true` when the dataset was read back from the artifact cache rather
    /// than synthesised.
    pub loaded_from_cache: bool,
}

impl Dataset {
    /// Number of vertices actually materialised.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of directed edges actually materialised.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Synthesises all three Table II datasets with consecutive seeds.
///
/// # Errors
///
/// Propagates generator errors (they cannot occur for the built-in specs).
pub fn synthesize_all(seed: u64) -> Result<Vec<Dataset>, GraphError> {
    DatasetKind::ALL
        .iter()
        .enumerate()
        .map(|(i, kind)| kind.spec().synthesize(seed + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_specs_match_the_paper() {
        let cora = DatasetKind::Cora.spec();
        assert_eq!(
            (cora.vertices, cora.edges, cora.feature_dim),
            (2708, 10556, 1433)
        );
        let citeseer = DatasetKind::Citeseer.spec();
        assert_eq!(
            (citeseer.vertices, citeseer.edges, citeseer.feature_dim),
            (3327, 9104, 3703)
        );
        let pubmed = DatasetKind::Pubmed.spec();
        assert_eq!(
            (pubmed.vertices, pubmed.edges, pubmed.feature_dim),
            (19717, 88648, 500)
        );
    }

    #[test]
    fn feature_sizes_are_close_to_table_ii() {
        // Table II reports 15.6 MB / 49 MB / 40.5 MB.
        assert!((DatasetKind::Cora.spec().feature_megabytes() - 15.5).abs() < 1.0);
        assert!((DatasetKind::Citeseer.spec().feature_megabytes() - 49.0).abs() < 1.5);
        assert!((DatasetKind::Pubmed.spec().feature_megabytes() - 39.4).abs() < 1.5);
    }

    #[test]
    fn degenerate_specs_synthesize_to_typed_errors() {
        let base = DatasetKind::Cora.spec();
        for broken in [
            DatasetSpec {
                vertices: 0,
                ..base
            },
            DatasetSpec { edges: 0, ..base },
            DatasetSpec {
                feature_dim: 0,
                ..base
            },
            DatasetSpec {
                vertices: 3,
                edges: 100,
                ..base
            },
        ] {
            assert!(broken.validate().is_err(), "{broken}");
            assert!(
                matches!(
                    broken.synthesize(1),
                    Err(GraphError::DegenerateDataset { .. })
                ),
                "{broken}"
            );
        }
        assert!(base.validate().is_ok());
    }

    #[test]
    fn pathological_scale_factors_clamp_to_viable_specs() {
        for factor in [0.0, -1.0, 1e-12, f64::NAN, f64::NEG_INFINITY] {
            let spec = DatasetKind::Pubmed.spec().scaled(factor);
            assert!(spec.validate().is_ok(), "factor {factor} produced {spec}");
            assert!(spec.vertices >= 16);
            assert!(spec.edges >= 32);
            // The clamped spec must actually synthesise and shard.
            let ds = spec.synthesize(5).unwrap();
            assert!(ds.num_nodes() >= 16);
            assert!(ds.num_edges() >= 32);
        }
    }

    #[test]
    fn try_scaled_rejects_non_positive_factors() {
        let spec = DatasetKind::Cora.spec();
        for factor in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    spec.try_scaled(factor),
                    Err(GraphError::InvalidParameter { .. })
                ),
                "factor {factor} should be rejected"
            );
        }
        assert_eq!(spec.try_scaled(0.5).unwrap(), spec.scaled(0.5));
    }

    #[test]
    fn scaled_spec_preserves_feature_dim() {
        let tiny = DatasetKind::Pubmed.spec().scaled(0.01);
        assert_eq!(tiny.feature_dim, 500);
        assert!(tiny.vertices < 500);
        assert!(tiny.vertices >= 16);
    }

    #[test]
    fn with_feature_dim_overrides_dim_only() {
        let spec = DatasetKind::Cora.spec().with_feature_dim(64);
        assert_eq!(spec.feature_dim, 64);
        assert_eq!(spec.vertices, 2708);
    }

    #[test]
    fn synthesize_small_dataset_matches_spec() {
        let spec = DatasetKind::Cora.spec().scaled(0.02);
        let ds = spec.synthesize(7).unwrap();
        assert_eq!(ds.num_nodes(), spec.vertices);
        assert_eq!(ds.num_edges(), spec.edges);
        assert_eq!(ds.features.dim(), spec.feature_dim);
        assert_eq!(ds.features.num_nodes(), spec.vertices);
        ds.features.check_compatible(&ds.graph).unwrap();
    }

    #[test]
    fn synthesize_is_deterministic() {
        let spec = DatasetKind::Citeseer.spec().scaled(0.02);
        let a = spec.synthesize(3).unwrap();
        let b = spec.synthesize(3).unwrap();
        assert_eq!(a.edge_list, b.edge_list);
        assert_eq!(a.features, b.features);
        let c = spec.synthesize(4).unwrap();
        assert_ne!(a.edge_list, c.edge_list);
    }

    #[test]
    fn short_names_match_figure_labels() {
        assert_eq!(DatasetKind::Cora.short_name(), "cora");
        assert_eq!(DatasetKind::Pubmed.short_name(), "pub");
        assert_eq!(DatasetKind::Cora.to_string(), "cora");
    }

    #[test]
    fn display_spec_mentions_counts() {
        let s = DatasetKind::Cora.spec().to_string();
        assert!(s.contains("2708"));
        assert!(s.contains("10556"));
    }

    #[test]
    fn average_degree_is_sensible() {
        for kind in DatasetKind::EXTENDED {
            let d = kind.spec().average_degree();
            // Citation graphs are sparse (degree 3–7); ogbn-products is a
            // co-purchase graph and much denser (real degree ~25).
            let band = match kind {
                DatasetKind::OgbnProductsScale => 15.0..50.0,
                _ => 2.0..10.0,
            };
            assert!(band.contains(&d), "{kind}: average degree {d}");
        }
    }

    #[test]
    fn ogbn_arxiv_spec_is_beyond_table_ii_scale() {
        let spec = DatasetKind::OgbnArxiv.spec();
        assert_eq!(
            (spec.vertices, spec.edges, spec.feature_dim),
            (169_343, 1_166_243, 128)
        );
        assert!(spec.edges >= 1_000_000, "ogbn-scale means >= 1M edges");
        assert_eq!(spec.name, "ogbn-arxiv");
        assert_eq!(DatasetKind::OgbnArxiv.short_name(), "arxiv");
        assert!(spec.validate().is_ok());
        // Scaled-down variants stay viable for smoke runs.
        let small = spec.scaled(0.05);
        assert!(small.validate().is_ok());
        assert!(small.edges >= 32);
    }

    #[test]
    fn seed_offsets_are_distinct_and_stable() {
        let offsets: Vec<u64> = DatasetKind::EXTENDED
            .iter()
            .map(|k| k.seed_offset())
            .collect();
        assert_eq!(offsets, vec![0, 1, 2, 3, 4]);
        // ALL stays the paper's trio: figure reproductions must not grow.
        assert_eq!(DatasetKind::ALL.len(), 3);
        assert!(!DatasetKind::ALL.contains(&DatasetKind::OgbnArxiv));
        assert!(!DatasetKind::ALL.contains(&DatasetKind::OgbnProductsScale));
    }

    #[test]
    fn ogbn_products_scale_spec_is_the_out_of_core_stressor() {
        let spec = DatasetKind::OgbnProductsScale.spec();
        assert_eq!(
            (spec.vertices, spec.edges, spec.feature_dim),
            (2_400_000, 60_000_000, 100)
        );
        assert!(spec.edges >= 50_000_000, "out-of-core means >= 50M edges");
        // The edge arena alone (8 bytes/edge) dwarfs any smoke-test budget.
        assert!(spec.edges * 8 >= 400 << 20);
        assert_eq!(spec.name, "ogbn-products");
        assert_eq!(DatasetKind::OgbnProductsScale.short_name(), "products");
        assert_eq!(DatasetKind::OgbnProductsScale.num_classes(), 47);
        assert!(spec.validate().is_ok());
        // Scaled-down variants stay viable for smoke runs and CI.
        let small = spec.scaled(0.001);
        assert!(small.validate().is_ok());
        let tiny = small.synthesize(11).unwrap();
        assert_eq!(tiny.num_edges(), small.edges);
    }

    #[test]
    fn synthesize_stamps_provenance() {
        let spec = DatasetKind::Cora.spec().scaled(0.02);
        let ds = spec.synthesize(9).unwrap();
        assert_eq!(ds.seed, 9);
        assert!(!ds.loaded_from_cache);
        assert!(ds.build_seconds > 0.0);
    }
}
