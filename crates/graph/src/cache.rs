//! Persistent on-disk artifact cache for expensive graph-build products.
//!
//! Dataset synthesis and shard-grid construction are deterministic functions
//! of small keys — `(DatasetSpec, seed)` and `(spec, seed, nodes_per_shard,
//! include_self_loops)` respectively — so their outputs can be memoised on
//! disk and reloaded by later processes. GNNBuilder and HP-GNN both lean on
//! exactly this kind of cached preprocessing to make accelerator design-space
//! exploration cheap; here it turns the repeated-harness-run cold start
//! (synthesis + re-sharding, ~25% of a full sweep) into a handful of file
//! reads.
//!
//! # Format
//!
//! Artifacts are single files under the cache root (default
//! `target/gnnerator-cache/`, overridable — or disabled with `off` — via the
//! `GNNERATOR_CACHE` environment variable). Each file is a hand-rolled
//! little-endian binary record (the workspace's serde is a hermetic no-op
//! shim, so there is no derive-based serialisation to lean on):
//!
//! ```text
//! magic    b"GNNA"
//! version  u32      — FORMAT_VERSION; any mismatch rejects the artifact
//! kind     u8       — 1 = dataset, 2 = shard grid
//! key_len  u32      — length of the UTF-8 key string
//! key      [u8]     — full key, verified on load (collision-proof)
//! len      u64      — payload length in bytes
//! checksum u64      — FNV-1a 64 over the payload
//! payload  [u8]
//! ```
//!
//! Since format version 2 the shard-grid payload is *segmented*: the grid
//! header and the per-shard metadata table (the arena extent — offset and
//! edge count — of every occupied shard) come **before** the edge arena
//! bytes, so a loader can parse everything it needs to plan the read
//! without touching the arena, then stream the arena through a bounded
//! buffer. Under a bounded [`MemoryBudget`] [`ArtifactCache::load_grid`]
//! takes exactly that chunked path instead of deserialising the file
//! wholesale; [`ArtifactCache::store_grid`] symmetrically streams the
//! arena through a buffered writer inside the same temp+rename discipline.
//!
//! Loads distinguish a *miss* (no file: `Ok(None)`) from an *unusable
//! artifact* (bad magic, stale version, checksum or key mismatch, truncated
//! payload: [`GraphError::CacheArtifact`]). Callers treat the latter as a
//! miss with a cause and rebuild; stores overwrite atomically
//! (write-to-temp + rename), so racing writers and torn writes cannot
//! corrupt a previously good entry.
//!
//! An unusable artifact is additionally **quarantined**: the file is renamed
//! to `<name>.corrupt` (preserving the evidence for post-mortems) and
//! counted in [`ArtifactCache::corrupt_artifacts`], so the same bad sector
//! cannot re-fail — and silently trigger a rebuild — on every later run.
//!
//! The read and write paths carry the `cache_read` / `cache_write`
//! failpoints (see `gnnerator_faults`): injected faults surface as
//! [`GraphError::CacheArtifact`] without quarantining the (healthy) file.

use crate::datasets::{Dataset, DatasetKind, DatasetSpec};
use crate::memory::MemoryBudget;
use crate::{CsrGraph, Edge, EdgeList, GraphError, NodeFeatures, ShardCoord, ShardGrid, ShardMeta};
use gnnerator_observe::Recorder;
use gnnerator_tensor::Matrix;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// On-disk format version; bump whenever the byte layout changes so stale
/// artifacts are rejected (and rebuilt) instead of misread. Version 2
/// reordered the shard-grid payload into the segmented header-first layout.
pub const FORMAT_VERSION: u32 = 2;

/// Environment variable controlling the cache. Accepted values (matched
/// after trimming surrounding whitespace):
///
/// | value                                  | behaviour                        |
/// |----------------------------------------|----------------------------------|
/// | unset                                  | cache at `target/gnnerator-cache` |
/// | `off` / `OFF` (any case), `0`, empty   | cache disabled                   |
/// | anything else                          | used as the cache directory      |
///
/// `off`, `0` and the empty string are deliberately *not* interpreted as
/// relative cache directories: `GNNERATOR_CACHE= cargo test` and
/// `GNNERATOR_CACHE=0 …` mean "no cache", never "a directory named `0`".
pub const CACHE_ENV_VAR: &str = "GNNERATOR_CACHE";

const MAGIC: &[u8; 4] = b"GNNA";
const KIND_DATASET: u8 = 1;
const KIND_GRID: u8 = 2;

/// Monotonic nonce making concurrent temp-file names unique within a process.
static TEMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// How old an orphaned `*.tmp.<pid>.<nonce>` file must be before a cache
/// opened on the same root deletes it. A process killed between
/// `std::fs::write` and `rename` leaves its temp file behind forever; the
/// window is generous enough that no live writer (stores take milliseconds)
/// can have its in-flight temp swept out from under it.
const STALE_TEMP_WINDOW: std::time::Duration = std::time::Duration::from_secs(60 * 60);

/// A persistent, checksummed store of graph-build artifacts.
///
/// The cache is safe to share across threads (all methods take `&self`) and
/// across processes (stores are atomic renames; loads verify checksums).
///
/// # Examples
///
/// ```
/// use gnnerator_graph::datasets::DatasetKind;
/// use gnnerator_graph::ArtifactCache;
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let dir = std::env::temp_dir().join("gnnerator-cache-doctest");
/// let cache = ArtifactCache::new(&dir);
/// let spec = DatasetKind::Cora.spec().scaled(0.02);
/// let dataset = spec.synthesize(7)?;
/// cache.store_dataset(&dataset)?;
/// let reloaded = cache.load_dataset(&spec, 7)?.expect("hit");
/// assert_eq!(reloaded.edge_list, dataset.edge_list);
/// assert!(reloaded.loaded_from_cache);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ArtifactCache {
    /// `None` means the cache is disabled: every load misses, every store is
    /// a no-op.
    root: Option<PathBuf>,
    /// Artifacts found unusable and renamed to `<name>.corrupt` by this
    /// cache instance.
    corrupt_artifacts: AtomicUsize,
    /// Memory budget governing grid loads: bounded budgets take the
    /// segmented chunk-read path, unbounded budgets the wholesale one.
    budget: MemoryBudget,
    /// Telemetry sink for grid-load counts. Defaults to the process global;
    /// a scoped recorder attributes this cache's loads to its scope.
    recorder: Recorder,
}

impl ArtifactCache {
    /// Creates a cache rooted at `root` (created lazily on first store).
    ///
    /// Opening a root also sweeps orphaned `*.tmp.<pid>.<nonce>` files left
    /// by writers killed between their temp write and the publishing rename,
    /// abandoned spill run-files, and stale `*.corrupt` quarantine files —
    /// but only files older than a safety window, so a concurrent store's
    /// in-flight temp file is never touched and fresh quarantines keep
    /// their post-mortem value.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        sweep_stale_temp_files(&root, STALE_TEMP_WINDOW);
        Self {
            root: Some(root),
            corrupt_artifacts: AtomicUsize::new(0),
            budget: MemoryBudget::from_env(),
            recorder: Recorder::default(),
        }
    }

    /// Creates a disabled cache: loads always miss, stores are no-ops.
    pub fn disabled() -> Self {
        Self {
            root: None,
            corrupt_artifacts: AtomicUsize::new(0),
            budget: MemoryBudget::from_env(),
            recorder: Recorder::default(),
        }
    }

    /// Overrides the memory budget governing grid loads (the default comes
    /// from `GNNERATOR_MEM_BUDGET`; see [`MemoryBudget::from_env`]).
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the telemetry sink grid-load counts are recorded into
    /// (the default is the process-global recorder).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The telemetry sink this cache records into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The memory budget governing this cache's grid loads.
    pub fn memory_budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Builds the cache from the `GNNERATOR_CACHE` environment variable (see
    /// [`CACHE_ENV_VAR`]).
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var(CACHE_ENV_VAR).ok().as_deref())
    }

    /// The pure policy behind [`ArtifactCache::from_env`] (see
    /// [`CACHE_ENV_VAR`] for the value table): `None` (unset) selects the
    /// default root; `off` (case-insensitive), `0` and the empty string
    /// disable the cache; anything else is the root directory.
    pub fn from_env_value(value: Option<&str>) -> Self {
        match env_root(value) {
            Some(root) => Self::new(root),
            None => Self::disabled(),
        }
    }

    /// Returns `true` when the cache has a backing directory.
    pub fn is_enabled(&self) -> bool {
        self.root.is_some()
    }

    /// The cache root, if enabled.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// How many unusable artifacts this cache instance has quarantined
    /// (renamed to `<name>.corrupt`).
    pub fn corrupt_artifacts(&self) -> usize {
        self.corrupt_artifacts.load(Ordering::Relaxed)
    }

    /// Maps an unusable-artifact error to a quarantine: the bad file is
    /// renamed to `<name>.corrupt` (best-effort) and counted, so the next
    /// load of this key is a clean miss instead of the same failure again.
    fn quarantining<T>(&self, path: &Path, result: Result<T, GraphError>) -> Result<T, GraphError> {
        if matches!(result, Err(GraphError::CacheArtifact { .. })) {
            if std::fs::rename(path, path.with_extension("corrupt")).is_err() {
                // Racing quarantiners or a vanished file: make sure the bad
                // artifact is gone either way.
                std::fs::remove_file(path).ok();
            }
            self.corrupt_artifacts.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The cache identity of a `(spec, seed)` dataset.
    pub fn dataset_key(spec: &DatasetSpec, seed: u64) -> String {
        format!(
            "dataset/{}/v{}/e{}/f{}/seed{}",
            spec.name, spec.vertices, spec.edges, spec.feature_dim, seed
        )
    }

    /// The cache identity of a shard grid derived from the graph identified
    /// by `graph_key`.
    pub fn grid_key(graph_key: &str, nodes_per_shard: usize, include_self_loops: bool) -> String {
        format!(
            "{graph_key}/nps{nodes_per_shard}/loops{}",
            u8::from(include_self_loops)
        )
    }

    fn file_for(&self, prefix: &str, key: &str) -> Option<PathBuf> {
        self.root
            .as_ref()
            .map(|root| root.join(format!("{prefix}-{:016x}.bin", fnv1a64(key.as_bytes()))))
    }

    /// Stores a synthesised dataset under its `(spec, seed)` key.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] if the file cannot be written.
    /// Callers normally treat store failures as best-effort (a cold next run,
    /// not a wrong one).
    pub fn store_dataset(&self, dataset: &Dataset) -> Result<(), GraphError> {
        let key = Self::dataset_key(&dataset.spec, dataset.seed);
        let Some(path) = self.file_for("ds", &key) else {
            return Ok(());
        };
        let mut payload = Vec::new();
        write_u8(&mut payload, kind_tag(dataset.spec.kind));
        write_u64(&mut payload, dataset.spec.vertices as u64);
        write_u64(&mut payload, dataset.spec.edges as u64);
        write_u64(&mut payload, dataset.spec.feature_dim as u64);
        write_u64(&mut payload, dataset.seed);
        write_u64(&mut payload, dataset.edge_list.num_nodes() as u64);
        write_u64(&mut payload, dataset.edge_list.num_edges() as u64);
        for e in dataset.edge_list.iter() {
            write_u32(&mut payload, e.src);
            write_u32(&mut payload, e.dst);
        }
        write_u64(&mut payload, dataset.features.num_nodes() as u64);
        write_u64(&mut payload, dataset.features.dim() as u64);
        for &value in dataset.features.as_matrix().as_slice() {
            payload.extend_from_slice(&value.to_le_bytes());
        }
        write_artifact(&path, KIND_DATASET, &key, &payload)
    }

    /// Loads the dataset stored under `(spec, seed)`.
    ///
    /// Returns `Ok(None)` on a clean miss. The loaded dataset is bit-identical
    /// to the synthesised original (u32 edge endpoints and f32 feature bits
    /// round-trip exactly; the CSR form is deterministically rebuilt).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] for corrupt, stale-version or
    /// mismatched-key files — callers should fall back to a fresh build.
    pub fn load_dataset(
        &self,
        spec: &DatasetSpec,
        seed: u64,
    ) -> Result<Option<Dataset>, GraphError> {
        let key = Self::dataset_key(spec, seed);
        let Some(path) = self.file_for("ds", &key) else {
            return Ok(None);
        };
        check_fault("cache_read", &path)?;
        let load = || {
            let start = std::time::Instant::now();
            let Some(payload) = read_artifact(&path, KIND_DATASET, &key)? else {
                return Ok(None);
            };
            let mut r = Reader::new(&payload, &path);
            let kind = kind_from_tag(r.u8()?)
                .ok_or_else(|| reject(&path, "unknown dataset kind tag".to_string()))?;
            let vertices = r.u64()? as usize;
            let edges = r.u64()? as usize;
            let feature_dim = r.u64()? as usize;
            let stored_seed = r.u64()?;
            // The spec's `name` is identity only through the key string (already
            // verified by read_artifact), so a spec carrying a custom name still
            // hits; the numeric fields are double-checked here.
            let stored_spec = DatasetSpec {
                kind,
                name: spec.name,
                vertices,
                edges,
                feature_dim,
            };
            if stored_spec != *spec || stored_seed != seed {
                return Err(reject(
                &path,
                format!("stored identity {stored_spec} (seed {stored_seed}) does not match the requested key"),
            ));
            }
            let num_nodes = r.u64()? as usize;
            let num_edges = r.u64()? as usize;
            let pairs: Vec<Edge> = r
                .byte_records(num_edges, 8)?
                .chunks_exact(8)
                .map(|rec| {
                    Edge::new(
                        u32::from_le_bytes(rec[..4].try_into().expect("4 bytes")),
                        u32::from_le_bytes(rec[4..].try_into().expect("4 bytes")),
                    )
                })
                .collect();
            let edge_list = EdgeList::from_edges(num_nodes, pairs)
                .map_err(|e| reject(&path, format!("invalid edge list: {e}")))?;
            let rows = r.u64()? as usize;
            let dim = r.u64()? as usize;
            let count = rows
                .checked_mul(dim)
                .ok_or_else(|| reject(&path, "feature table dimensions overflow".to_string()))?;
            let values: Vec<f32> = r
                .byte_records(count, 4)?
                .chunks_exact(4)
                .map(|rec| f32::from_le_bytes(rec.try_into().expect("4 bytes")))
                .collect();
            r.finish()?;
            let matrix = Matrix::from_vec(rows, dim, values)
                .map_err(|e| reject(&path, format!("invalid feature table: {e}")))?;
            let graph = CsrGraph::from_edge_list(&edge_list);
            Ok(Some(Dataset {
                spec: *spec,
                seed,
                edge_list,
                graph,
                features: NodeFeatures::from_matrix(matrix),
                build_seconds: start.elapsed().as_secs_f64(),
                loaded_from_cache: true,
            }))
        };
        self.quarantining(&path, load())
    }

    /// Stores a shard grid under the given full grid key (see
    /// [`ArtifactCache::grid_key`]) in the segmented v2 layout: grid header
    /// and per-shard arena extents first, then the arena bytes, streamed
    /// through a bounded buffer rather than materialised as one payload.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] if the file cannot be written.
    pub fn store_grid(&self, key: &str, grid: &ShardGrid) -> Result<(), GraphError> {
        let Some(path) = self.file_for("grid", key) else {
            return Ok(());
        };
        // A windowed grid was loaded *from* this cache; re-serialising it
        // would mean faulting the whole arena back through the window.
        let Some(arena) = grid.resident_edges() else {
            return Err(GraphError::invalid(
                "grid",
                "cannot store a windowed grid (it already lives in the cache)",
            ));
        };
        let mut header = Vec::with_capacity(32 + grid.metas().len() * 32);
        write_u64(&mut header, grid.num_nodes() as u64);
        write_u64(&mut header, grid.nodes_per_shard() as u64);
        write_u64(&mut header, grid.total_edges() as u64);
        write_u64(&mut header, grid.metas().len() as u64);
        for meta in grid.metas() {
            write_u64(&mut header, meta.coord().src_block as u64);
            write_u64(&mut header, meta.coord().dst_block as u64);
            write_u32(&mut header, meta.edge_start());
            write_u32(&mut header, meta.num_edges() as u32);
            write_u32(&mut header, meta.unique_source_count() as u32);
            write_u32(&mut header, meta.unique_destination_count() as u32);
        }
        let payload_len = header.len() as u64 + grid.total_edges() as u64 * 8;
        let chunk_edges = (self.budget.io_buffer_bytes(1) / 8).max(1);
        let mut chunk = Vec::with_capacity(chunk_edges * 8);
        // Pass 1: checksum the payload without ever materialising it.
        let mut hasher = Fnv1a::new();
        hasher.update(&header);
        for edges in arena.chunks(chunk_edges) {
            pack_edges(&mut chunk, edges);
            hasher.update(&chunk);
        }
        // Pass 2: stream envelope + payload through the temp+rename flow.
        write_artifact_streamed(&path, KIND_GRID, key, payload_len, hasher.finish(), |w| {
            w.write_all(&header)?;
            for edges in arena.chunks(chunk_edges) {
                pack_edges(&mut chunk, edges);
                w.write_all(&chunk)?;
            }
            Ok(())
        })
    }

    /// Loads the shard grid stored under `key`, skipping the arena sort and
    /// metadata scan a fresh [`ShardGrid::build`] pays (the cheap CSR-style
    /// row/column indexes are rebuilt).
    ///
    /// Returns `Ok(None)` on a clean miss.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] for corrupt, stale-version or
    /// mismatched files.
    pub fn load_grid(&self, key: &str) -> Result<Option<ShardGrid>, GraphError> {
        self.load_grid_budgeted(key, self.budget)
    }

    /// [`ArtifactCache::load_grid`] under an explicit [`MemoryBudget`]:
    /// bounded budgets chunk-load the segmented artifact (header + metadata
    /// table parsed first, arena streamed through a bounded buffer),
    /// unbounded budgets deserialise wholesale. Both paths produce
    /// bit-identical grids and tick the corresponding process-wide
    /// telemetry counter ([`memory::grid_segment_loads`] /
    /// [`memory::grid_full_loads`]).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] for corrupt, stale-version or
    /// mismatched files.
    pub fn load_grid_budgeted(
        &self,
        key: &str,
        budget: MemoryBudget,
    ) -> Result<Option<ShardGrid>, GraphError> {
        let Some(path) = self.file_for("grid", key) else {
            return Ok(None);
        };
        check_fault("cache_read", &path)?;
        let load = || {
            if budget.is_bounded() {
                load_grid_segmented(&path, key, budget)
            } else {
                load_grid_whole(&path, key)
            }
        };
        let result = self.quarantining(&path, load());
        if matches!(result, Ok(Some(_))) {
            if budget.is_bounded() {
                self.recorder.note_grid_segment_load();
            } else {
                self.recorder.note_grid_full_load();
            }
        }
        result
    }

    /// Opens the grid stored under `key` *windowed*: the artifact is fully
    /// validated (envelope, metadata table, arena endpoint ranges, payload
    /// checksum) in one streaming pass that never materialises the arena,
    /// and the returned [`ShardGrid`] faults shard extents in through a
    /// [`ShardWindow`](crate::ShardWindow) of at most `window_bytes` over
    /// the same validated file handle. Counts as a segmented load in the
    /// process-wide telemetry (no wholesale deserialisation happens).
    ///
    /// Returns `Ok(None)` on a clean miss.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] for corrupt, stale-version or
    /// mismatched files (quarantined like every other load path).
    pub fn load_grid_windowed(
        &self,
        key: &str,
        window_bytes: u64,
    ) -> Result<Option<ShardGrid>, GraphError> {
        self.load_grid_windowed_in(key, crate::WindowPool::new(window_bytes))
    }

    /// Like [`ArtifactCache::load_grid_windowed`], but the returned grid's
    /// window draws residency from `pool` — shared across every windowed
    /// grid opened with the same pool, so several shardings of one session
    /// split one budget instead of stacking it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CacheArtifact`] for corrupt, stale-version or
    /// mismatched files (quarantined like every other load path).
    pub fn load_grid_windowed_in(
        &self,
        key: &str,
        pool: Arc<crate::WindowPool>,
    ) -> Result<Option<ShardGrid>, GraphError> {
        let Some(path) = self.file_for("grid", key) else {
            return Ok(None);
        };
        check_fault("cache_read", &path)?;
        let result = self.quarantining(
            &path,
            open_grid_windowed(&path, key, pool, self.budget.io_buffer_bytes(1)),
        );
        if matches!(result, Ok(Some(_))) {
            self.recorder.note_grid_segment_load();
        }
        result
    }
}

/// Wholesale v2 grid load: one `read`, then in-memory parsing.
fn load_grid_whole(path: &Path, key: &str) -> Result<Option<ShardGrid>, GraphError> {
    let Some(payload) = read_artifact(path, KIND_GRID, key)? else {
        return Ok(None);
    };
    let mut r = Reader::new(&payload, path);
    let num_nodes = r.u64()? as usize;
    let nodes_per_shard = r.u64()? as usize;
    if num_nodes == 0 || nodes_per_shard == 0 {
        return Err(reject(path, "degenerate grid dimensions".to_string()));
    }
    let grid_dim = num_nodes.div_ceil(nodes_per_shard);
    let arena_len = r.u64()? as usize;
    let meta_count = r.u64()? as usize;
    let metas = parse_grid_metas(&mut r, path, grid_dim, meta_count, arena_len)?;
    let arena: Vec<Edge> = r
        .byte_records(arena_len, 8)?
        .chunks_exact(8)
        .map(|rec| {
            Edge::new(
                u32::from_le_bytes(rec[..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(rec[4..].try_into().expect("4 bytes")),
            )
        })
        .collect();
    r.finish()?;
    if arena
        .iter()
        .any(|e| e.src as usize >= num_nodes || e.dst as usize >= num_nodes)
    {
        return Err(reject(path, "arena edge endpoint out of range".to_string()));
    }
    Ok(Some(ShardGrid::assemble(
        num_nodes,
        nodes_per_shard,
        arena,
        metas,
    )))
}

/// Everything a segmented v2 grid loader needs before touching arena bytes:
/// the stream positioned at the first arena record, the running payload
/// hasher, and the parsed header + metadata table. Produced by
/// [`read_segmented_prefix`], consumed by both the chunk-materialising
/// loader and the windowed opener.
struct SegmentedPrefix<'p> {
    r: StreamReader<'p>,
    hasher: Fnv1a,
    checksum: u64,
    num_nodes: usize,
    nodes_per_shard: usize,
    arena_len: usize,
    arena_bytes: usize,
    /// Byte offset of the first arena record in the file.
    arena_offset: u64,
    metas: Vec<ShardMeta>,
    /// A second handle on the same (still-being-validated) file, for
    /// callers that keep reading it after this pass — the handle stays
    /// valid even if the path is later replaced or removed.
    file: File,
}

/// Validates a segmented v2 grid artifact's envelope, payload header and
/// metadata table through a bounded buffer, stopping at the first arena
/// byte. Returns `Ok(None)` on a clean miss (no file).
fn read_segmented_prefix<'p>(
    path: &'p Path,
    key: &str,
    buffer_bytes: usize,
) -> Result<Option<SegmentedPrefix<'p>>, GraphError> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(reject(path, format!("reading cache artifact: {e}"))),
    };
    let file_len = file
        .metadata()
        .map_err(|e| reject(path, format!("reading cache artifact: {e}")))?
        .len();
    let handle = file
        .try_clone()
        .map_err(|e| reject(path, format!("reading cache artifact: {e}")))?;
    let mut r = StreamReader {
        reader: BufReader::with_capacity(buffer_bytes, file),
        path,
    };

    // Envelope (not covered by the payload checksum).
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(reject(
            path,
            "bad magic (not a gnnerator artifact)".to_string(),
        ));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(reject(
            path,
            format!("stale format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let stored_kind = r.u8()?;
    if stored_kind != KIND_GRID {
        return Err(reject(path, format!("wrong artifact kind {stored_kind}")));
    }
    let key_len = r.u32()? as usize;
    if key_len != key.len() {
        return Err(reject(
            path,
            format!("key mismatch: stored key length {key_len}, requested {key:?}"),
        ));
    }
    let mut stored_key = vec![0u8; key_len];
    r.read_exact(&mut stored_key)?;
    if stored_key != key.as_bytes() {
        return Err(reject(
            path,
            format!(
                "key mismatch: stored {:?}, requested {key:?}",
                String::from_utf8_lossy(&stored_key)
            ),
        ));
    }
    let payload_len = r.u64()?;
    let checksum = r.u64()?;
    let envelope_len = (4 + 4 + 1 + 4 + key.len() + 8 + 8) as u64;
    if envelope_len.saturating_add(payload_len) != file_len {
        return Err(reject(path, "truncated artifact".to_string()));
    }

    // Payload header: grid dimensions + the per-shard extent table.
    let mut hasher = Fnv1a::new();
    let header = r.take_hashed(32.min(payload_len as usize), &mut hasher)?;
    if header.len() < 32 {
        return Err(reject(path, "truncated artifact".to_string()));
    }
    let mut hr = Reader::new(&header, path);
    let num_nodes = hr.u64()? as usize;
    let nodes_per_shard = hr.u64()? as usize;
    if num_nodes == 0 || nodes_per_shard == 0 {
        return Err(reject(path, "degenerate grid dimensions".to_string()));
    }
    let grid_dim = num_nodes.div_ceil(nodes_per_shard);
    let arena_len = hr.u64()? as usize;
    let meta_count = hr.u64()? as usize;
    let meta_bytes = meta_count
        .checked_mul(32)
        .filter(|&b| (b as u64).saturating_add(32) <= payload_len)
        .ok_or_else(|| reject(path, "shard metadata exceeds the payload".to_string()))?;
    let arena_bytes = arena_len
        .checked_mul(8)
        .filter(|&b| 32 + meta_bytes as u64 + b as u64 == payload_len)
        .ok_or_else(|| {
            reject(
                path,
                "payload length does not match the segments".to_string(),
            )
        })?;
    let meta_buf = r.take_hashed(meta_bytes, &mut hasher)?;
    let mut mr = Reader::new(&meta_buf, path);
    let metas = parse_grid_metas(&mut mr, path, grid_dim, meta_count, arena_len)?;
    mr.finish()?;

    Ok(Some(SegmentedPrefix {
        r,
        hasher,
        checksum,
        num_nodes,
        nodes_per_shard,
        arena_len,
        arena_bytes,
        arena_offset: envelope_len + 32 + meta_bytes as u64,
        metas,
        file: handle,
    }))
}

/// Segmented v2 grid load: envelope and payload header are read through a
/// bounded buffer, the metadata table is parsed before any arena byte, and
/// the arena streams in budget-sized chunks — no whole-file materialisation.
fn load_grid_segmented(
    path: &Path,
    key: &str,
    budget: MemoryBudget,
) -> Result<Option<ShardGrid>, GraphError> {
    let buffer_bytes = budget.io_buffer_bytes(1);
    let Some(mut p) = read_segmented_prefix(path, key, buffer_bytes)? else {
        return Ok(None);
    };

    // Arena: stream in budget-sized chunks, never more than one buffer
    // resident beyond the arena itself.
    let mut arena: Vec<Edge> = Vec::with_capacity(p.arena_len);
    let chunk_edges = (buffer_bytes / 8).max(1);
    let mut buf = vec![0u8; chunk_edges.min(p.arena_len.max(1)) * 8];
    let mut remaining_bytes = p.arena_bytes;
    while remaining_bytes > 0 {
        let take = remaining_bytes.min(buf.len());
        let bytes = &mut buf[..take];
        p.r.read_exact(bytes)?;
        p.hasher.update(bytes);
        for rec in bytes.chunks_exact(8) {
            let edge = Edge::new(
                u32::from_le_bytes(rec[..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(rec[4..].try_into().expect("4 bytes")),
            );
            if edge.src as usize >= p.num_nodes || edge.dst as usize >= p.num_nodes {
                return Err(reject(path, "arena edge endpoint out of range".to_string()));
            }
            arena.push(edge);
        }
        remaining_bytes -= take;
    }
    p.r.expect_eof()?;
    if p.hasher.finish() != p.checksum {
        return Err(reject(path, "payload checksum mismatch".to_string()));
    }
    Ok(Some(ShardGrid::assemble(
        p.num_nodes,
        p.nodes_per_shard,
        arena,
        p.metas,
    )))
}

/// Windowed v2 grid open: the same streaming validation pass as
/// [`load_grid_segmented`] (every arena byte is endpoint-checked and
/// checksummed through a bounded buffer) but the decoded edges are
/// *discarded* — the grid keeps only the metadata plus a bounded
/// [`crate::ShardWindow`] over the validated file handle, and shard extents
/// are `pread` back in on demand during traversal.
fn open_grid_windowed(
    path: &Path,
    key: &str,
    pool: Arc<crate::WindowPool>,
    buffer_bytes: usize,
) -> Result<Option<ShardGrid>, GraphError> {
    let Some(mut p) = read_segmented_prefix(path, key, buffer_bytes)? else {
        return Ok(None);
    };

    let chunk_edges = (buffer_bytes / 8).max(1);
    let mut buf = vec![0u8; chunk_edges.min(p.arena_len.max(1)) * 8];
    let mut remaining_bytes = p.arena_bytes;
    while remaining_bytes > 0 {
        let take = remaining_bytes.min(buf.len());
        let bytes = &mut buf[..take];
        p.r.read_exact(bytes)?;
        p.hasher.update(bytes);
        for rec in bytes.chunks_exact(8) {
            let src = u32::from_le_bytes(rec[..4].try_into().expect("4 bytes"));
            let dst = u32::from_le_bytes(rec[4..].try_into().expect("4 bytes"));
            if src as usize >= p.num_nodes || dst as usize >= p.num_nodes {
                return Err(reject(path, "arena edge endpoint out of range".to_string()));
            }
        }
        remaining_bytes -= take;
    }
    p.r.expect_eof()?;
    if p.hasher.finish() != p.checksum {
        return Err(reject(path, "payload checksum mismatch".to_string()));
    }
    let window = crate::ShardWindow::with_pool(
        p.file,
        path.to_path_buf(),
        p.arena_offset,
        p.arena_len,
        pool,
    );
    Ok(Some(ShardGrid::assemble_windowed(
        p.num_nodes,
        p.nodes_per_shard,
        window,
        p.metas,
    )))
}

/// Parses `meta_count` shard-metadata records, validating coordinates and
/// that the extents tile `[0, arena_len)` contiguously.
fn parse_grid_metas(
    r: &mut Reader<'_>,
    path: &Path,
    grid_dim: usize,
    meta_count: usize,
    arena_len: usize,
) -> Result<Vec<ShardMeta>, GraphError> {
    let mut metas = Vec::with_capacity(meta_count);
    let mut expected_start = 0u64;
    for _ in 0..meta_count {
        let src_block = r.u64()? as usize;
        let dst_block = r.u64()? as usize;
        let edge_start = r.u32()?;
        let num_edges = r.u32()?;
        let unique_sources = r.u32()?;
        let unique_destinations = r.u32()?;
        if src_block >= grid_dim || dst_block >= grid_dim {
            return Err(reject(path, "shard coordinate out of range".to_string()));
        }
        if num_edges == 0 || u64::from(edge_start) != expected_start {
            return Err(reject(
                path,
                "shard arena ranges are not contiguous".to_string(),
            ));
        }
        expected_start += u64::from(num_edges);
        metas.push(ShardMeta::from_raw(
            ShardCoord::new(src_block, dst_block),
            edge_start,
            num_edges,
            unique_sources,
            unique_destinations,
        ));
    }
    if expected_start != arena_len as u64 {
        return Err(reject(
            path,
            "shard metadata does not cover the arena".to_string(),
        ));
    }
    Ok(metas)
}

impl Default for ArtifactCache {
    /// The environment-configured cache (see [`ArtifactCache::from_env`]).
    fn default() -> Self {
        Self::from_env()
    }
}

fn kind_tag(kind: DatasetKind) -> u8 {
    match kind {
        DatasetKind::Cora => 0,
        DatasetKind::Citeseer => 1,
        DatasetKind::Pubmed => 2,
        DatasetKind::OgbnArxiv => 3,
        DatasetKind::OgbnProductsScale => 4,
    }
}

fn kind_from_tag(tag: u8) -> Option<DatasetKind> {
    match tag {
        0 => Some(DatasetKind::Cora),
        1 => Some(DatasetKind::Citeseer),
        2 => Some(DatasetKind::Pubmed),
        3 => Some(DatasetKind::OgbnArxiv),
        4 => Some(DatasetKind::OgbnProductsScale),
        _ => None,
    }
}

/// Incremental FNV-1a 64-bit: a small, stable, dependency-free checksum. Not
/// cryptographic — it guards against torn writes and bit rot, not attackers
/// (the cache directory is as trusted as the build directory it lives in).
/// The incremental form lets the streaming store/load paths checksum a
/// payload they never hold in one buffer.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over a contiguous buffer.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Re-fills `buf` with the little-endian wire form of `edges`.
fn pack_edges(buf: &mut Vec<u8>, edges: &[Edge]) {
    buf.clear();
    for e in edges {
        buf.extend_from_slice(&e.src.to_le_bytes());
        buf.extend_from_slice(&e.dst.to_le_bytes());
    }
}

/// The pure `GNNERATOR_CACHE` policy: `None` (unset) selects the default
/// root, `off`/`0`/empty disables (returns `None`), anything else is the
/// root directory.
fn env_root(value: Option<&str>) -> Option<PathBuf> {
    match value {
        Some(value) => {
            let trimmed = value.trim();
            if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("off") || trimmed == "0" {
                None
            } else {
                Some(PathBuf::from(trimmed))
            }
        }
        None => Some(PathBuf::from("target/gnnerator-cache")),
    }
}

/// Where [`crate::EdgeListBuilder`] spill run-files land when no explicit
/// spill directory is configured: the `GNNERATOR_CACHE` root when one is
/// enabled (spills are cache-adjacent scratch, and the cache sweep reaps
/// orphans), otherwise the system temp directory.
pub(crate) fn default_spill_dir() -> PathBuf {
    env_root(std::env::var(CACHE_ENV_VAR).ok().as_deref()).unwrap_or_else(std::env::temp_dir)
}

/// A fresh, process-unique spill run-file path under `dir`
/// (`spill-<pid>-<nonce>.run`), named so [`sweep_stale_temp_files`] can
/// recognise and reap abandoned runs.
pub(crate) fn new_spill_run_path(dir: &Path) -> PathBuf {
    let nonce = TEMP_NONCE.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("spill-{}-{nonce}.run", std::process::id()))
}

/// Whether a file name matches the `spill-<pid>-<nonce>.run` pattern
/// [`new_spill_run_path`] produces. Exact for the same reason as
/// [`is_temp_artifact_name`]: the sweep must only ever delete files this
/// crate itself could have written.
fn is_spill_run_name(name: &str) -> bool {
    let Some(stem) = name
        .strip_prefix("spill-")
        .and_then(|rest| rest.strip_suffix(".run"))
    else {
        return false;
    };
    match stem.split_once('-') {
        Some((pid, nonce)) => {
            !pid.is_empty()
                && !nonce.is_empty()
                && pid.parse::<u64>().is_ok()
                && nonce.parse::<u64>().is_ok()
        }
        None => false,
    }
}

fn write_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn reject(path: &Path, message: String) -> GraphError {
    GraphError::cache(path.display().to_string(), message)
}

/// Evaluates the named fault-injection point, surfacing an injected fault as
/// a typed cache error at `path`. Checked *outside* the quarantine wrapper,
/// so injected I/O faults never rename a healthy artifact.
fn check_fault(point: &str, path: &Path) -> Result<(), GraphError> {
    gnnerator_faults::check(point).map_err(|e| reject(path, e.to_string()))
}

/// Deletes orphaned temp files, abandoned spill run-files and stale
/// quarantined artifacts under `root` that are older than `window`.
///
/// Best-effort on every step: a missing root, unreadable metadata or a
/// losing race against another sweeper are all fine — the only hard
/// requirement is never deleting a published artifact, a temp file young
/// enough to belong to a live writer, or a spill run-file a live
/// [`crate::EdgeListBuilder`] is still merging from. Quarantined
/// `*.corrupt` files keep their post-mortem value for the window, then
/// stop accumulating.
fn sweep_stale_temp_files(root: &Path, window: std::time::Duration) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return; // nothing cached yet (or the root is unreadable)
    };
    let now = std::time::SystemTime::now();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !is_temp_artifact_name(name)
            && !is_spill_run_name(name)
            && !is_corrupt_artifact_name(name)
        {
            continue;
        }
        let stale = entry
            .metadata()
            .and_then(|meta| meta.modified())
            .ok()
            // A modification time in the future reads as "not stale".
            .and_then(|modified| now.duration_since(modified).ok())
            .is_some_and(|age| age >= window);
        if stale {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

/// Whether a file name matches the `<prefix>-<hex16>.tmp.<pid>.<nonce>`
/// pattern [`write_artifact`] produces (prefix `ds` or `grid`). The match is
/// deliberately exact: `GNNERATOR_CACHE` may point the cache at a directory
/// shared with other tools, and the sweep must only ever delete files this
/// cache itself could have written. Published artifacts end in `.bin` and
/// can never match.
fn is_temp_artifact_name(name: &str) -> bool {
    let Some((artifact, suffix)) = name.split_once(".tmp.") else {
        return false;
    };
    let stem_ok = ["ds-", "grid-"].iter().any(|prefix| {
        artifact
            .strip_prefix(prefix)
            .is_some_and(|hex| hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()))
    });
    stem_ok
        && match suffix.split_once('.') {
            Some((pid, nonce)) => pid.parse::<u64>().is_ok() && nonce.parse::<u64>().is_ok(),
            None => false,
        }
}

/// Whether a file name matches the `<prefix>-<hex16>.corrupt` pattern
/// [`ArtifactCache::quarantining`] produces (prefix `ds` or `grid`).
/// Exact for the same reason as [`is_temp_artifact_name`]: the sweep must
/// only ever delete files this cache itself could have written.
fn is_corrupt_artifact_name(name: &str) -> bool {
    let Some(artifact) = name.strip_suffix(".corrupt") else {
        return false;
    };
    ["ds-", "grid-"].iter().any(|prefix| {
        artifact
            .strip_prefix(prefix)
            .is_some_and(|hex| hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()))
    })
}

/// Writes a complete artifact file atomically (temp file + rename).
fn write_artifact(path: &Path, kind: u8, key: &str, payload: &[u8]) -> Result<(), GraphError> {
    write_artifact_streamed(
        path,
        kind,
        key,
        payload.len() as u64,
        fnv1a64(payload),
        |w| w.write_all(payload),
    )
}

/// Streams an artifact file atomically (temp file + rename): the envelope is
/// written from the pre-computed payload length and checksum, then `emit`
/// produces the payload bytes through the buffered writer — the payload is
/// never required to exist as one contiguous buffer.
fn write_artifact_streamed(
    path: &Path,
    kind: u8,
    key: &str,
    payload_len: u64,
    checksum: u64,
    emit: impl FnOnce(&mut BufWriter<File>) -> std::io::Result<()>,
) -> Result<(), GraphError> {
    check_fault("cache_write", path)?;
    let io_err = |what: &str, e: std::io::Error| reject(path, format!("{what}: {e}"));
    let dir = path.parent().expect("cache files always live under a root");
    std::fs::create_dir_all(dir).map_err(|e| io_err("creating cache directory", e))?;

    let nonce = TEMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let temp = path.with_extension(format!("tmp.{}.{nonce}", std::process::id()));
    let write = |temp: &Path| -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(temp)?);
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&[kind])?;
        w.write_all(&(key.len() as u32).to_le_bytes())?;
        w.write_all(key.as_bytes())?;
        w.write_all(&payload_len.to_le_bytes())?;
        w.write_all(&checksum.to_le_bytes())?;
        emit(&mut w)?;
        w.flush()
    };
    if let Err(e) = write(&temp) {
        std::fs::remove_file(&temp).ok();
        return Err(io_err("writing cache artifact", e));
    }
    std::fs::rename(&temp, path).map_err(|e| {
        std::fs::remove_file(&temp).ok();
        io_err("publishing cache artifact", e)
    })
}

/// Reads and validates an artifact file, returning its payload.
///
/// `Ok(None)` when the file does not exist; [`GraphError::CacheArtifact`]
/// when it exists but cannot be trusted.
fn read_artifact(path: &Path, kind: u8, key: &str) -> Result<Option<Vec<u8>>, GraphError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(reject(path, format!("reading cache artifact: {e}"))),
    };
    let mut r = Reader::new(&bytes, path);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(reject(
            path,
            "bad magic (not a gnnerator artifact)".to_string(),
        ));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(reject(
            path,
            format!("stale format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let stored_kind = r.u8()?;
    if stored_kind != kind {
        return Err(reject(path, format!("wrong artifact kind {stored_kind}")));
    }
    let key_len = r.u32()? as usize;
    let stored_key = r.take(key_len)?;
    if stored_key != key.as_bytes() {
        return Err(reject(
            path,
            format!(
                "key mismatch: stored {:?}, requested {key:?}",
                String::from_utf8_lossy(stored_key)
            ),
        ));
    }
    let payload_len = r.u64()? as usize;
    let checksum = r.u64()?;
    let payload = r.take(payload_len)?;
    r.finish()?;
    if fnv1a64(payload) != checksum {
        return Err(reject(path, "payload checksum mismatch".to_string()));
    }
    Ok(Some(payload.to_vec()))
}

/// Bounds-checked little-endian byte reader with typed cache errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], path: &'a Path) -> Self {
        Self {
            bytes,
            pos: 0,
            path,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], GraphError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| reject(self.path, "truncated artifact".to_string()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, GraphError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, GraphError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, GraphError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Takes `count` fixed-width records in one bounds-checked slice — the
    /// bulk path for edge pairs and feature values, where per-element reads
    /// would cost millions of redundant checks on ogbn-scale artifacts.
    fn byte_records(&mut self, count: usize, width: usize) -> Result<&'a [u8], GraphError> {
        let total = count
            .checked_mul(width)
            .ok_or_else(|| reject(self.path, "record count overflows".to_string()))?;
        self.take(total)
    }

    /// Asserts the reader consumed every byte (trailing garbage is a sign of
    /// corruption or a layout drift the version bump missed).
    fn finish(&self) -> Result<(), GraphError> {
        if self.pos != self.bytes.len() {
            return Err(reject(
                self.path,
                "trailing bytes after payload".to_string(),
            ));
        }
        Ok(())
    }
}

/// Bounded-buffer file reader with typed cache errors — the segmented
/// grid-load path's counterpart to [`Reader`].
struct StreamReader<'a> {
    reader: BufReader<File>,
    path: &'a Path,
}

impl StreamReader<'_> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), GraphError> {
        self.reader.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                reject(self.path, "truncated artifact".to_string())
            } else {
                reject(self.path, format!("reading cache artifact: {e}"))
            }
        })
    }

    fn u8(&mut self) -> Result<u8, GraphError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn u32(&mut self) -> Result<u32, GraphError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, GraphError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads `n` bytes, feeding them to the payload checksum.
    fn take_hashed(&mut self, n: usize, hasher: &mut Fnv1a) -> Result<Vec<u8>, GraphError> {
        let mut buf = vec![0u8; n];
        self.read_exact(&mut buf)?;
        hasher.update(&buf);
        Ok(buf)
    }

    /// Asserts the file holds no bytes past the payload (the streaming
    /// counterpart of [`Reader::finish`]).
    fn expect_eof(&mut self) -> Result<(), GraphError> {
        let mut b = [0u8; 1];
        match self.reader.read(&mut b) {
            Ok(0) => Ok(()),
            Ok(_) => Err(reject(
                self.path,
                "trailing bytes after payload".to_string(),
            )),
            Err(e) => Err(reject(self.path, format!("reading cache artifact: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::memory;
    use std::sync::atomic::AtomicUsize;

    static TEST_DIR_NONCE: AtomicUsize = AtomicUsize::new(0);

    fn temp_cache(label: &str) -> (ArtifactCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "gnnerator-cache-test-{}-{label}-{}",
            std::process::id(),
            TEST_DIR_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        (ArtifactCache::new(&dir), dir)
    }

    #[test]
    fn dataset_round_trips_bit_identically() {
        let (cache, dir) = temp_cache("ds");
        let spec = DatasetKind::Citeseer.spec().scaled(0.03);
        let original = spec.synthesize(5).unwrap();
        assert!(cache.load_dataset(&spec, 5).unwrap().is_none(), "cold miss");
        cache.store_dataset(&original).unwrap();
        let loaded = cache.load_dataset(&spec, 5).unwrap().expect("hit");
        assert_eq!(loaded.edge_list, original.edge_list);
        assert_eq!(loaded.graph, original.graph);
        assert_eq!(loaded.features, original.features);
        assert_eq!(loaded.spec, original.spec);
        assert_eq!(loaded.seed, 5);
        assert!(loaded.loaded_from_cache);
        // A different seed is a different key.
        assert!(cache.load_dataset(&spec, 6).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_round_trips_bit_identically() {
        let (cache, dir) = temp_cache("grid");
        let edges = generators::rmat(200, 900, 3).unwrap();
        let grid = ShardGrid::build(&edges, 32).unwrap();
        let key = ArtifactCache::grid_key("dataset/test/seed3", 32, false);
        assert!(cache.load_grid(&key).unwrap().is_none());
        cache.store_grid(&key, &grid).unwrap();
        let loaded = cache.load_grid(&key).unwrap().expect("hit");
        assert_eq!(loaded, grid, "same arena, metas and indexes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_payload_is_a_typed_error() {
        let (cache, dir) = temp_cache("corrupt");
        let edges = generators::rmat(100, 400, 1).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("g", 16, false);
        cache.store_grid(&key, &grid).unwrap();

        // Flip one payload byte on disk.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&file, bytes).unwrap();

        assert!(matches!(
            cache.load_grid(&key),
            Err(GraphError::CacheArtifact { .. })
        ));
        // The failing load quarantined the file: the original name is gone,
        // the `.corrupt` evidence file exists, the counter ticked, and the
        // next load of the same key is a clean miss (no repeated failure).
        assert!(!file.exists(), "corrupt artifact must be renamed away");
        assert!(file.with_extension("corrupt").exists());
        assert_eq!(cache.corrupt_artifacts(), 1);
        assert!(cache.load_grid(&key).unwrap().is_none());
        // The key is rebuildable: a fresh store publishes a good artifact.
        cache.store_grid(&key, &grid).unwrap();
        assert_eq!(cache.load_grid(&key).unwrap().expect("hit"), grid);
        assert_eq!(cache.corrupt_artifacts(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_version_and_wrong_key_are_typed_errors() {
        let (cache, dir) = temp_cache("stale");
        let edges = generators::rmat(100, 400, 1).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("g", 16, false);
        cache.store_grid(&key, &grid).unwrap();
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();

        // Bump the stored version field (bytes 4..8).
        let mut bytes = std::fs::read(&file).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        std::fs::write(&file, &bytes).unwrap();
        let err = cache.load_grid(&key).unwrap_err();
        assert!(err.to_string().contains("stale format version"), "{err}");

        // Restore the version but corrupt the key bytes.
        bytes[4] = bytes[4].wrapping_sub(1);
        bytes[13] ^= 0xff; // first key byte (4 magic + 4 version + 1 kind + 4 len)
        std::fs::write(&file, &bytes).unwrap();
        let err = cache.load_grid(&key).unwrap_err();
        assert!(err.to_string().contains("key mismatch"), "{err}");

        // Truncation is caught too.
        std::fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load_grid(&key).is_err());

        // Not an artifact at all.
        std::fs::write(&file, b"definitely not a cache file").unwrap();
        let err = cache.load_grid(&key).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = ArtifactCache::disabled();
        assert!(!cache.is_enabled());
        assert!(cache.root().is_none());
        let spec = DatasetKind::Cora.spec().scaled(0.02);
        let dataset = spec.synthesize(1).unwrap();
        cache.store_dataset(&dataset).unwrap();
        assert!(cache.load_dataset(&spec, 1).unwrap().is_none());
        let grid = ShardGrid::build(&dataset.edge_list, 16).unwrap();
        cache.store_grid("k", &grid).unwrap();
        assert!(cache.load_grid("k").unwrap().is_none());
    }

    #[test]
    fn env_value_policy() {
        assert!(!ArtifactCache::from_env_value(Some("off")).is_enabled());
        assert!(!ArtifactCache::from_env_value(Some("OFF")).is_enabled());
        assert!(!ArtifactCache::from_env_value(Some("0")).is_enabled());
        let default = ArtifactCache::from_env_value(None);
        assert_eq!(default.root().unwrap(), Path::new("target/gnnerator-cache"));
        // The empty string disables the cache rather than being taken as a
        // relative directory (`GNNERATOR_CACHE= cargo test` means "off").
        assert!(!ArtifactCache::from_env_value(Some("")).is_enabled());
        assert!(!ArtifactCache::from_env_value(Some("  ")).is_enabled());
        assert!(!ArtifactCache::from_env_value(Some(" off ")).is_enabled());
        let custom = ArtifactCache::from_env_value(Some("/tmp/somewhere"));
        assert_eq!(custom.root().unwrap(), Path::new("/tmp/somewhere"));
    }

    #[test]
    fn temp_artifact_names_are_recognised_exactly() {
        assert!(is_temp_artifact_name("ds-0123456789abcdef.tmp.4242.7"));
        assert!(is_temp_artifact_name("grid-00ff00ff00ff00ff.tmp.1.0"));
        // Published artifacts and unrelated files never match — the cache
        // root may be a shared directory, so only names this cache could
        // itself have written are sweepable.
        assert!(!is_temp_artifact_name("ds-0123456789abcdef.bin"));
        assert!(!is_temp_artifact_name("notes.tmp.txt"));
        assert!(!is_temp_artifact_name("backup.tmp.123.456"));
        assert!(!is_temp_artifact_name("ds-ab.tmp.12.7"), "hex too short");
        assert!(
            !is_temp_artifact_name("ds-0123456789abcdeg.tmp.1.2"),
            "not hex"
        );
        assert!(!is_temp_artifact_name("ds-0123456789abcdef.tmp.x.7"));
        assert!(!is_temp_artifact_name("ds-0123456789abcdef.tmp.12.y"));
        assert!(!is_temp_artifact_name("ds-0123456789abcdef.tmp.12"));
        assert!(!is_temp_artifact_name(".tmp.1.2"));
    }

    #[test]
    fn orphaned_temp_files_are_swept_but_young_and_published_files_survive() {
        let (cache, dir) = temp_cache("sweep");
        // Publish a real artifact so the directory holds a `.bin` file.
        let edges = generators::rmat(100, 400, 1).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("g", 16, false);
        cache.store_grid(&key, &grid).unwrap();

        // Simulate a writer killed between write and rename.
        let orphan = dir.join("ds-deadbeefdeadbeef.tmp.99999.3");
        std::fs::write(&orphan, b"partial artifact").unwrap();
        let unrelated = dir.join("README.txt");
        std::fs::write(&unrelated, b"not ours").unwrap();

        // A freshly opened cache (1-hour window) keeps the young orphan.
        let reopened = ArtifactCache::new(&dir);
        assert!(orphan.exists(), "young temp files must not be swept");
        assert!(reopened.load_grid(&key).unwrap().is_some());

        // With a zero safety window the orphan is stale and is deleted;
        // published artifacts and unrelated files are untouched.
        sweep_stale_temp_files(&dir, std::time::Duration::ZERO);
        assert!(!orphan.exists(), "stale temp files accumulate forever");
        assert!(unrelated.exists());
        assert!(ArtifactCache::new(&dir).load_grid(&key).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweeping_a_missing_root_is_a_no_op() {
        let dir = std::env::temp_dir().join(format!(
            "gnnerator-cache-missing-{}-{}",
            std::process::id(),
            TEST_DIR_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        sweep_stale_temp_files(&dir, std::time::Duration::ZERO);
        assert!(!dir.exists(), "sweeping must not create the root");
    }

    #[test]
    fn spill_run_names_are_recognised_exactly() {
        assert!(is_spill_run_name("spill-4242-7.run"));
        assert!(is_spill_run_name("spill-1-0.run"));
        // Anything this crate could not have written must never match.
        assert!(!is_spill_run_name("spill-4242-7.bin"));
        assert!(!is_spill_run_name("spill-x-7.run"));
        assert!(!is_spill_run_name("spill-4242-y.run"));
        assert!(!is_spill_run_name("spill-4242.run"));
        assert!(!is_spill_run_name("spill--.run"));
        assert!(!is_spill_run_name("respill-1-2.run"));
        assert!(!is_spill_run_name("grid-0123456789abcdef.bin"));
        // The path constructor and the recogniser agree.
        let path = new_spill_run_path(Path::new("/tmp"));
        let name = path.file_name().unwrap().to_str().unwrap();
        assert!(is_spill_run_name(name), "{name}");
    }

    #[test]
    fn abandoned_spill_run_files_are_swept_like_orphaned_temps() {
        let (cache, dir) = temp_cache("spill-sweep");
        let edges = generators::rmat(100, 400, 1).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("g", 16, false);
        cache.store_grid(&key, &grid).unwrap();

        // Simulate a builder killed mid-spill.
        let abandoned = dir.join("spill-99999-17.run");
        std::fs::write(&abandoned, b"raw edge pairs").unwrap();

        // A freshly opened cache (1-hour window) keeps the young run-file —
        // it may belong to a live builder.
        let _reopened = ArtifactCache::new(&dir);
        assert!(abandoned.exists(), "young run-files must not be swept");

        sweep_stale_temp_files(&dir, std::time::Duration::ZERO);
        assert!(!abandoned.exists(), "stale run-files accumulate forever");
        assert!(ArtifactCache::new(&dir).load_grid(&key).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_names_are_recognised_exactly() {
        assert!(is_corrupt_artifact_name("ds-0123456789abcdef.corrupt"));
        assert!(is_corrupt_artifact_name("grid-00ff00ff00ff00ff.corrupt"));
        // Published artifacts and unrelated files never match.
        assert!(!is_corrupt_artifact_name("ds-0123456789abcdef.bin"));
        assert!(!is_corrupt_artifact_name("notes.corrupt"));
        assert!(!is_corrupt_artifact_name("ds-ab.corrupt"), "hex too short");
        assert!(!is_corrupt_artifact_name("ds-0123456789abcdeg.corrupt"));
        assert!(!is_corrupt_artifact_name(
            "grid-0123456789abcdef.corrupt.bak"
        ));
        assert!(!is_corrupt_artifact_name(".corrupt"));
        // The quarantine rename and the recogniser agree.
        let quarantined = Path::new("grid-0123456789abcdef.bin").with_extension("corrupt");
        assert!(is_corrupt_artifact_name(
            quarantined.file_name().unwrap().to_str().unwrap()
        ));
    }

    #[test]
    fn stale_quarantine_files_are_swept_but_young_ones_survive() {
        let (cache, dir) = temp_cache("corrupt-sweep");
        let edges = generators::rmat(100, 400, 1).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("g", 16, false);
        cache.store_grid(&key, &grid).unwrap();

        // Quarantine the artifact for real by corrupting it.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&file, bytes).unwrap();
        assert!(cache.load_grid(&key).is_err());
        let quarantined = file.with_extension("corrupt");
        assert!(quarantined.exists());

        // A freshly opened cache (1-hour window) keeps the young quarantine
        // file — it still has post-mortem value.
        let _reopened = ArtifactCache::new(&dir);
        assert!(quarantined.exists(), "young quarantines must not be swept");

        // Past the safety window it is reaped instead of accumulating
        // forever; a republished artifact is untouched.
        cache.store_grid(&key, &grid).unwrap();
        sweep_stale_temp_files(&dir, std::time::Duration::ZERO);
        assert!(
            !quarantined.exists(),
            "stale quarantines accumulate forever"
        );
        assert!(ArtifactCache::new(&dir).load_grid(&key).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_load_is_bit_identical_to_resident_loads() {
        let (cache, dir) = temp_cache("windowed");
        let edges = generators::rmat(300, 1400, 5).unwrap();
        let grid = ShardGrid::build(&edges, 32).unwrap();
        let key = ArtifactCache::grid_key("dataset/win/seed5", 32, false);
        assert!(cache.load_grid_windowed(&key, 1 << 20).unwrap().is_none());
        cache.store_grid(&key, &grid).unwrap();
        let whole = cache
            .load_grid_budgeted(&key, MemoryBudget::unbounded())
            .unwrap()
            .expect("hit");
        let largest = grid.max_shard_edges() as u64 * 8;
        let arena = grid.total_edges() as u64 * 8;
        // Window sizes: always-stream, one max shard, exact fit, oversized.
        for window_bytes in [0, largest, arena, 1 << 30] {
            let before = memory::memory_telemetry();
            let windowed = cache
                .load_grid_windowed(&key, window_bytes)
                .unwrap()
                .expect("hit");
            assert!(windowed.is_windowed());
            let after = memory::memory_telemetry();
            assert!(
                after.grid_segment_loads > before.grid_segment_loads,
                "windowed opens count as segmented loads"
            );
            assert_eq!(after.grid_full_loads, before.grid_full_loads);
            assert_eq!(windowed, whole, "window {window_bytes}");
            assert_eq!(windowed, grid, "window {window_bytes}");
            assert_eq!(windowed.window().unwrap().window_bytes(), window_bytes);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_load_rejects_and_quarantines_corruption_up_front() {
        let (cache, dir) = temp_cache("windowed-corrupt");
        let edges = generators::rmat(200, 900, 3).unwrap();
        let grid = ShardGrid::build(&edges, 32).unwrap();
        let key = ArtifactCache::grid_key("wc", 32, false);
        cache.store_grid(&key, &grid).unwrap();
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&file).unwrap();
        // Flip one arena byte: the open-time validation pass must catch it
        // even though the windowed grid would never materialise the arena.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&file, bytes).unwrap();

        assert!(matches!(
            cache.load_grid_windowed(&key, 1 << 20),
            Err(GraphError::CacheArtifact { .. })
        ));
        assert!(!file.exists(), "must be renamed away");
        assert!(file.with_extension("corrupt").exists());
        assert_eq!(cache.corrupt_artifacts(), 1);
        assert!(cache.load_grid_windowed(&key, 1 << 20).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storing_a_windowed_grid_is_rejected() {
        let (cache, dir) = temp_cache("windowed-store");
        let edges = generators::rmat(100, 400, 1).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("ws", 16, false);
        cache.store_grid(&key, &grid).unwrap();
        let windowed = cache
            .load_grid_windowed(&key, 1 << 20)
            .unwrap()
            .expect("hit");
        let err = cache.store_grid(&key, &windowed).unwrap_err();
        assert!(err.to_string().contains("windowed"), "{err}");
        // The published artifact is untouched.
        assert_eq!(cache.load_grid(&key).unwrap().expect("hit"), grid);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_load_is_bit_identical_to_wholesale() {
        let (cache, dir) = temp_cache("segmented");
        let edges = generators::rmat(300, 1400, 5).unwrap();
        let grid = ShardGrid::build(&edges, 32).unwrap();
        let key = ArtifactCache::grid_key("dataset/seg/seed5", 32, false);
        cache.store_grid(&key, &grid).unwrap();
        let whole = cache
            .load_grid_budgeted(&key, MemoryBudget::unbounded())
            .unwrap()
            .expect("hit");
        // Budgets straddling the buffer clamp: zero (minimum 4 KiB buffer),
        // one smaller than the arena, one larger than the whole file.
        for budget in [0u64, 8 << 10, 1 << 30] {
            let segmented = cache
                .load_grid_budgeted(&key, MemoryBudget::bytes(budget))
                .unwrap()
                .expect("hit");
            assert_eq!(segmented, whole, "budget {budget}");
            assert_eq!(segmented, grid, "budget {budget}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segmented_load_ticks_telemetry() {
        let (cache, dir) = temp_cache("seg-telemetry");
        let edges = generators::rmat(100, 400, 2).unwrap();
        let grid = ShardGrid::build(&edges, 16).unwrap();
        let key = ArtifactCache::grid_key("t", 16, false);
        cache.store_grid(&key, &grid).unwrap();
        let before = memory::memory_telemetry();
        cache
            .load_grid_budgeted(&key, MemoryBudget::bytes(4 << 10))
            .unwrap()
            .expect("hit");
        cache
            .load_grid_budgeted(&key, MemoryBudget::unbounded())
            .unwrap()
            .expect("hit");
        let after = memory::memory_telemetry();
        assert!(after.grid_segment_loads > before.grid_segment_loads);
        assert!(after.grid_full_loads > before.grid_full_loads);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segmented_artifacts_are_typed_errors_and_quarantined() {
        let budget = MemoryBudget::bytes(4 << 10);
        // Truncation, a flipped arena byte, and a flipped header byte each
        // surface as typed errors through the chunked path and quarantine
        // the file as `<name>.corrupt`.
        for case in 0..3 {
            let (cache, dir) = temp_cache("seg-corrupt");
            let edges = generators::rmat(200, 900, 3).unwrap();
            let grid = ShardGrid::build(&edges, 32).unwrap();
            let key = ArtifactCache::grid_key("sc", 32, false);
            cache.store_grid(&key, &grid).unwrap();
            let file = std::fs::read_dir(&dir)
                .unwrap()
                .next()
                .unwrap()
                .unwrap()
                .path();
            let mut bytes = std::fs::read(&file).unwrap();
            match case {
                0 => bytes.truncate(bytes.len() - 16),
                1 => *bytes.last_mut().unwrap() ^= 0xff,
                _ => bytes[40] ^= 0x01,
            }
            std::fs::write(&file, &bytes).unwrap();

            assert!(
                matches!(
                    cache.load_grid_budgeted(&key, budget),
                    Err(GraphError::CacheArtifact { .. })
                ),
                "case {case}"
            );
            assert!(!file.exists(), "case {case}: must be renamed away");
            assert!(file.with_extension("corrupt").exists(), "case {case}");
            assert_eq!(cache.corrupt_artifacts(), 1, "case {case}");
            assert!(cache.load_grid_budgeted(&key, budget).unwrap().is_none());
            // Rebuildable after quarantine.
            cache.store_grid(&key, &grid).unwrap();
            assert_eq!(
                cache
                    .load_grid_budgeted(&key, budget)
                    .unwrap()
                    .expect("hit"),
                grid
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn keys_are_distinct_per_parameter() {
        let spec = DatasetKind::Cora.spec();
        let base = ArtifactCache::dataset_key(&spec, 42);
        assert_ne!(base, ArtifactCache::dataset_key(&spec, 43));
        assert_ne!(base, ArtifactCache::dataset_key(&spec.scaled(0.5), 42));
        let g = ArtifactCache::grid_key(&base, 32, false);
        assert_ne!(g, ArtifactCache::grid_key(&base, 32, true));
        assert_ne!(g, ArtifactCache::grid_key(&base, 64, false));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so a refactor cannot silently invalidate every artifact.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"gnnerator"), fnv1a64(b"gnnerator"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn corrupt_dataset_artifacts_are_quarantined_too() {
        let (cache, dir) = temp_cache("ds-quarantine");
        let spec = DatasetKind::Cora.spec().scaled(0.02);
        let dataset = spec.synthesize(9).unwrap();
        cache.store_dataset(&dataset).unwrap();
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&file, bytes).unwrap();

        assert!(cache.load_dataset(&spec, 9).is_err());
        assert!(!file.exists());
        assert!(file.with_extension("corrupt").exists());
        assert_eq!(cache.corrupt_artifacts(), 1);
        assert!(cache.load_dataset(&spec, 9).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// Any truncation or single-bit flip of a stored artifact is (a)
        /// detected as a typed cache error — never misread as data — and
        /// (b) quarantined, so the follow-up load is a clean miss and a
        /// fresh store round-trips again.
        #[test]
        fn truncation_and_bit_flips_are_detected_and_quarantined(
            position in 0usize..1_000_000,
            mode in 0usize..2,
        ) {
            let (cache, dir) = temp_cache("prop-corrupt");
            let edges = generators::rmat(120, 500, 2).unwrap();
            let grid = ShardGrid::build(&edges, 16).unwrap();
            let key = ArtifactCache::grid_key("prop", 16, false);
            cache.store_grid(&key, &grid).unwrap();
            let file = std::fs::read_dir(&dir)
                .unwrap()
                .next()
                .unwrap()
                .unwrap()
                .path();
            let bytes = std::fs::read(&file).unwrap();
            let mutated = if mode == 0 {
                // Truncate to a strict prefix (possibly empty).
                bytes[..position % bytes.len()].to_vec()
            } else {
                // Flip one bit somewhere in the file.
                let mut mutated = bytes.clone();
                let bit = position % (bytes.len() * 8);
                mutated[bit / 8] ^= 1 << (bit % 8);
                mutated
            };
            std::fs::write(&file, &mutated).unwrap();

            let outcome = cache.load_grid(&key);
            proptest::prop_assert!(
                matches!(outcome, Err(GraphError::CacheArtifact { .. })),
                "mutated artifact must be a typed error, got {outcome:?}"
            );
            proptest::prop_assert!(!file.exists(), "bad artifact must be renamed");
            proptest::prop_assert!(file.with_extension("corrupt").exists());
            proptest::prop_assert_eq!(cache.corrupt_artifacts(), 1);
            // Quarantined means the key is a clean miss, and rebuildable.
            proptest::prop_assert!(cache.load_grid(&key).unwrap().is_none());
            cache.store_grid(&key, &grid).unwrap();
            proptest::prop_assert_eq!(cache.load_grid(&key).unwrap().expect("hit"), grid);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
