//! Node-relabelling (reordering) transforms.
//!
//! The 2-D sharding of Section II-B partitions the *node id space* into
//! contiguous blocks, so the labels assigned to nodes determine how edges
//! spread over the shard grid. Relabelling nodes so that heavily-connected
//! nodes share blocks concentrates edges into fewer shards, which reduces the
//! number of partially-filled shards the Graph Engine has to stream. This
//! module provides the standard light-weight reorderings used by graph
//! accelerators (degree sorting) as pure functions from one [`EdgeList`] to a
//! relabelled one, plus the permutation needed to reorder the feature table
//! consistently.

use crate::{Edge, EdgeList, NodeId};

/// A node relabelling: `permutation[old_id] = new_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    permutation: Vec<NodeId>,
}

impl Relabeling {
    /// Builds a relabelling from a permutation vector (`permutation[old] = new`).
    ///
    /// # Panics
    ///
    /// Panics if the vector is not a permutation of `0..len`.
    pub fn from_permutation(permutation: Vec<NodeId>) -> Self {
        let mut seen = vec![false; permutation.len()];
        for &p in &permutation {
            assert!(
                (p as usize) < permutation.len() && !seen[p as usize],
                "not a permutation"
            );
            seen[p as usize] = true;
        }
        Self { permutation }
    }

    /// The identity relabelling over `n` nodes.
    pub fn identity(n: usize) -> Self {
        Self {
            permutation: (0..n as NodeId).collect(),
        }
    }

    /// New id of an old node id.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    pub fn new_id(&self, old: NodeId) -> NodeId {
        self.permutation[old as usize]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// Returns `true` if the relabelling covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.permutation.is_empty()
    }

    /// Applies the relabelling to an edge list.
    pub fn apply(&self, edges: &EdgeList) -> EdgeList {
        let relabelled: Vec<Edge> = edges
            .iter()
            .map(|e| Edge::new(self.new_id(e.src), self.new_id(e.dst)))
            .collect();
        EdgeList::from_edges(edges.num_nodes(), relabelled)
            .expect("permutation preserves the node range")
    }

    /// Returns, for each *new* id, the *old* id it came from — the order in
    /// which rows of the original feature table must be gathered so features
    /// follow their nodes.
    pub fn gather_order(&self) -> Vec<usize> {
        let mut order = vec![0usize; self.permutation.len()];
        for (old, &new) in self.permutation.iter().enumerate() {
            order[new as usize] = old;
        }
        order
    }
}

/// Relabels nodes by descending total degree (in + out), so hub nodes share
/// the first shard blocks.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{reorder, EdgeList};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(4, &[(0, 3), (1, 3), (2, 3)])?;
/// let relabeling = reorder::by_degree_descending(&edges);
/// // Node 3 has the highest degree, so it becomes node 0.
/// assert_eq!(relabeling.new_id(3), 0);
/// # Ok(())
/// # }
/// ```
pub fn by_degree_descending(edges: &EdgeList) -> Relabeling {
    let in_deg = edges.in_degrees();
    let out_deg = edges.out_degrees();
    let mut order: Vec<usize> = (0..edges.num_nodes()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(in_deg[v] + out_deg[v]));
    let mut permutation = vec![0 as NodeId; edges.num_nodes()];
    for (new, &old) in order.iter().enumerate() {
        permutation[old] = new as NodeId;
    }
    Relabeling::from_permutation(permutation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, ShardGrid};

    #[test]
    fn identity_changes_nothing() {
        let edges = generators::rmat(50, 200, 1).unwrap();
        let relabeling = Relabeling::identity(50);
        assert_eq!(relabeling.apply(&edges), edges);
        assert_eq!(relabeling.len(), 50);
        assert!(!relabeling.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_is_rejected() {
        let _ = Relabeling::from_permutation(vec![0, 0, 1]);
    }

    #[test]
    fn degree_sort_puts_hubs_first() {
        let edges = EdgeList::from_pairs(5, &[(0, 4), (1, 4), (2, 4), (3, 4), (0, 1)]).unwrap();
        let relabeling = by_degree_descending(&edges);
        assert_eq!(relabeling.new_id(4), 0);
    }

    #[test]
    fn relabelling_preserves_edge_and_degree_multiset() {
        let edges = generators::rmat(80, 400, 7).unwrap();
        let relabeling = by_degree_descending(&edges);
        let relabelled = relabeling.apply(&edges);
        assert_eq!(relabelled.num_edges(), edges.num_edges());
        let mut before: Vec<usize> = edges.in_degrees();
        let mut after: Vec<usize> = relabelled.in_degrees();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn gather_order_is_the_inverse_permutation() {
        let edges = generators::rmat(30, 120, 3).unwrap();
        let relabeling = by_degree_descending(&edges);
        let gather = relabeling.gather_order();
        for (new, &old) in gather.iter().enumerate() {
            assert_eq!(relabeling.new_id(old as NodeId) as usize, new);
        }
    }

    #[test]
    fn degree_sort_never_increases_occupied_shards() {
        // Concentrating hubs into the same blocks can only keep or reduce the
        // number of shards that contain at least one edge.
        let edges = generators::rmat(512, 3000, 9).unwrap();
        let relabeling = by_degree_descending(&edges);
        let relabelled = relabeling.apply(&edges);
        for nodes_per_shard in [32usize, 64, 128] {
            let before = ShardGrid::build(&edges, nodes_per_shard).unwrap();
            let after = ShardGrid::build(&relabelled, nodes_per_shard).unwrap();
            let occupied = |g: &ShardGrid| g.iter().filter(|s| !s.is_empty()).count();
            assert!(
                occupied(&after) <= occupied(&before),
                "n={nodes_per_shard}: {} -> {}",
                occupied(&before),
                occupied(&after)
            );
        }
    }
}
