use crate::{Edge, EdgeList, GraphError, NodeId};
use gnnerator_observe::Recorder;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::File;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bytes per edge record streamed by the Shard Edge Fetch unit (32-bit source
/// id + 32-bit destination id).
pub const BYTES_PER_EDGE: u64 = 8;
/// Bytes per feature element (fp32) moved by the Shard Feature Fetch unit.
pub const BYTES_PER_FEATURE_ELEMENT: u64 = 4;

/// Traversal order over the 2-D shard grid (Section IV-A, Table I).
///
/// * **Source-stationary** walks across a *row* of the grid: one block of
///   source vertices stays on-chip for the whole row while destination
///   blocks are written back and reloaded.
/// * **Destination-stationary** walks down a *column*: one block of
///   destination vertices (the accumulators) stays on-chip until it has
///   finished aggregating, while source blocks are reloaded.
///
/// The paper assumes an S-pattern (serpentine) walk so that one operand block
/// carries over between consecutive shards; the iterators here follow that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraversalOrder {
    /// Keep a source block on-chip and sweep destinations.
    SourceStationary,
    /// Keep a destination block on-chip and sweep sources (Algorithm 1's
    /// destination-major loop nest). This is the default because it lets
    /// aggregation finish a destination block before feature extraction.
    #[default]
    DestinationStationary,
}

impl fmt::Display for TraversalOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraversalOrder::SourceStationary => f.write_str("src-stationary"),
            TraversalOrder::DestinationStationary => f.write_str("dst-stationary"),
        }
    }
}

/// Position of a shard in the grid: `(src_block, dst_block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShardCoord {
    /// Index of the source-node block (grid row).
    pub src_block: usize,
    /// Index of the destination-node block (grid column).
    pub dst_block: usize,
}

impl ShardCoord {
    /// Creates a new coordinate.
    pub fn new(src_block: usize, dst_block: usize) -> Self {
        Self {
            src_block,
            dst_block,
        }
    }
}

impl fmt::Display for ShardCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src_block, self.dst_block)
    }
}

/// Precomputed metadata of one *occupied* shard: everything the timing
/// simulator and the traffic models need, without touching the shard's edges.
///
/// A [`ShardGrid`] stores one `ShardMeta` per non-empty grid cell. The edge
/// count and the distinct-endpoint counts are fixed at build time, so the
/// cycle/byte cost of processing a shard under any feature-block width is a
/// couple of multiplies away — the simulator's hot loop never walks edge
/// lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMeta {
    coord: ShardCoord,
    /// Start of this shard's edges in the grid's shared arena.
    edge_start: u32,
    num_edges: u32,
    unique_sources: u32,
    unique_destinations: u32,
}

impl ShardMeta {
    /// The shard's grid coordinate.
    pub fn coord(&self) -> ShardCoord {
        self.coord
    }

    /// Number of edges in the shard (always positive: only occupied shards
    /// have metadata).
    pub fn num_edges(&self) -> usize {
        self.num_edges as usize
    }

    /// Number of distinct source nodes referenced by the shard's edges.
    ///
    /// The Shard Feature Fetch unit must bring these nodes' features (or the
    /// active block of their dimensions) on-chip before compute starts.
    pub fn unique_source_count(&self) -> usize {
        self.unique_sources as usize
    }

    /// Number of distinct destination nodes referenced by the shard's edges.
    pub fn unique_destination_count(&self) -> usize {
        self.unique_destinations as usize
    }

    /// Bytes of edge records the Shard Edge Fetch unit streams for this shard.
    pub fn edge_fetch_bytes(&self) -> u64 {
        self.num_edges as u64 * BYTES_PER_EDGE
    }

    /// Bytes of source-node features fetched when `block_dim` feature
    /// dimensions are resident.
    pub fn source_feature_bytes(&self, block_dim: usize) -> u64 {
        self.unique_sources as u64 * block_dim as u64 * BYTES_PER_FEATURE_ELEMENT
    }

    /// Bytes of destination accumulators touched when `block_dim` feature
    /// dimensions are resident (one spill *or* one reload; Table I's
    /// write-cost term pays it twice).
    pub fn destination_feature_bytes(&self, block_dim: usize) -> u64 {
        self.unique_destinations as u64 * block_dim as u64 * BYTES_PER_FEATURE_ELEMENT
    }

    fn edge_range(&self) -> Range<usize> {
        let start = self.edge_start as usize;
        start..start + self.num_edges as usize
    }

    /// Raw constructor used by the artifact cache's deserialiser.
    pub(crate) fn from_raw(
        coord: ShardCoord,
        edge_start: u32,
        num_edges: u32,
        unique_sources: u32,
        unique_destinations: u32,
    ) -> Self {
        Self {
            coord,
            edge_start,
            num_edges,
            unique_sources,
            unique_destinations,
        }
    }

    /// Start offset of this shard's edges in the grid arena (cache
    /// serialisation only).
    pub(crate) fn edge_start(&self) -> u32 {
        self.edge_start
    }
}

/// A shard-sized run of edges, shared with either the grid's resident arena
/// or a [`ShardWindow`] cache segment.
///
/// Dereferences to `[Edge]`. Cloning is an `Arc` bump; holding a segment
/// keeps its backing buffer alive (for a windowed grid that pins the segment
/// even across an eviction, so a consumer never observes edges change under
/// it).
#[derive(Debug, Clone)]
pub struct EdgeSegment {
    buf: Arc<Vec<Edge>>,
    start: usize,
    len: usize,
}

impl EdgeSegment {
    /// A segment covering `range` of a shared arena.
    fn slice(buf: Arc<Vec<Edge>>, range: Range<usize>) -> Self {
        debug_assert!(range.end <= buf.len());
        EdgeSegment {
            buf,
            start: range.start,
            len: range.len(),
        }
    }

    /// A segment covering an entire buffer (a faulted-in window segment).
    fn whole(buf: Arc<Vec<Edge>>) -> Self {
        let len = buf.len();
        EdgeSegment { buf, start: 0, len }
    }

    /// The canonical empty segment.
    fn empty() -> Self {
        static EMPTY: OnceLock<Arc<Vec<Edge>>> = OnceLock::new();
        EdgeSegment::whole(Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new()))))
    }
}

impl std::ops::Deref for EdgeSegment {
    type Target = [Edge];

    fn deref(&self) -> &[Edge] {
        &self.buf[self.start..self.start + self.len]
    }
}

impl PartialEq for EdgeSegment {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for EdgeSegment {}

impl PartialEq<[Edge]> for EdgeSegment {
    fn eq(&self, other: &[Edge]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[Edge]> for EdgeSegment {
    fn eq(&self, other: &&[Edge]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<Edge>> for EdgeSegment {
    fn eq(&self, other: &Vec<Edge>) -> bool {
        **self == other[..]
    }
}

/// A shared residency budget for one or more [`ShardWindow`]s.
///
/// A session whose layers derive different shardings holds one windowed grid
/// per sharding; their windows draw from a single pool so the budget bounds
/// the *total* window residency instead of letting each window claim the
/// full budget on its own. Windows opened without an explicit pool get a
/// private one of their capacity.
pub struct WindowPool {
    /// Capacity of the pooled residency in bytes.
    cap: u64,
    /// Bytes currently reserved across every window drawing on this pool.
    resident: AtomicU64,
    /// Telemetry sink for this pool's windows. Defaults to the process
    /// global; a scoped recorder isolates this pool's counts per session.
    recorder: Recorder,
}

impl WindowPool {
    /// A fresh pool holding at most `cap` bytes of window segments,
    /// recording into the process-global telemetry.
    pub fn new(cap: u64) -> Arc<Self> {
        Self::with_recorder(cap, Recorder::default())
    }

    /// A fresh pool recording into `recorder` (and, via the recorder's
    /// parent chain, every ancestor up to the global root).
    pub fn with_recorder(cap: u64, recorder: Recorder) -> Arc<Self> {
        Arc::new(WindowPool {
            cap,
            resident: AtomicU64::new(0),
            recorder,
        })
    }

    /// The telemetry sink this pool's windows record into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The pool's byte capacity.
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    /// Bytes currently resident across the pool's windows.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether reserving `bytes` more would overflow the pool.
    fn over(&self, bytes: u64) -> bool {
        self.resident_bytes() + bytes > self.cap
    }

    /// Reserves `bytes` if the pool stays at or under capacity; the global
    /// window gauge mirrors every successful reservation.
    fn try_reserve(&self, bytes: u64) -> bool {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if now > self.cap {
            self.resident.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        self.recorder.window_resident_add(bytes);
        true
    }

    /// Returns `bytes` of reserved residency to the pool.
    fn release(&self, bytes: u64) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
        self.recorder.window_resident_sub(bytes);
    }
}

impl fmt::Debug for WindowPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowPool")
            .field("cap", &self.cap)
            .field("resident", &self.resident_bytes())
            .finish()
    }
}

/// A bounded LRU cache of shard edge extents `pread` from a segmented v2
/// grid artifact.
///
/// This is what lets a [`ShardGrid`] simulate from disk: instead of the
/// whole sorted arena, at most a [`WindowPool`]'s capacity of shard segments
/// stay resident, keyed by their arena offset. The serpentine walk's
/// locality means a window at least one grid row wide faults each shard in
/// only once per traversal direction; anything smaller still works, it just
/// re-reads.
///
/// Fetches outside the lock may race and read the same extent twice; the
/// loser's buffer is dropped, so the cache never holds duplicates. Segments
/// larger than the whole pool are served uncached (as is everything when
/// the capacity is 0, the degenerate always-stream window), and so is any
/// extent the pool cannot fit after this window has evicted everything it
/// holds — sibling windows on the same pool never stack their budgets.
pub struct ShardWindow {
    file: File,
    path: PathBuf,
    /// Byte offset of the edge arena inside the artifact file.
    arena_offset: u64,
    /// Total edges in the on-disk arena.
    arena_len: usize,
    /// The residency budget this window draws from (possibly shared).
    pool: Arc<WindowPool>,
    state: Mutex<WindowState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time per-window fault statistics (see [`ShardWindow::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Extents served from resident segments.
    pub hits: u64,
    /// Extents faulted in from disk.
    pub misses: u64,
    /// Segments evicted to stay under capacity.
    pub evictions: u64,
}

#[derive(Default)]
struct WindowState {
    /// Resident segments keyed by arena edge offset.
    segments: HashMap<u32, Arc<Vec<Edge>>>,
    /// Same keys, least-recently-used first.
    lru: VecDeque<u32>,
    resident_bytes: u64,
}

impl ShardWindow {
    /// Wraps an already-validated segmented artifact, drawing residency from
    /// `pool` (shared between sibling windows, or private to this one).
    /// `arena_offset` is the byte position of the first edge record in
    /// `file`.
    pub(crate) fn with_pool(
        file: File,
        path: PathBuf,
        arena_offset: u64,
        arena_len: usize,
        pool: Arc<WindowPool>,
    ) -> Self {
        ShardWindow {
            file,
            path,
            arena_offset,
            arena_len,
            pool,
            state: Mutex::new(WindowState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// This window's own hit/miss/eviction counts (the process-wide
    /// aggregates live in [`memory_telemetry`](crate::memory_telemetry)).
    pub fn stats(&self) -> WindowStats {
        WindowStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total edges in the on-disk arena.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Capacity of the window's residency pool in bytes.
    pub fn window_bytes(&self) -> u64 {
        self.pool.capacity()
    }

    /// The residency pool this window draws from.
    pub fn pool(&self) -> &Arc<WindowPool> {
        &self.pool
    }

    /// Bytes of segments currently resident in this window.
    pub fn resident_bytes(&self) -> u64 {
        self.lock().resident_bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the edges of the shard described by `meta`, faulting them in
    /// from disk on a miss and evicting least-recently-used segments to stay
    /// under `window_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the artifact file can no longer deliver the extent (for
    /// example it was deleted mid-run). The file was fully checksum-validated
    /// when the window was opened, so this is an external interference
    /// failure, not a data-dependent one; serving workers supervise panics
    /// and degrade per-request.
    fn fetch(&self, meta: &ShardMeta) -> EdgeSegment {
        let key = meta.edge_start();
        {
            let mut state = self.lock();
            if let Some(buf) = state.segments.get(&key).cloned() {
                self.pool.recorder.note_window_hit();
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(pos) = state.lru.iter().position(|&k| k == key) {
                    state.lru.remove(pos);
                    state.lru.push_back(key);
                }
                return EdgeSegment::whole(buf);
            }
        }

        self.pool.recorder.note_window_miss();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let buf = Arc::new(self.read_extent(meta));
        let bytes = meta.num_edges() as u64 * BYTES_PER_EDGE;
        self.pool.recorder.note_window_faulted_bytes(bytes);
        if bytes > self.pool.capacity() {
            // Too big to ever cache (or a zero-byte window): serve uncached.
            return EdgeSegment::whole(buf);
        }

        let mut state = self.lock();
        if let Some(existing) = state.segments.get(&key).cloned() {
            // A concurrent fetch of the same extent won the insert race.
            return EdgeSegment::whole(existing);
        }
        // The pool may be shared with sibling windows, so evict from this
        // window only; if the pool still cannot fit the extent (a sibling
        // holds the budget), serve it uncached — a serpentine pass touches
        // each extent once, so an uncacheable extent costs nothing beyond
        // the fault already paid.
        while self.pool.over(bytes) {
            let Some(victim) = state.lru.pop_front() else {
                break;
            };
            if let Some(evicted) = state.segments.remove(&victim) {
                let evicted_bytes = evicted.len() as u64 * BYTES_PER_EDGE;
                state.resident_bytes -= evicted_bytes;
                self.pool.recorder.note_window_eviction();
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.pool.release(evicted_bytes);
            }
        }
        if !self.pool.try_reserve(bytes) {
            return EdgeSegment::whole(buf);
        }
        state.segments.insert(key, Arc::clone(&buf));
        state.lru.push_back(key);
        state.resident_bytes += bytes;
        EdgeSegment::whole(buf)
    }

    /// `pread`s and decodes one shard extent from the artifact file.
    fn read_extent(&self, meta: &ShardMeta) -> Vec<Edge> {
        use std::os::unix::fs::FileExt;

        let offset = self.arena_offset + meta.edge_start() as u64 * BYTES_PER_EDGE;
        let mut raw = vec![0u8; meta.num_edges() * BYTES_PER_EDGE as usize];
        if let Err(err) = self.file.read_exact_at(&mut raw, offset) {
            panic!(
                "shard window lost its backing artifact {}: {err}",
                self.path.display()
            );
        }
        raw.chunks_exact(BYTES_PER_EDGE as usize)
            .map(|rec| {
                Edge::new(
                    u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]),
                    u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]),
                )
            })
            .collect()
    }
}

impl Drop for ShardWindow {
    fn drop(&mut self) {
        // Return the window's residency to its pool and the process-wide
        // gauge so leaked window state is observable
        // (`memory::window_resident_bytes`).
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        if state.resident_bytes > 0 {
            self.pool.release(state.resident_bytes);
        }
    }
}

impl fmt::Debug for ShardWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardWindow")
            .field("path", &self.path)
            .field("arena_offset", &self.arena_offset)
            .field("arena_len", &self.arena_len)
            .field("window_bytes", &self.pool.capacity())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

/// Where a grid's edge arena lives: fully resident in memory, or behind a
/// bounded [`ShardWindow`] over the segmented artifact file.
#[derive(Debug, Clone)]
enum EdgeStore {
    Resident(Arc<Vec<Edge>>),
    Windowed(Arc<ShardWindow>),
}

/// A view of one shard: its metadata plus its run of edges.
///
/// Produced by [`ShardGrid::shard`], [`ShardGrid::iter`] and
/// [`ShardGrid::occupied_traversal`]. For a resident grid the edges alias
/// the shared arena (no copy); for a windowed grid they pin the shard's
/// cached window segment. Cloning a view is an `Arc` bump either way.
#[derive(Debug, Clone)]
pub struct ShardView<'a> {
    coord: ShardCoord,
    meta: Option<&'a ShardMeta>,
    edges: EdgeSegment,
}

impl<'a> ShardView<'a> {
    /// The shard's grid coordinate.
    pub fn coord(&self) -> ShardCoord {
        self.coord
    }

    /// The shard's metadata, or `None` if the shard is empty.
    pub fn meta(&self) -> Option<&'a ShardMeta> {
        self.meta
    }

    /// Edges contained in the shard, sorted by `(src, dst)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges in the shard.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the shard contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of distinct source nodes referenced by the shard's edges.
    pub fn unique_source_count(&self) -> usize {
        self.meta.map_or(0, ShardMeta::unique_source_count)
    }

    /// Number of distinct destination nodes referenced by the shard's edges.
    pub fn unique_destination_count(&self) -> usize {
        self.meta.map_or(0, ShardMeta::unique_destination_count)
    }
}

/// A GridGraph-style two-dimensional shard grid (Figure 1), stored sparsely.
///
/// The node id space is cut into `grid_dim` contiguous blocks of at most
/// `nodes_per_shard` nodes; shard `(i, j)` holds every edge whose source lies
/// in block `i` and whose destination lies in block `j`. Each shard therefore
/// contains at most `nodes_per_shard²` edges, matching the paper's "maximum
/// of n² edges" definition.
///
/// Real graphs sharded this way are extremely sparse at the shard level —
/// most of the `S²` cells hold no edges — so the grid never materialises
/// per-cell storage. Instead it keeps:
///
/// * one **edge arena**: every edge, sorted by `(src_block, dst_block, src,
///   dst)`, so each shard's edges are one contiguous slice;
/// * one [`ShardMeta`] per *occupied* shard (row-major), carrying the edge
///   count, distinct-endpoint counts and arena offset;
/// * CSR-style offset indexes over both grid axes (`row_offsets` for
///   source-stationary walks, `col_offsets`/`col_entries` for
///   destination-stationary walks), so traversals touch only occupied cells.
///
/// Memory is `O(E + occupied + S)` instead of the dense `O(S² + E)` (with a
/// second edge copy) a `Vec<Shard>` layout costs.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{EdgeList, ShardGrid, TraversalOrder};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(6, &[(0, 5), (3, 1), (5, 0), (2, 4)])?;
/// let grid = ShardGrid::build(&edges, 3)?;
/// assert_eq!(grid.grid_dim(), 2);
/// assert_eq!(grid.total_edges(), 4);
/// // The four edges land in two of the four grid cells; the occupancy-aware
/// // walk visits only those.
/// assert_eq!(grid.occupied_shards(), 2);
/// let visited: Vec<_> = grid.traversal(TraversalOrder::DestinationStationary).collect();
/// assert_eq!(visited.len(), 4);
/// assert_eq!(grid.occupied_traversal(TraversalOrder::DestinationStationary).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardGrid {
    num_nodes: usize,
    nodes_per_shard: usize,
    grid_dim: usize,
    /// Every edge, sorted by `(src_block, dst_block, src, dst)` — resident
    /// in memory or behind a bounded shard window over the artifact file.
    store: EdgeStore,
    /// Metadata of occupied shards, row-major (`src_block` outer).
    metas: Vec<ShardMeta>,
    /// `metas[row_offsets[i]..row_offsets[i + 1]]` are row `i`'s occupied
    /// shards, in ascending `dst_block` order.
    row_offsets: Vec<usize>,
    /// Indices into `metas`, sorted column-major (`dst_block` outer).
    col_entries: Vec<usize>,
    /// `col_entries[col_offsets[j]..col_offsets[j + 1]]` are column `j`'s
    /// occupied shards, in ascending `src_block` order.
    col_offsets: Vec<usize>,
}

impl ShardGrid {
    /// Builds a shard grid from an edge list, with at most `nodes_per_shard`
    /// source (and destination) nodes per shard.
    ///
    /// The build is a single sort of the edge arena by shard coordinate
    /// followed by one linear scan that emits per-shard metadata — no
    /// per-cell buckets are ever allocated, so the cost is
    /// `O(E log E + S)` regardless of how empty the grid is.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `nodes_per_shard` is zero
    /// or the edge list has no nodes.
    pub fn build(edges: &EdgeList, nodes_per_shard: usize) -> Result<Self, GraphError> {
        if nodes_per_shard == 0 {
            return Err(GraphError::invalid("nodes_per_shard", "must be positive"));
        }
        let num_nodes = edges.num_nodes();
        if num_nodes == 0 {
            return Err(GraphError::invalid("edges", "graph has no nodes"));
        }
        if edges.num_edges() > u32::MAX as usize {
            return Err(GraphError::invalid(
                "edges",
                "edge count exceeds the 32-bit arena index space",
            ));
        }
        let mut arena: Vec<Edge> = edges.iter().copied().collect();
        arena.sort_unstable_by_key(|e| {
            (
                e.src as usize / nodes_per_shard,
                e.dst as usize / nodes_per_shard,
                e.src,
                e.dst,
            )
        });

        // One scan over the sorted arena: each run of equal (src_block,
        // dst_block) is an occupied shard. Within a run edges are sorted by
        // (src, dst), so distinct sources fall out of adjacent comparisons;
        // distinct destinations need one small sort of the run's endpoints.
        let mut metas: Vec<ShardMeta> = Vec::new();
        let mut dst_scratch: Vec<NodeId> = Vec::new();
        let mut start = 0usize;
        while start < arena.len() {
            let coord = ShardCoord::new(
                arena[start].src as usize / nodes_per_shard,
                arena[start].dst as usize / nodes_per_shard,
            );
            let mut end = start + 1;
            while end < arena.len()
                && arena[end].src as usize / nodes_per_shard == coord.src_block
                && arena[end].dst as usize / nodes_per_shard == coord.dst_block
            {
                end += 1;
            }
            let run = &arena[start..end];
            let unique_sources = 1 + run.windows(2).filter(|w| w[0].src != w[1].src).count();
            dst_scratch.clear();
            dst_scratch.extend(run.iter().map(|e| e.dst));
            dst_scratch.sort_unstable();
            dst_scratch.dedup();
            metas.push(ShardMeta {
                coord,
                edge_start: start as u32,
                num_edges: (end - start) as u32,
                unique_sources: unique_sources as u32,
                unique_destinations: dst_scratch.len() as u32,
            });
            start = end;
        }

        Ok(Self::assemble(num_nodes, nodes_per_shard, arena, metas))
    }

    /// Builds a shard grid from a `(src, dst)`-sorted edge *stream* without
    /// ever materialising a full [`EdgeList`] — the out-of-core companion to
    /// [`ShardGrid::build`], bit-identical to it on the same edges.
    ///
    /// A `(src, dst)`-sorted stream delivers edges grouped by contiguous
    /// source block, so the builder buffers one source-block *row group* at
    /// a time, sorts it by `(dst_block, src, dst)` (completing the arena's
    /// `(src_block, dst_block, src, dst)` order) and appends it to the
    /// arena with placeholder shard metadata. The per-shard
    /// distinct-endpoint counts are then filled in by a rayon-parallel pass
    /// over the finished arena slices. Peak transient memory is one row
    /// group, not the whole edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `nodes_per_shard` is
    /// zero, `num_nodes` is zero, the stream is not sorted by `(src, dst)`,
    /// or the edge count exceeds the 32-bit arena index space, and
    /// [`GraphError::NodeOutOfRange`] for an endpoint `>= num_nodes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_graph::{EdgeList, ShardGrid};
    ///
    /// # fn main() -> Result<(), gnnerator_graph::GraphError> {
    /// let edges = EdgeList::from_pairs(6, &[(0, 5), (2, 4), (3, 1), (5, 0)])?;
    /// let streamed = ShardGrid::build_streamed(6, 3, edges.iter().copied())?;
    /// assert_eq!(streamed, ShardGrid::build(&edges, 3)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build_streamed<I>(
        num_nodes: usize,
        nodes_per_shard: usize,
        edges: I,
    ) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        if nodes_per_shard == 0 {
            return Err(GraphError::invalid("nodes_per_shard", "must be positive"));
        }
        if num_nodes == 0 {
            return Err(GraphError::invalid("edges", "graph has no nodes"));
        }

        /// Sorts one source-block row group into shard order and appends it
        /// to the arena, emitting metadata (uniques deferred) per shard run.
        fn flush_row_group(
            row: &mut Vec<Edge>,
            nodes_per_shard: usize,
            arena: &mut Vec<Edge>,
            metas: &mut Vec<ShardMeta>,
        ) {
            if row.is_empty() {
                return;
            }
            row.sort_unstable_by_key(|e| (e.dst as usize / nodes_per_shard, e.src, e.dst));
            let mut start = 0usize;
            while start < row.len() {
                let coord = ShardCoord::new(
                    row[start].src as usize / nodes_per_shard,
                    row[start].dst as usize / nodes_per_shard,
                );
                let mut end = start + 1;
                while end < row.len() && row[end].dst as usize / nodes_per_shard == coord.dst_block
                {
                    end += 1;
                }
                metas.push(ShardMeta {
                    coord,
                    edge_start: (arena.len() + start) as u32,
                    num_edges: (end - start) as u32,
                    unique_sources: 0,
                    unique_destinations: 0,
                });
                start = end;
            }
            arena.extend_from_slice(row);
            row.clear();
        }

        let mut arena: Vec<Edge> = Vec::new();
        let mut metas: Vec<ShardMeta> = Vec::new();
        let mut row: Vec<Edge> = Vec::new();
        let mut row_block = 0usize;
        let mut prev: Option<Edge> = None;
        for edge in edges {
            for node in [edge.src, edge.dst] {
                if node as usize >= num_nodes {
                    return Err(GraphError::NodeOutOfRange { node, num_nodes });
                }
            }
            if prev.is_some_and(|p| edge < p) {
                return Err(GraphError::invalid(
                    "edges",
                    "stream must be sorted by (src, dst)",
                ));
            }
            prev = Some(edge);
            if arena.len() + row.len() >= u32::MAX as usize {
                return Err(GraphError::invalid(
                    "edges",
                    "edge count exceeds the 32-bit arena index space",
                ));
            }
            let block = edge.src as usize / nodes_per_shard;
            if row.is_empty() {
                row_block = block;
            } else if block != row_block {
                flush_row_group(&mut row, nodes_per_shard, &mut arena, &mut metas);
                row_block = block;
            }
            row.push(edge);
        }
        flush_row_group(&mut row, nodes_per_shard, &mut arena, &mut metas);

        // Distinct-endpoint counts, shard-parallel over finished arena
        // slices: within a run edges are sorted by (src, dst), so distinct
        // sources fall out of adjacent comparisons; distinct destinations
        // need one small per-shard sort.
        let arena_ref = &arena;
        metas.par_iter_mut().for_each(|meta| {
            let run = &arena_ref[meta.edge_range()];
            let unique_sources = 1 + run.windows(2).filter(|w| w[0].src != w[1].src).count();
            let mut dsts: Vec<NodeId> = run.iter().map(|e| e.dst).collect();
            dsts.sort_unstable();
            dsts.dedup();
            meta.unique_sources = unique_sources as u32;
            meta.unique_destinations = dsts.len() as u32;
        });

        Ok(Self::assemble(num_nodes, nodes_per_shard, arena, metas))
    }

    /// Assembles a grid from a sorted arena and its row-major occupied-shard
    /// metadata, rebuilding the CSR-style row/column indexes. Shared by
    /// [`ShardGrid::build`] and the artifact cache's deserialiser (the
    /// indexes are cheap linear passes, so they are recomputed rather than
    /// stored).
    pub(crate) fn assemble(
        num_nodes: usize,
        nodes_per_shard: usize,
        arena: Vec<Edge>,
        metas: Vec<ShardMeta>,
    ) -> Self {
        Self::assemble_store(
            num_nodes,
            nodes_per_shard,
            EdgeStore::Resident(Arc::new(arena)),
            metas,
        )
    }

    /// Assembles a *windowed* grid over a validated segmented artifact: same
    /// metadata and indexes as [`ShardGrid::assemble`], but shard edges are
    /// faulted in through `window` on demand instead of living in memory.
    pub(crate) fn assemble_windowed(
        num_nodes: usize,
        nodes_per_shard: usize,
        window: ShardWindow,
        metas: Vec<ShardMeta>,
    ) -> Self {
        Self::assemble_store(
            num_nodes,
            nodes_per_shard,
            EdgeStore::Windowed(Arc::new(window)),
            metas,
        )
    }

    fn assemble_store(
        num_nodes: usize,
        nodes_per_shard: usize,
        store: EdgeStore,
        metas: Vec<ShardMeta>,
    ) -> Self {
        let grid_dim = num_nodes.div_ceil(nodes_per_shard);

        // Row index: metas are already row-major, so offsets come from one
        // counting pass.
        let mut row_offsets = vec![0usize; grid_dim + 1];
        for meta in &metas {
            row_offsets[meta.coord.src_block + 1] += 1;
        }
        for i in 0..grid_dim {
            row_offsets[i + 1] += row_offsets[i];
        }

        // Column index: a permutation of the meta indices grouped by
        // destination block, ascending source block within each group.
        let mut col_offsets = vec![0usize; grid_dim + 1];
        for meta in &metas {
            col_offsets[meta.coord.dst_block + 1] += 1;
        }
        for j in 0..grid_dim {
            col_offsets[j + 1] += col_offsets[j];
        }
        let mut col_entries = vec![0usize; metas.len()];
        let mut cursor = col_offsets.clone();
        for (index, meta) in metas.iter().enumerate() {
            let slot = cursor[meta.coord.dst_block];
            col_entries[slot] = index;
            cursor[meta.coord.dst_block] += 1;
        }

        Self {
            num_nodes,
            nodes_per_shard,
            grid_dim,
            store,
            metas,
            row_offsets,
            col_entries,
            col_offsets,
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Maximum number of nodes per block (the paper's tunable `n`).
    pub fn nodes_per_shard(&self) -> usize {
        self.nodes_per_shard
    }

    /// Width/height of the square shard grid (the paper's `S`).
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Total number of edges across all shards.
    pub fn total_edges(&self) -> usize {
        match &self.store {
            EdgeStore::Resident(arena) => arena.len(),
            EdgeStore::Windowed(window) => window.arena_len(),
        }
    }

    /// Number of shards that contain at least one edge.
    pub fn occupied_shards(&self) -> usize {
        self.metas.len()
    }

    /// `true` when this grid simulates from disk through a bounded
    /// [`ShardWindow`] instead of a resident edge arena.
    pub fn is_windowed(&self) -> bool {
        matches!(self.store, EdgeStore::Windowed(_))
    }

    /// The backing shard window of a windowed grid, or `None` when the
    /// arena is resident.
    pub fn window(&self) -> Option<&ShardWindow> {
        match &self.store {
            EdgeStore::Resident(_) => None,
            EdgeStore::Windowed(window) => Some(window),
        }
    }

    /// The shared edge arena, sorted by `(src_block, dst_block, src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics for a windowed grid, which never materialises the whole arena;
    /// walk shards via [`ShardGrid::edges_of`] or
    /// [`ShardGrid::occupied_traversal`] instead (or check
    /// [`ShardGrid::is_windowed`] first).
    pub fn edges(&self) -> &[Edge] {
        self.resident_edges().expect(
            "windowed ShardGrid does not expose the whole edge arena; \
             iterate shards via edges_of/occupied_traversal",
        )
    }

    /// The resident edge arena, or `None` for a windowed grid.
    pub(crate) fn resident_edges(&self) -> Option<&[Edge]> {
        match &self.store {
            EdgeStore::Resident(arena) => Some(arena),
            EdgeStore::Windowed(_) => None,
        }
    }

    /// Metadata of every occupied shard, row-major.
    pub fn metas(&self) -> &[ShardMeta] {
        &self.metas
    }

    /// The edges of the shard described by `meta`, sharing the resident
    /// arena or faulting the extent in through the shard window.
    ///
    /// # Panics
    ///
    /// Panics if `meta` did not come from this grid and indexes out of the
    /// arena, or if a windowed grid's backing artifact disappeared mid-run.
    pub fn edges_of(&self, meta: &ShardMeta) -> EdgeSegment {
        match &self.store {
            EdgeStore::Resident(arena) => EdgeSegment::slice(Arc::clone(arena), meta.edge_range()),
            EdgeStore::Windowed(window) => window.fetch(meta),
        }
    }

    /// Streams the shard's edge extent into residency: a no-op for a
    /// resident grid, a window fetch (hit or fault) for a windowed one.
    ///
    /// The timing simulator calls this where the hardware's graph engine
    /// would stream the shard's edges, so a windowed simulation actually
    /// pays — and meters — the disk traffic of its serpentine walk, while
    /// the resident path stays untouched.
    pub fn touch(&self, meta: &ShardMeta) {
        if let EdgeStore::Windowed(window) = &self.store {
            drop(window.fetch(meta));
        }
    }

    /// Metadata of row `src_block`'s occupied shards, ascending `dst_block`.
    ///
    /// # Panics
    ///
    /// Panics if `src_block >= grid_dim`.
    pub fn row_metas(&self, src_block: usize) -> &[ShardMeta] {
        assert!(src_block < self.grid_dim, "row {src_block} out of range");
        &self.metas[self.row_offsets[src_block]..self.row_offsets[src_block + 1]]
    }

    /// Metadata of column `dst_block`'s occupied shards, ascending
    /// `src_block`.
    ///
    /// # Panics
    ///
    /// Panics if `dst_block >= grid_dim`.
    pub fn column_metas(&self, dst_block: usize) -> impl Iterator<Item = &ShardMeta> + '_ {
        assert!(dst_block < self.grid_dim, "column {dst_block} out of range");
        self.col_entries[self.col_offsets[dst_block]..self.col_offsets[dst_block + 1]]
            .iter()
            .map(move |&index| &self.metas[index])
    }

    /// The shard at `coord` (a borrowed view; empty cells return an
    /// edge-less view rather than failing).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn shard(&self, coord: ShardCoord) -> ShardView<'_> {
        assert!(
            coord.src_block < self.grid_dim && coord.dst_block < self.grid_dim,
            "shard {coord} out of range for {0}x{0} grid",
            self.grid_dim
        );
        match self
            .row_metas(coord.src_block)
            .binary_search_by_key(&coord.dst_block, |m| m.coord.dst_block)
        {
            Ok(offset) => {
                let meta = &self.row_metas(coord.src_block)[offset];
                ShardView {
                    coord,
                    meta: Some(meta),
                    edges: self.edges_of(meta),
                }
            }
            Err(_) => ShardView {
                coord,
                meta: None,
                edges: EdgeSegment::empty(),
            },
        }
    }

    /// Iterates over the occupied shards in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = ShardView<'_>> + '_ {
        self.metas.iter().map(move |meta| ShardView {
            coord: meta.coord,
            meta: Some(meta),
            edges: self.edges_of(meta),
        })
    }

    /// The contiguous range of node ids belonging to block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= grid_dim`.
    pub fn block_nodes(&self, block: usize) -> Range<NodeId> {
        assert!(block < self.grid_dim, "block {block} out of range");
        let start = (block * self.nodes_per_shard) as NodeId;
        let end = ((block + 1) * self.nodes_per_shard).min(self.num_nodes) as NodeId;
        start..end
    }

    /// Number of nodes in block `block`.
    pub fn block_len(&self, block: usize) -> usize {
        let r = self.block_nodes(block);
        (r.end - r.start) as usize
    }

    /// Fraction of shards that contain at least one edge.
    ///
    /// Real-world graphs sharded this way are sparse at the shard level too;
    /// this statistic feeds the report's locality section and quantifies how
    /// much work the occupancy-aware traversals skip.
    pub fn occupancy(&self) -> f64 {
        let cells = self.grid_dim * self.grid_dim;
        if cells == 0 {
            return 0.0;
        }
        self.metas.len() as f64 / cells as f64
    }

    /// Maximum number of edges in any single shard.
    pub fn max_shard_edges(&self) -> usize {
        self.metas
            .iter()
            .map(ShardMeta::num_edges)
            .max()
            .unwrap_or(0)
    }

    /// Returns every grid coordinate — occupied or not — in the S-pattern
    /// (serpentine) order for the given traversal.
    ///
    /// For [`TraversalOrder::DestinationStationary`] the walk proceeds column
    /// by column (destination block outer loop), alternating the direction of
    /// each column so consecutive shards share a source block boundary. For
    /// [`TraversalOrder::SourceStationary`] the walk proceeds row by row.
    ///
    /// The iterator is allocation-free: coordinates are computed from a
    /// linear index. For walks that should skip empty cells, use
    /// [`ShardGrid::occupied_traversal`].
    pub fn traversal(&self, order: TraversalOrder) -> SerpentineCoords {
        SerpentineCoords {
            grid_dim: self.grid_dim,
            order,
            next: 0,
            total: self.grid_dim * self.grid_dim,
        }
    }

    /// Returns the *occupied* shards in the same S-pattern order as
    /// [`ShardGrid::traversal`], skipping empty cells via the sparse index.
    ///
    /// This is the subsequence of the full serpentine walk restricted to
    /// shards that actually contain edges, so any consumer for whom empty
    /// shards are no-ops (the timing simulator, the functional executor)
    /// observes an identical processing order at `O(occupied + S)` cost
    /// instead of `O(S²)`.
    pub fn occupied_traversal(&self, order: TraversalOrder) -> OccupiedTraversal<'_> {
        OccupiedTraversal {
            grid: self,
            order,
            outer: 0,
            group: 0..0,
            reverse: false,
        }
    }
}

impl PartialEq for ShardGrid {
    /// Logical equality: same sharding parameters, same occupied-shard
    /// metadata, same edges shard by shard. A windowed grid compares equal
    /// to the resident grid it was serialised from (comparing one faults
    /// its shards through the window).
    fn eq(&self, other: &Self) -> bool {
        if self.num_nodes != other.num_nodes
            || self.nodes_per_shard != other.nodes_per_shard
            || self.grid_dim != other.grid_dim
            || self.metas != other.metas
        {
            return false;
        }
        // The CSR indexes are derived from the metas, so they need no
        // separate comparison.
        match (&self.store, &other.store) {
            (EdgeStore::Resident(a), EdgeStore::Resident(b)) => a == b,
            _ => {
                self.total_edges() == other.total_edges()
                    && self
                        .metas
                        .iter()
                        .all(|meta| self.edges_of(meta) == other.edges_of(meta))
            }
        }
    }
}

impl Eq for ShardGrid {}

/// Allocation-free serpentine coordinate iterator returned by
/// [`ShardGrid::traversal`].
#[derive(Debug, Clone)]
pub struct SerpentineCoords {
    grid_dim: usize,
    order: TraversalOrder,
    next: usize,
    total: usize,
}

impl Iterator for SerpentineCoords {
    type Item = ShardCoord;

    fn next(&mut self) -> Option<ShardCoord> {
        if self.next >= self.total {
            return None;
        }
        let s = self.grid_dim;
        let outer = self.next / s;
        let raw = self.next % s;
        let inner = if outer % 2 == 0 { raw } else { s - 1 - raw };
        self.next += 1;
        Some(match self.order {
            TraversalOrder::DestinationStationary => ShardCoord::new(inner, outer),
            TraversalOrder::SourceStationary => ShardCoord::new(outer, inner),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SerpentineCoords {}

/// Occupied-only serpentine shard iterator returned by
/// [`ShardGrid::occupied_traversal`].
///
/// Walks the sparse row/column index group by group, reversing every other
/// group to follow the S-pattern, and yields a [`ShardView`] per occupied
/// shard.
#[derive(Debug, Clone)]
pub struct OccupiedTraversal<'a> {
    grid: &'a ShardGrid,
    order: TraversalOrder,
    /// Next outer row/column group to open.
    outer: usize,
    /// Remaining entry range of the currently open group.
    group: Range<usize>,
    /// Whether the open group is consumed back to front.
    reverse: bool,
}

impl<'a> OccupiedTraversal<'a> {
    fn meta_at(&self, entry: usize) -> &'a ShardMeta {
        match self.order {
            TraversalOrder::SourceStationary => &self.grid.metas[entry],
            TraversalOrder::DestinationStationary => &self.grid.metas[self.grid.col_entries[entry]],
        }
    }
}

impl<'a> Iterator for OccupiedTraversal<'a> {
    type Item = ShardView<'a>;

    fn next(&mut self) -> Option<ShardView<'a>> {
        loop {
            if !self.group.is_empty() {
                let entry = if self.reverse {
                    self.group.end -= 1;
                    self.group.end
                } else {
                    let e = self.group.start;
                    self.group.start += 1;
                    e
                };
                let meta = self.meta_at(entry);
                return Some(ShardView {
                    coord: meta.coord,
                    meta: Some(meta),
                    edges: self.grid.edges_of(meta),
                });
            }
            if self.outer >= self.grid.grid_dim {
                return None;
            }
            let offsets = match self.order {
                TraversalOrder::SourceStationary => &self.grid.row_offsets,
                TraversalOrder::DestinationStationary => &self.grid.col_offsets,
            };
            self.group = offsets[self.outer]..offsets[self.outer + 1];
            self.reverse = self.outer % 2 == 1;
            self.outer += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> EdgeList {
        EdgeList::from_pairs(
            8,
            &[
                (0, 1),
                (0, 7),
                (1, 4),
                (2, 3),
                (3, 6),
                (4, 0),
                (5, 2),
                (6, 5),
                (7, 7),
                (7, 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_rejects_bad_parameters() {
        let edges = sample_edges();
        assert!(ShardGrid::build(&edges, 0).is_err());
        let empty = EdgeList::new(0);
        assert!(ShardGrid::build(&empty, 4).is_err());
    }

    #[test]
    fn streamed_build_is_bit_identical_to_in_memory() {
        let mut sorted: Vec<Edge> = sample_edges().iter().copied().collect();
        sorted.sort_unstable();
        let edges = EdgeList::from_edges(8, sorted).unwrap();
        for nps in [1, 2, 3, 4, 8, 16] {
            let built = ShardGrid::build(&edges, nps).unwrap();
            let streamed =
                ShardGrid::build_streamed(edges.num_nodes(), nps, edges.iter().copied()).unwrap();
            assert_eq!(streamed, built, "nps={nps}");
        }
        // An empty sorted stream matches the edgeless build.
        let empty = EdgeList::new(5);
        assert_eq!(
            ShardGrid::build_streamed(5, 2, std::iter::empty()).unwrap(),
            ShardGrid::build(&empty, 2).unwrap()
        );
    }

    #[test]
    fn streamed_build_rejects_bad_input() {
        assert!(ShardGrid::build_streamed(8, 0, std::iter::empty()).is_err());
        assert!(ShardGrid::build_streamed(0, 4, std::iter::empty()).is_err());
        // Out-of-range endpoint.
        assert!(matches!(
            ShardGrid::build_streamed(4, 2, [Edge::new(0, 4)].into_iter()),
            Err(GraphError::NodeOutOfRange { node: 4, .. })
        ));
        // Unsorted stream.
        let err = ShardGrid::build_streamed(4, 2, [Edge::new(2, 0), Edge::new(1, 3)]).unwrap_err();
        assert!(err.to_string().contains("sorted"), "{err}");
    }

    #[test]
    fn grid_dimensions() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        assert_eq!(grid.grid_dim(), 2);
        assert_eq!(grid.num_nodes(), 8);
        assert_eq!(grid.nodes_per_shard(), 4);
        let grid3 = ShardGrid::build(&edges, 3).unwrap();
        assert_eq!(grid3.grid_dim(), 3);
    }

    #[test]
    fn every_edge_lands_in_exactly_one_shard() {
        let edges = sample_edges();
        for nps in [1, 2, 3, 4, 8, 16] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            assert_eq!(
                grid.total_edges(),
                edges.num_edges(),
                "nodes_per_shard={nps}"
            );
            let from_shards: usize = grid.iter().map(|s| s.num_edges()).sum();
            assert_eq!(from_shards, edges.num_edges(), "nodes_per_shard={nps}");
        }
    }

    #[test]
    fn edges_are_placed_in_the_correct_shard() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        for shard in grid.iter() {
            assert!(!shard.is_empty(), "iter() yields only occupied shards");
            for e in shard.edges() {
                assert_eq!(e.src as usize / 4, shard.coord().src_block);
                assert_eq!(e.dst as usize / 4, shard.coord().dst_block);
            }
        }
    }

    #[test]
    fn arena_is_sorted_and_shards_are_contiguous_slices() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        let mut offset = 0;
        for meta in grid.metas() {
            let slice = grid.edges_of(meta);
            assert_eq!(slice.as_ptr(), grid.edges()[offset..].as_ptr());
            offset += slice.len();
            // Within a shard, edges are sorted by (src, dst).
            assert!(slice.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(offset, grid.total_edges());
    }

    #[test]
    fn shard_edge_count_is_bounded_by_n_squared() {
        let edges = sample_edges();
        for nps in [1, 2, 4] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            assert!(grid.max_shard_edges() <= nps * nps);
        }
    }

    #[test]
    fn unique_endpoint_counts() {
        let edges = EdgeList::from_pairs(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        let shard = grid.shard(ShardCoord::new(0, 1));
        assert_eq!(shard.unique_source_count(), 2);
        assert_eq!(shard.unique_destination_count(), 2);
        assert_eq!(shard.num_edges(), 3);
        // The other three cells of the 2x2 grid are empty views.
        let empty = grid.shard(ShardCoord::new(1, 0));
        assert!(empty.is_empty());
        assert!(empty.meta().is_none());
        assert_eq!(empty.unique_source_count(), 0);
        assert_eq!(empty.unique_destination_count(), 0);
        assert_eq!(grid.occupied_shards(), 1);
    }

    #[test]
    fn meta_fetch_byte_costs() {
        let edges = EdgeList::from_pairs(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        let meta = *grid.shard(ShardCoord::new(0, 1)).meta().unwrap();
        assert_eq!(meta.edge_fetch_bytes(), 3 * BYTES_PER_EDGE);
        assert_eq!(
            meta.source_feature_bytes(64),
            2 * 64 * BYTES_PER_FEATURE_ELEMENT
        );
        assert_eq!(
            meta.destination_feature_bytes(16),
            2 * 16 * BYTES_PER_FEATURE_ELEMENT
        );
    }

    #[test]
    fn block_nodes_last_block_may_be_short() {
        let edges = EdgeList::from_pairs(7, &[(0, 6)]).unwrap();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        assert_eq!(grid.grid_dim(), 3);
        assert_eq!(grid.block_nodes(0), 0..3);
        assert_eq!(grid.block_nodes(2), 6..7);
        assert_eq!(grid.block_len(2), 1);
    }

    #[test]
    fn traversal_visits_every_shard_once() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        for order in [
            TraversalOrder::SourceStationary,
            TraversalOrder::DestinationStationary,
        ] {
            let coords: Vec<ShardCoord> = grid.traversal(order).collect();
            assert_eq!(coords.len(), 9);
            assert_eq!(grid.traversal(order).len(), 9);
            let mut sorted = coords.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 9, "every coordinate visited exactly once");
        }
    }

    #[test]
    fn dst_stationary_traversal_is_column_major_serpentine() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let coords: Vec<ShardCoord> = grid
            .traversal(TraversalOrder::DestinationStationary)
            .collect();
        assert_eq!(
            coords,
            vec![
                ShardCoord::new(0, 0),
                ShardCoord::new(1, 0),
                ShardCoord::new(1, 1),
                ShardCoord::new(0, 1),
            ]
        );
    }

    #[test]
    fn src_stationary_traversal_is_row_major_serpentine() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let coords: Vec<ShardCoord> = grid.traversal(TraversalOrder::SourceStationary).collect();
        assert_eq!(
            coords,
            vec![
                ShardCoord::new(0, 0),
                ShardCoord::new(0, 1),
                ShardCoord::new(1, 1),
                ShardCoord::new(1, 0),
            ]
        );
    }

    #[test]
    fn occupied_traversal_is_the_serpentine_subsequence() {
        let edges = sample_edges();
        for nps in [1, 2, 3, 4] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            for order in [
                TraversalOrder::SourceStationary,
                TraversalOrder::DestinationStationary,
            ] {
                let expected: Vec<ShardCoord> = grid
                    .traversal(order)
                    .filter(|&c| !grid.shard(c).is_empty())
                    .collect();
                let occupied: Vec<ShardCoord> =
                    grid.occupied_traversal(order).map(|s| s.coord()).collect();
                assert_eq!(occupied, expected, "nps={nps} {order}");
            }
        }
    }

    #[test]
    fn rows_and_columns_index_occupied_shards() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        let mut row_total = 0;
        for src in 0..grid.grid_dim() {
            let mut prev = None;
            for meta in grid.row_metas(src) {
                assert_eq!(meta.coord().src_block, src);
                if let Some(p) = prev {
                    assert!(p < meta.coord().dst_block);
                }
                prev = Some(meta.coord().dst_block);
                row_total += meta.num_edges();
            }
        }
        assert_eq!(row_total, grid.total_edges());
        let mut col_total = 0;
        for dst in 0..grid.grid_dim() {
            let mut prev = None;
            for meta in grid.column_metas(dst) {
                assert_eq!(meta.coord().dst_block, dst);
                if let Some(p) = prev {
                    assert!(p < meta.coord().src_block);
                }
                prev = Some(meta.coord().src_block);
                col_total += meta.num_edges();
            }
        }
        assert_eq!(col_total, grid.total_edges());
    }

    #[test]
    fn occupancy_counts_non_empty_shards() {
        let edges = EdgeList::from_pairs(4, &[(0, 0), (0, 1)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        // Only shard (0, 0) has edges out of 4 shards.
        assert!((grid.occupancy() - 0.25).abs() < 1e-9);
        assert_eq!(grid.occupied_shards(), 1);
    }

    #[test]
    fn edgeless_graph_builds_an_empty_grid() {
        let edges = EdgeList::new(5);
        let grid = ShardGrid::build(&edges, 2).unwrap();
        assert_eq!(grid.grid_dim(), 3);
        assert_eq!(grid.occupied_shards(), 0);
        assert_eq!(grid.occupancy(), 0.0);
        assert_eq!(grid.max_shard_edges(), 0);
        assert_eq!(
            grid.occupied_traversal(TraversalOrder::default()).count(),
            0
        );
        assert_eq!(grid.traversal(TraversalOrder::default()).count(), 9);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ShardCoord::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(
            TraversalOrder::SourceStationary.to_string(),
            "src-stationary"
        );
        assert_eq!(
            TraversalOrder::DestinationStationary.to_string(),
            "dst-stationary"
        );
    }

    #[test]
    fn default_order_is_destination_stationary() {
        assert_eq!(
            TraversalOrder::default(),
            TraversalOrder::DestinationStationary
        );
    }

    /// Writes `grid`'s arena as raw little-endian records (prefixed by
    /// `lead` filler bytes) and opens a [`ShardWindow`] over it.
    fn window_over(grid: &ShardGrid, lead: u64, window_bytes: u64) -> ShardWindow {
        use std::io::Write;
        use std::sync::atomic::{AtomicU64, Ordering};

        static NONCE: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "gnnerator-shard-window-{}-{}.arena",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(&vec![0u8; lead as usize]).unwrap();
        for edge in grid.edges() {
            file.write_all(&edge.src.to_le_bytes()).unwrap();
            file.write_all(&edge.dst.to_le_bytes()).unwrap();
        }
        file.flush().unwrap();
        drop(file);
        let file = std::fs::File::open(&path).unwrap();
        // The file is open; unlink so the temp dir stays clean regardless of
        // test outcome (Unix keeps the inode alive).
        let _ = std::fs::remove_file(&path);
        ShardWindow::with_pool(
            file,
            path,
            lead,
            grid.total_edges(),
            WindowPool::new(window_bytes),
        )
    }

    fn windowed_clone(grid: &ShardGrid, window_bytes: u64) -> ShardGrid {
        ShardGrid::assemble_windowed(
            grid.num_nodes(),
            grid.nodes_per_shard(),
            window_over(grid, 96, window_bytes),
            grid.metas().to_vec(),
        )
    }

    #[test]
    fn sibling_windows_split_one_pool_instead_of_stacking_budgets() {
        let edges = sample_edges();
        let resident = ShardGrid::build(&edges, 3).unwrap();
        let arena_bytes = resident.total_edges() as u64 * BYTES_PER_EDGE;
        let pool = WindowPool::new(arena_bytes);
        let sibling = |g: &ShardGrid| {
            let mut window = window_over(g, 96, 0);
            window.pool = Arc::clone(&pool);
            ShardGrid::assemble_windowed(
                g.num_nodes(),
                g.nodes_per_shard(),
                window,
                g.metas().to_vec(),
            )
        };
        // The first sibling's walk fills the whole pool.
        let first = sibling(&resident);
        assert_eq!(first, resident);
        assert_eq!(pool.resident_bytes(), arena_bytes);
        // The second sibling finds the pool full, evicts nothing it owns,
        // serves every extent uncached — and stays bit-identical.
        let second = sibling(&resident);
        assert_eq!(second, resident);
        assert_eq!(second.window().unwrap().resident_bytes(), 0);
        assert_eq!(second.window().unwrap().stats().evictions, 0);
        assert_eq!(pool.resident_bytes(), arena_bytes);
        // Dropping the full sibling frees the pool for the other one.
        drop(first);
        assert_eq!(pool.resident_bytes(), 0);
        assert_eq!(second, resident);
        assert_eq!(second.window().unwrap().resident_bytes(), arena_bytes);
    }

    #[test]
    fn windowed_grid_is_bit_identical_to_resident() {
        let edges = sample_edges();
        let resident = ShardGrid::build(&edges, 3).unwrap();
        let max_shard_bytes = resident.max_shard_edges() as u64 * BYTES_PER_EDGE;
        for window_bytes in [0, max_shard_bytes, 1 << 20] {
            let windowed = windowed_clone(&resident, window_bytes);
            assert!(windowed.is_windowed());
            assert!(!resident.is_windowed());
            assert_eq!(windowed.total_edges(), resident.total_edges());
            assert_eq!(windowed, resident, "window_bytes={window_bytes}");
            for order in [
                TraversalOrder::SourceStationary,
                TraversalOrder::DestinationStationary,
            ] {
                let walk = |g: &ShardGrid| -> Vec<(ShardCoord, Vec<Edge>)> {
                    g.occupied_traversal(order)
                        .map(|s| (s.coord(), s.edges().to_vec()))
                        .collect()
                };
                assert_eq!(
                    walk(&windowed),
                    walk(&resident),
                    "window_bytes={window_bytes} {order}"
                );
            }
        }
    }

    #[test]
    fn tight_window_evicts_and_repeated_walks_hit() {
        let edges = sample_edges();
        let resident = ShardGrid::build(&edges, 1).unwrap();
        let occupied = resident.occupied_shards() as u64;
        assert!(occupied > 2);
        // Window fits exactly one single-edge shard: every new shard evicts.
        let windowed = windowed_clone(&resident, BYTES_PER_EDGE);
        let global_before = crate::memory::memory_telemetry();
        assert_eq!(windowed, resident);
        let stats = windowed.window().unwrap().stats();
        assert_eq!(stats.misses, occupied);
        assert_eq!(stats.evictions, occupied - 1);
        // The global aggregates move in lockstep (other tests may add more).
        let global_after = crate::memory::memory_telemetry();
        assert!(global_after.window_misses >= global_before.window_misses + stats.misses);
        assert!(global_after.window_evictions >= global_before.window_evictions + stats.evictions);
        assert!(
            global_after.window_faulted_bytes
                >= global_before.window_faulted_bytes + occupied * BYTES_PER_EDGE
        );

        // A window big enough for everything faults each shard once, then
        // serves the second walk entirely from residency.
        let roomy = windowed_clone(&resident, 1 << 20);
        let drain = |g: &ShardGrid| {
            g.occupied_traversal(TraversalOrder::default())
                .map(|s| s.num_edges())
                .sum::<usize>()
        };
        drain(&roomy);
        drain(&roomy);
        let warm = roomy.window().unwrap().stats();
        assert_eq!(warm.misses, occupied);
        assert_eq!(warm.evictions, 0);
        assert_eq!(warm.hits, occupied);
    }

    #[test]
    fn dropping_a_window_returns_its_resident_bytes() {
        let edges = sample_edges();
        let resident = ShardGrid::build(&edges, 3).unwrap();
        let windowed = windowed_clone(&resident, 1 << 20);
        assert_eq!(windowed, resident);
        let held = windowed.window().unwrap().resident_bytes();
        assert_eq!(held, resident.total_edges() as u64 * BYTES_PER_EDGE);
        // The process-wide gauge holds at least this window's bytes; exact
        // return-to-baseline is asserted by the single-window integration
        // test (tests/shard_window.rs), where no parallel test races the
        // gauge.
        assert!(crate::memory::window_resident_bytes() >= held);
        drop(windowed);
    }

    #[test]
    fn segment_equality_and_empty_view() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let meta = grid.metas()[0];
        let seg = grid.edges_of(&meta);
        assert_eq!(seg, grid.edges_of(&meta));
        assert_eq!(seg, seg.to_vec());
        assert_eq!(seg, *grid.edges_of(&meta));
        let view = grid.shard(meta.coord());
        let cloned = view.clone();
        assert_eq!(cloned.edges(), view.edges());
    }
}
