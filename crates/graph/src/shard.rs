use crate::{Edge, EdgeList, GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Traversal order over the 2-D shard grid (Section IV-A, Table I).
///
/// * **Source-stationary** walks across a *row* of the grid: one block of
///   source vertices stays on-chip for the whole row while destination
///   blocks are written back and reloaded.
/// * **Destination-stationary** walks down a *column*: one block of
///   destination vertices (the accumulators) stays on-chip until it has
///   finished aggregating, while source blocks are reloaded.
///
/// The paper assumes an S-pattern (serpentine) walk so that one operand block
/// carries over between consecutive shards; the iterators here follow that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraversalOrder {
    /// Keep a source block on-chip and sweep destinations.
    SourceStationary,
    /// Keep a destination block on-chip and sweep sources (Algorithm 1's
    /// destination-major loop nest). This is the default because it lets
    /// aggregation finish a destination block before feature extraction.
    #[default]
    DestinationStationary,
}

impl fmt::Display for TraversalOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraversalOrder::SourceStationary => f.write_str("src-stationary"),
            TraversalOrder::DestinationStationary => f.write_str("dst-stationary"),
        }
    }
}

/// Position of a shard in the grid: `(src_block, dst_block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShardCoord {
    /// Index of the source-node block (grid row).
    pub src_block: usize,
    /// Index of the destination-node block (grid column).
    pub dst_block: usize,
}

impl ShardCoord {
    /// Creates a new coordinate.
    pub fn new(src_block: usize, dst_block: usize) -> Self {
        Self {
            src_block,
            dst_block,
        }
    }
}

impl fmt::Display for ShardCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src_block, self.dst_block)
    }
}

/// One sub-graph shard: the edges whose sources fall in one node block and
/// whose destinations fall in another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    coord: ShardCoord,
    edges: Vec<Edge>,
    unique_sources: Vec<NodeId>,
    unique_destinations: Vec<NodeId>,
}

impl Shard {
    fn new(coord: ShardCoord, mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        let mut unique_sources: Vec<NodeId> = edges.iter().map(|e| e.src).collect();
        unique_sources.sort_unstable();
        unique_sources.dedup();
        let mut unique_destinations: Vec<NodeId> = edges.iter().map(|e| e.dst).collect();
        unique_destinations.sort_unstable();
        unique_destinations.dedup();
        Self {
            coord,
            edges,
            unique_sources,
            unique_destinations,
        }
    }

    /// The shard's grid coordinate.
    pub fn coord(&self) -> ShardCoord {
        self.coord
    }

    /// Edges contained in the shard, sorted by `(src, dst)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges in the shard.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the shard contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Distinct source nodes referenced by the shard's edges.
    ///
    /// The Shard Feature Fetch Unit must bring these nodes' features (or the
    /// active block of their dimensions) on-chip before compute starts.
    pub fn unique_sources(&self) -> &[NodeId] {
        &self.unique_sources
    }

    /// Distinct destination nodes referenced by the shard's edges.
    pub fn unique_destinations(&self) -> &[NodeId] {
        &self.unique_destinations
    }
}

/// A GridGraph-style two-dimensional shard grid (Figure 1).
///
/// The node id space is cut into `grid_dim` contiguous blocks of at most
/// `nodes_per_shard` nodes; shard `(i, j)` holds every edge whose source lies
/// in block `i` and whose destination lies in block `j`. Each shard therefore
/// contains at most `nodes_per_shard²` edges, matching the paper's "maximum
/// of n² edges" definition.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{EdgeList, ShardGrid, TraversalOrder};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(6, &[(0, 5), (3, 1), (5, 0), (2, 4)])?;
/// let grid = ShardGrid::build(&edges, 3)?;
/// assert_eq!(grid.grid_dim(), 2);
/// assert_eq!(grid.total_edges(), 4);
/// let visited: Vec<_> = grid.traversal(TraversalOrder::DestinationStationary).collect();
/// assert_eq!(visited.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardGrid {
    num_nodes: usize,
    nodes_per_shard: usize,
    grid_dim: usize,
    /// Row-major `grid_dim x grid_dim` shard storage.
    shards: Vec<Shard>,
}

impl ShardGrid {
    /// Builds a shard grid from an edge list, with at most `nodes_per_shard`
    /// source (and destination) nodes per shard.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `nodes_per_shard` is zero
    /// or the edge list has no nodes.
    pub fn build(edges: &EdgeList, nodes_per_shard: usize) -> Result<Self, GraphError> {
        if nodes_per_shard == 0 {
            return Err(GraphError::invalid("nodes_per_shard", "must be positive"));
        }
        let num_nodes = edges.num_nodes();
        if num_nodes == 0 {
            return Err(GraphError::invalid("edges", "graph has no nodes"));
        }
        let grid_dim = num_nodes.div_ceil(nodes_per_shard);
        let mut buckets: Vec<Vec<Edge>> = vec![Vec::new(); grid_dim * grid_dim];
        for e in edges.iter() {
            let i = e.src as usize / nodes_per_shard;
            let j = e.dst as usize / nodes_per_shard;
            buckets[i * grid_dim + j].push(*e);
        }
        let shards = buckets
            .into_iter()
            .enumerate()
            .map(|(idx, bucket)| {
                let coord = ShardCoord::new(idx / grid_dim, idx % grid_dim);
                Shard::new(coord, bucket)
            })
            .collect();
        Ok(Self {
            num_nodes,
            nodes_per_shard,
            grid_dim,
            shards,
        })
    }

    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Maximum number of nodes per block (the paper's tunable `n`).
    pub fn nodes_per_shard(&self) -> usize {
        self.nodes_per_shard
    }

    /// Width/height of the square shard grid (the paper's `S`).
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Total number of edges across all shards.
    pub fn total_edges(&self) -> usize {
        self.shards.iter().map(Shard::num_edges).sum()
    }

    /// The shard at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn shard(&self, coord: ShardCoord) -> &Shard {
        assert!(
            coord.src_block < self.grid_dim && coord.dst_block < self.grid_dim,
            "shard {coord} out of range for {0}x{0} grid",
            self.grid_dim
        );
        &self.shards[coord.src_block * self.grid_dim + coord.dst_block]
    }

    /// Iterates over all shards in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, Shard> {
        self.shards.iter()
    }

    /// The contiguous range of node ids belonging to block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= grid_dim`.
    pub fn block_nodes(&self, block: usize) -> Range<NodeId> {
        assert!(block < self.grid_dim, "block {block} out of range");
        let start = (block * self.nodes_per_shard) as NodeId;
        let end = ((block + 1) * self.nodes_per_shard).min(self.num_nodes) as NodeId;
        start..end
    }

    /// Number of nodes in block `block`.
    pub fn block_len(&self, block: usize) -> usize {
        let r = self.block_nodes(block);
        (r.end - r.start) as usize
    }

    /// Fraction of shards that contain at least one edge.
    ///
    /// Real-world graphs sharded this way are sparse at the shard level too;
    /// this statistic feeds the report's locality section.
    pub fn occupancy(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        let non_empty = self.shards.iter().filter(|s| !s.is_empty()).count();
        non_empty as f64 / self.shards.len() as f64
    }

    /// Maximum number of edges in any single shard.
    pub fn max_shard_edges(&self) -> usize {
        self.shards.iter().map(Shard::num_edges).max().unwrap_or(0)
    }

    /// Returns the shard coordinates in the S-pattern (serpentine) order for
    /// the given traversal.
    ///
    /// For [`TraversalOrder::DestinationStationary`] the walk proceeds column
    /// by column (destination block outer loop), alternating the direction of
    /// each column so consecutive shards share a source block boundary. For
    /// [`TraversalOrder::SourceStationary`] the walk proceeds row by row.
    pub fn traversal(&self, order: TraversalOrder) -> impl Iterator<Item = ShardCoord> + '_ {
        let s = self.grid_dim;
        let coords: Vec<ShardCoord> = match order {
            TraversalOrder::DestinationStationary => (0..s)
                .flat_map(|dst| {
                    let inner: Vec<usize> = if dst % 2 == 0 {
                        (0..s).collect()
                    } else {
                        (0..s).rev().collect()
                    };
                    inner.into_iter().map(move |src| ShardCoord::new(src, dst))
                })
                .collect(),
            TraversalOrder::SourceStationary => (0..s)
                .flat_map(|src| {
                    let inner: Vec<usize> = if src % 2 == 0 {
                        (0..s).collect()
                    } else {
                        (0..s).rev().collect()
                    };
                    inner.into_iter().map(move |dst| ShardCoord::new(src, dst))
                })
                .collect(),
        };
        coords.into_iter()
    }
}

impl<'a> IntoIterator for &'a ShardGrid {
    type Item = &'a Shard;
    type IntoIter = std::slice::Iter<'a, Shard>;

    fn into_iter(self) -> Self::IntoIter {
        self.shards.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> EdgeList {
        EdgeList::from_pairs(
            8,
            &[
                (0, 1),
                (0, 7),
                (1, 4),
                (2, 3),
                (3, 6),
                (4, 0),
                (5, 2),
                (6, 5),
                (7, 7),
                (7, 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_rejects_bad_parameters() {
        let edges = sample_edges();
        assert!(ShardGrid::build(&edges, 0).is_err());
        let empty = EdgeList::new(0);
        assert!(ShardGrid::build(&empty, 4).is_err());
    }

    #[test]
    fn grid_dimensions() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        assert_eq!(grid.grid_dim(), 2);
        assert_eq!(grid.num_nodes(), 8);
        assert_eq!(grid.nodes_per_shard(), 4);
        let grid3 = ShardGrid::build(&edges, 3).unwrap();
        assert_eq!(grid3.grid_dim(), 3);
    }

    #[test]
    fn every_edge_lands_in_exactly_one_shard() {
        let edges = sample_edges();
        for nps in [1, 2, 3, 4, 8, 16] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            assert_eq!(
                grid.total_edges(),
                edges.num_edges(),
                "nodes_per_shard={nps}"
            );
        }
    }

    #[test]
    fn edges_are_placed_in_the_correct_shard() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        for shard in grid.iter() {
            for e in shard.edges() {
                assert_eq!(e.src as usize / 4, shard.coord().src_block);
                assert_eq!(e.dst as usize / 4, shard.coord().dst_block);
            }
        }
    }

    #[test]
    fn shard_edge_count_is_bounded_by_n_squared() {
        let edges = sample_edges();
        for nps in [1, 2, 4] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            assert!(grid.max_shard_edges() <= nps * nps);
        }
    }

    #[test]
    fn unique_sources_and_destinations() {
        let edges = EdgeList::from_pairs(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        let shard = grid.shard(ShardCoord::new(0, 1));
        assert_eq!(shard.unique_sources(), &[0, 1]);
        assert_eq!(shard.unique_destinations(), &[2, 3]);
        assert_eq!(shard.num_edges(), 3);
    }

    #[test]
    fn block_nodes_last_block_may_be_short() {
        let edges = EdgeList::from_pairs(7, &[(0, 6)]).unwrap();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        assert_eq!(grid.grid_dim(), 3);
        assert_eq!(grid.block_nodes(0), 0..3);
        assert_eq!(grid.block_nodes(2), 6..7);
        assert_eq!(grid.block_len(2), 1);
    }

    #[test]
    fn traversal_visits_every_shard_once() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        for order in [
            TraversalOrder::SourceStationary,
            TraversalOrder::DestinationStationary,
        ] {
            let coords: Vec<ShardCoord> = grid.traversal(order).collect();
            assert_eq!(coords.len(), 9);
            let mut sorted = coords.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 9, "every coordinate visited exactly once");
        }
    }

    #[test]
    fn dst_stationary_traversal_is_column_major_serpentine() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let coords: Vec<ShardCoord> = grid
            .traversal(TraversalOrder::DestinationStationary)
            .collect();
        assert_eq!(
            coords,
            vec![
                ShardCoord::new(0, 0),
                ShardCoord::new(1, 0),
                ShardCoord::new(1, 1),
                ShardCoord::new(0, 1),
            ]
        );
    }

    #[test]
    fn src_stationary_traversal_is_row_major_serpentine() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let coords: Vec<ShardCoord> = grid.traversal(TraversalOrder::SourceStationary).collect();
        assert_eq!(
            coords,
            vec![
                ShardCoord::new(0, 0),
                ShardCoord::new(0, 1),
                ShardCoord::new(1, 1),
                ShardCoord::new(1, 0),
            ]
        );
    }

    #[test]
    fn occupancy_counts_non_empty_shards() {
        let edges = EdgeList::from_pairs(4, &[(0, 0), (0, 1)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        // Only shard (0, 0) has edges out of 4 shards.
        assert!((grid.occupancy() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ShardCoord::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(
            TraversalOrder::SourceStationary.to_string(),
            "src-stationary"
        );
        assert_eq!(
            TraversalOrder::DestinationStationary.to_string(),
            "dst-stationary"
        );
    }

    #[test]
    fn default_order_is_destination_stationary() {
        assert_eq!(
            TraversalOrder::default(),
            TraversalOrder::DestinationStationary
        );
    }
}
