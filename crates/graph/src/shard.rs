use crate::{Edge, EdgeList, GraphError, NodeId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Bytes per edge record streamed by the Shard Edge Fetch unit (32-bit source
/// id + 32-bit destination id).
pub const BYTES_PER_EDGE: u64 = 8;
/// Bytes per feature element (fp32) moved by the Shard Feature Fetch unit.
pub const BYTES_PER_FEATURE_ELEMENT: u64 = 4;

/// Traversal order over the 2-D shard grid (Section IV-A, Table I).
///
/// * **Source-stationary** walks across a *row* of the grid: one block of
///   source vertices stays on-chip for the whole row while destination
///   blocks are written back and reloaded.
/// * **Destination-stationary** walks down a *column*: one block of
///   destination vertices (the accumulators) stays on-chip until it has
///   finished aggregating, while source blocks are reloaded.
///
/// The paper assumes an S-pattern (serpentine) walk so that one operand block
/// carries over between consecutive shards; the iterators here follow that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraversalOrder {
    /// Keep a source block on-chip and sweep destinations.
    SourceStationary,
    /// Keep a destination block on-chip and sweep sources (Algorithm 1's
    /// destination-major loop nest). This is the default because it lets
    /// aggregation finish a destination block before feature extraction.
    #[default]
    DestinationStationary,
}

impl fmt::Display for TraversalOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraversalOrder::SourceStationary => f.write_str("src-stationary"),
            TraversalOrder::DestinationStationary => f.write_str("dst-stationary"),
        }
    }
}

/// Position of a shard in the grid: `(src_block, dst_block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShardCoord {
    /// Index of the source-node block (grid row).
    pub src_block: usize,
    /// Index of the destination-node block (grid column).
    pub dst_block: usize,
}

impl ShardCoord {
    /// Creates a new coordinate.
    pub fn new(src_block: usize, dst_block: usize) -> Self {
        Self {
            src_block,
            dst_block,
        }
    }
}

impl fmt::Display for ShardCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src_block, self.dst_block)
    }
}

/// Precomputed metadata of one *occupied* shard: everything the timing
/// simulator and the traffic models need, without touching the shard's edges.
///
/// A [`ShardGrid`] stores one `ShardMeta` per non-empty grid cell. The edge
/// count and the distinct-endpoint counts are fixed at build time, so the
/// cycle/byte cost of processing a shard under any feature-block width is a
/// couple of multiplies away — the simulator's hot loop never walks edge
/// lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMeta {
    coord: ShardCoord,
    /// Start of this shard's edges in the grid's shared arena.
    edge_start: u32,
    num_edges: u32,
    unique_sources: u32,
    unique_destinations: u32,
}

impl ShardMeta {
    /// The shard's grid coordinate.
    pub fn coord(&self) -> ShardCoord {
        self.coord
    }

    /// Number of edges in the shard (always positive: only occupied shards
    /// have metadata).
    pub fn num_edges(&self) -> usize {
        self.num_edges as usize
    }

    /// Number of distinct source nodes referenced by the shard's edges.
    ///
    /// The Shard Feature Fetch unit must bring these nodes' features (or the
    /// active block of their dimensions) on-chip before compute starts.
    pub fn unique_source_count(&self) -> usize {
        self.unique_sources as usize
    }

    /// Number of distinct destination nodes referenced by the shard's edges.
    pub fn unique_destination_count(&self) -> usize {
        self.unique_destinations as usize
    }

    /// Bytes of edge records the Shard Edge Fetch unit streams for this shard.
    pub fn edge_fetch_bytes(&self) -> u64 {
        self.num_edges as u64 * BYTES_PER_EDGE
    }

    /// Bytes of source-node features fetched when `block_dim` feature
    /// dimensions are resident.
    pub fn source_feature_bytes(&self, block_dim: usize) -> u64 {
        self.unique_sources as u64 * block_dim as u64 * BYTES_PER_FEATURE_ELEMENT
    }

    /// Bytes of destination accumulators touched when `block_dim` feature
    /// dimensions are resident (one spill *or* one reload; Table I's
    /// write-cost term pays it twice).
    pub fn destination_feature_bytes(&self, block_dim: usize) -> u64 {
        self.unique_destinations as u64 * block_dim as u64 * BYTES_PER_FEATURE_ELEMENT
    }

    fn edge_range(&self) -> Range<usize> {
        let start = self.edge_start as usize;
        start..start + self.num_edges as usize
    }

    /// Raw constructor used by the artifact cache's deserialiser.
    pub(crate) fn from_raw(
        coord: ShardCoord,
        edge_start: u32,
        num_edges: u32,
        unique_sources: u32,
        unique_destinations: u32,
    ) -> Self {
        Self {
            coord,
            edge_start,
            num_edges,
            unique_sources,
            unique_destinations,
        }
    }

    /// Start offset of this shard's edges in the grid arena (cache
    /// serialisation only).
    pub(crate) fn edge_start(&self) -> u32 {
        self.edge_start
    }
}

/// A borrowed view of one shard: its metadata plus its slice of the grid's
/// shared edge arena.
///
/// Produced by [`ShardGrid::shard`], [`ShardGrid::iter`] and
/// [`ShardGrid::occupied_traversal`]. Views are cheap (two pointers); the
/// edges themselves live in the grid's arena and are never copied.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    coord: ShardCoord,
    meta: Option<&'a ShardMeta>,
    edges: &'a [Edge],
}

impl<'a> ShardView<'a> {
    /// The shard's grid coordinate.
    pub fn coord(&self) -> ShardCoord {
        self.coord
    }

    /// The shard's metadata, or `None` if the shard is empty.
    pub fn meta(&self) -> Option<&'a ShardMeta> {
        self.meta
    }

    /// Edges contained in the shard, sorted by `(src, dst)`.
    pub fn edges(&self) -> &'a [Edge] {
        self.edges
    }

    /// Number of edges in the shard.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the shard contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of distinct source nodes referenced by the shard's edges.
    pub fn unique_source_count(&self) -> usize {
        self.meta.map_or(0, ShardMeta::unique_source_count)
    }

    /// Number of distinct destination nodes referenced by the shard's edges.
    pub fn unique_destination_count(&self) -> usize {
        self.meta.map_or(0, ShardMeta::unique_destination_count)
    }
}

/// A GridGraph-style two-dimensional shard grid (Figure 1), stored sparsely.
///
/// The node id space is cut into `grid_dim` contiguous blocks of at most
/// `nodes_per_shard` nodes; shard `(i, j)` holds every edge whose source lies
/// in block `i` and whose destination lies in block `j`. Each shard therefore
/// contains at most `nodes_per_shard²` edges, matching the paper's "maximum
/// of n² edges" definition.
///
/// Real graphs sharded this way are extremely sparse at the shard level —
/// most of the `S²` cells hold no edges — so the grid never materialises
/// per-cell storage. Instead it keeps:
///
/// * one **edge arena**: every edge, sorted by `(src_block, dst_block, src,
///   dst)`, so each shard's edges are one contiguous slice;
/// * one [`ShardMeta`] per *occupied* shard (row-major), carrying the edge
///   count, distinct-endpoint counts and arena offset;
/// * CSR-style offset indexes over both grid axes (`row_offsets` for
///   source-stationary walks, `col_offsets`/`col_entries` for
///   destination-stationary walks), so traversals touch only occupied cells.
///
/// Memory is `O(E + occupied + S)` instead of the dense `O(S² + E)` (with a
/// second edge copy) a `Vec<Shard>` layout costs.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{EdgeList, ShardGrid, TraversalOrder};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(6, &[(0, 5), (3, 1), (5, 0), (2, 4)])?;
/// let grid = ShardGrid::build(&edges, 3)?;
/// assert_eq!(grid.grid_dim(), 2);
/// assert_eq!(grid.total_edges(), 4);
/// // The four edges land in two of the four grid cells; the occupancy-aware
/// // walk visits only those.
/// assert_eq!(grid.occupied_shards(), 2);
/// let visited: Vec<_> = grid.traversal(TraversalOrder::DestinationStationary).collect();
/// assert_eq!(visited.len(), 4);
/// assert_eq!(grid.occupied_traversal(TraversalOrder::DestinationStationary).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardGrid {
    num_nodes: usize,
    nodes_per_shard: usize,
    grid_dim: usize,
    /// Every edge, sorted by `(src_block, dst_block, src, dst)`.
    arena: Vec<Edge>,
    /// Metadata of occupied shards, row-major (`src_block` outer).
    metas: Vec<ShardMeta>,
    /// `metas[row_offsets[i]..row_offsets[i + 1]]` are row `i`'s occupied
    /// shards, in ascending `dst_block` order.
    row_offsets: Vec<usize>,
    /// Indices into `metas`, sorted column-major (`dst_block` outer).
    col_entries: Vec<usize>,
    /// `col_entries[col_offsets[j]..col_offsets[j + 1]]` are column `j`'s
    /// occupied shards, in ascending `src_block` order.
    col_offsets: Vec<usize>,
}

impl ShardGrid {
    /// Builds a shard grid from an edge list, with at most `nodes_per_shard`
    /// source (and destination) nodes per shard.
    ///
    /// The build is a single sort of the edge arena by shard coordinate
    /// followed by one linear scan that emits per-shard metadata — no
    /// per-cell buckets are ever allocated, so the cost is
    /// `O(E log E + S)` regardless of how empty the grid is.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `nodes_per_shard` is zero
    /// or the edge list has no nodes.
    pub fn build(edges: &EdgeList, nodes_per_shard: usize) -> Result<Self, GraphError> {
        if nodes_per_shard == 0 {
            return Err(GraphError::invalid("nodes_per_shard", "must be positive"));
        }
        let num_nodes = edges.num_nodes();
        if num_nodes == 0 {
            return Err(GraphError::invalid("edges", "graph has no nodes"));
        }
        if edges.num_edges() > u32::MAX as usize {
            return Err(GraphError::invalid(
                "edges",
                "edge count exceeds the 32-bit arena index space",
            ));
        }
        let mut arena: Vec<Edge> = edges.iter().copied().collect();
        arena.sort_unstable_by_key(|e| {
            (
                e.src as usize / nodes_per_shard,
                e.dst as usize / nodes_per_shard,
                e.src,
                e.dst,
            )
        });

        // One scan over the sorted arena: each run of equal (src_block,
        // dst_block) is an occupied shard. Within a run edges are sorted by
        // (src, dst), so distinct sources fall out of adjacent comparisons;
        // distinct destinations need one small sort of the run's endpoints.
        let mut metas: Vec<ShardMeta> = Vec::new();
        let mut dst_scratch: Vec<NodeId> = Vec::new();
        let mut start = 0usize;
        while start < arena.len() {
            let coord = ShardCoord::new(
                arena[start].src as usize / nodes_per_shard,
                arena[start].dst as usize / nodes_per_shard,
            );
            let mut end = start + 1;
            while end < arena.len()
                && arena[end].src as usize / nodes_per_shard == coord.src_block
                && arena[end].dst as usize / nodes_per_shard == coord.dst_block
            {
                end += 1;
            }
            let run = &arena[start..end];
            let unique_sources = 1 + run.windows(2).filter(|w| w[0].src != w[1].src).count();
            dst_scratch.clear();
            dst_scratch.extend(run.iter().map(|e| e.dst));
            dst_scratch.sort_unstable();
            dst_scratch.dedup();
            metas.push(ShardMeta {
                coord,
                edge_start: start as u32,
                num_edges: (end - start) as u32,
                unique_sources: unique_sources as u32,
                unique_destinations: dst_scratch.len() as u32,
            });
            start = end;
        }

        Ok(Self::assemble(num_nodes, nodes_per_shard, arena, metas))
    }

    /// Builds a shard grid from a `(src, dst)`-sorted edge *stream* without
    /// ever materialising a full [`EdgeList`] — the out-of-core companion to
    /// [`ShardGrid::build`], bit-identical to it on the same edges.
    ///
    /// A `(src, dst)`-sorted stream delivers edges grouped by contiguous
    /// source block, so the builder buffers one source-block *row group* at
    /// a time, sorts it by `(dst_block, src, dst)` (completing the arena's
    /// `(src_block, dst_block, src, dst)` order) and appends it to the
    /// arena with placeholder shard metadata. The per-shard
    /// distinct-endpoint counts are then filled in by a rayon-parallel pass
    /// over the finished arena slices. Peak transient memory is one row
    /// group, not the whole edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `nodes_per_shard` is
    /// zero, `num_nodes` is zero, the stream is not sorted by `(src, dst)`,
    /// or the edge count exceeds the 32-bit arena index space, and
    /// [`GraphError::NodeOutOfRange`] for an endpoint `>= num_nodes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gnnerator_graph::{EdgeList, ShardGrid};
    ///
    /// # fn main() -> Result<(), gnnerator_graph::GraphError> {
    /// let edges = EdgeList::from_pairs(6, &[(0, 5), (2, 4), (3, 1), (5, 0)])?;
    /// let streamed = ShardGrid::build_streamed(6, 3, edges.iter().copied())?;
    /// assert_eq!(streamed, ShardGrid::build(&edges, 3)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build_streamed<I>(
        num_nodes: usize,
        nodes_per_shard: usize,
        edges: I,
    ) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        if nodes_per_shard == 0 {
            return Err(GraphError::invalid("nodes_per_shard", "must be positive"));
        }
        if num_nodes == 0 {
            return Err(GraphError::invalid("edges", "graph has no nodes"));
        }

        /// Sorts one source-block row group into shard order and appends it
        /// to the arena, emitting metadata (uniques deferred) per shard run.
        fn flush_row_group(
            row: &mut Vec<Edge>,
            nodes_per_shard: usize,
            arena: &mut Vec<Edge>,
            metas: &mut Vec<ShardMeta>,
        ) {
            if row.is_empty() {
                return;
            }
            row.sort_unstable_by_key(|e| (e.dst as usize / nodes_per_shard, e.src, e.dst));
            let mut start = 0usize;
            while start < row.len() {
                let coord = ShardCoord::new(
                    row[start].src as usize / nodes_per_shard,
                    row[start].dst as usize / nodes_per_shard,
                );
                let mut end = start + 1;
                while end < row.len() && row[end].dst as usize / nodes_per_shard == coord.dst_block
                {
                    end += 1;
                }
                metas.push(ShardMeta {
                    coord,
                    edge_start: (arena.len() + start) as u32,
                    num_edges: (end - start) as u32,
                    unique_sources: 0,
                    unique_destinations: 0,
                });
                start = end;
            }
            arena.extend_from_slice(row);
            row.clear();
        }

        let mut arena: Vec<Edge> = Vec::new();
        let mut metas: Vec<ShardMeta> = Vec::new();
        let mut row: Vec<Edge> = Vec::new();
        let mut row_block = 0usize;
        let mut prev: Option<Edge> = None;
        for edge in edges {
            for node in [edge.src, edge.dst] {
                if node as usize >= num_nodes {
                    return Err(GraphError::NodeOutOfRange { node, num_nodes });
                }
            }
            if prev.is_some_and(|p| edge < p) {
                return Err(GraphError::invalid(
                    "edges",
                    "stream must be sorted by (src, dst)",
                ));
            }
            prev = Some(edge);
            if arena.len() + row.len() >= u32::MAX as usize {
                return Err(GraphError::invalid(
                    "edges",
                    "edge count exceeds the 32-bit arena index space",
                ));
            }
            let block = edge.src as usize / nodes_per_shard;
            if row.is_empty() {
                row_block = block;
            } else if block != row_block {
                flush_row_group(&mut row, nodes_per_shard, &mut arena, &mut metas);
                row_block = block;
            }
            row.push(edge);
        }
        flush_row_group(&mut row, nodes_per_shard, &mut arena, &mut metas);

        // Distinct-endpoint counts, shard-parallel over finished arena
        // slices: within a run edges are sorted by (src, dst), so distinct
        // sources fall out of adjacent comparisons; distinct destinations
        // need one small per-shard sort.
        let arena_ref = &arena;
        metas.par_iter_mut().for_each(|meta| {
            let run = &arena_ref[meta.edge_range()];
            let unique_sources = 1 + run.windows(2).filter(|w| w[0].src != w[1].src).count();
            let mut dsts: Vec<NodeId> = run.iter().map(|e| e.dst).collect();
            dsts.sort_unstable();
            dsts.dedup();
            meta.unique_sources = unique_sources as u32;
            meta.unique_destinations = dsts.len() as u32;
        });

        Ok(Self::assemble(num_nodes, nodes_per_shard, arena, metas))
    }

    /// Assembles a grid from a sorted arena and its row-major occupied-shard
    /// metadata, rebuilding the CSR-style row/column indexes. Shared by
    /// [`ShardGrid::build`] and the artifact cache's deserialiser (the
    /// indexes are cheap linear passes, so they are recomputed rather than
    /// stored).
    pub(crate) fn assemble(
        num_nodes: usize,
        nodes_per_shard: usize,
        arena: Vec<Edge>,
        metas: Vec<ShardMeta>,
    ) -> Self {
        let grid_dim = num_nodes.div_ceil(nodes_per_shard);

        // Row index: metas are already row-major, so offsets come from one
        // counting pass.
        let mut row_offsets = vec![0usize; grid_dim + 1];
        for meta in &metas {
            row_offsets[meta.coord.src_block + 1] += 1;
        }
        for i in 0..grid_dim {
            row_offsets[i + 1] += row_offsets[i];
        }

        // Column index: a permutation of the meta indices grouped by
        // destination block, ascending source block within each group.
        let mut col_offsets = vec![0usize; grid_dim + 1];
        for meta in &metas {
            col_offsets[meta.coord.dst_block + 1] += 1;
        }
        for j in 0..grid_dim {
            col_offsets[j + 1] += col_offsets[j];
        }
        let mut col_entries = vec![0usize; metas.len()];
        let mut cursor = col_offsets.clone();
        for (index, meta) in metas.iter().enumerate() {
            let slot = cursor[meta.coord.dst_block];
            col_entries[slot] = index;
            cursor[meta.coord.dst_block] += 1;
        }

        Self {
            num_nodes,
            nodes_per_shard,
            grid_dim,
            arena,
            metas,
            row_offsets,
            col_entries,
            col_offsets,
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Maximum number of nodes per block (the paper's tunable `n`).
    pub fn nodes_per_shard(&self) -> usize {
        self.nodes_per_shard
    }

    /// Width/height of the square shard grid (the paper's `S`).
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Total number of edges across all shards.
    pub fn total_edges(&self) -> usize {
        self.arena.len()
    }

    /// Number of shards that contain at least one edge.
    pub fn occupied_shards(&self) -> usize {
        self.metas.len()
    }

    /// The shared edge arena, sorted by `(src_block, dst_block, src, dst)`.
    pub fn edges(&self) -> &[Edge] {
        &self.arena
    }

    /// Metadata of every occupied shard, row-major.
    pub fn metas(&self) -> &[ShardMeta] {
        &self.metas
    }

    /// The edges of the shard described by `meta`.
    ///
    /// # Panics
    ///
    /// Panics if `meta` did not come from this grid and indexes out of the
    /// arena.
    pub fn edges_of(&self, meta: &ShardMeta) -> &[Edge] {
        &self.arena[meta.edge_range()]
    }

    /// Metadata of row `src_block`'s occupied shards, ascending `dst_block`.
    ///
    /// # Panics
    ///
    /// Panics if `src_block >= grid_dim`.
    pub fn row_metas(&self, src_block: usize) -> &[ShardMeta] {
        assert!(src_block < self.grid_dim, "row {src_block} out of range");
        &self.metas[self.row_offsets[src_block]..self.row_offsets[src_block + 1]]
    }

    /// Metadata of column `dst_block`'s occupied shards, ascending
    /// `src_block`.
    ///
    /// # Panics
    ///
    /// Panics if `dst_block >= grid_dim`.
    pub fn column_metas(&self, dst_block: usize) -> impl Iterator<Item = &ShardMeta> + '_ {
        assert!(dst_block < self.grid_dim, "column {dst_block} out of range");
        self.col_entries[self.col_offsets[dst_block]..self.col_offsets[dst_block + 1]]
            .iter()
            .map(move |&index| &self.metas[index])
    }

    /// The shard at `coord` (a borrowed view; empty cells return an
    /// edge-less view rather than failing).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn shard(&self, coord: ShardCoord) -> ShardView<'_> {
        assert!(
            coord.src_block < self.grid_dim && coord.dst_block < self.grid_dim,
            "shard {coord} out of range for {0}x{0} grid",
            self.grid_dim
        );
        match self
            .row_metas(coord.src_block)
            .binary_search_by_key(&coord.dst_block, |m| m.coord.dst_block)
        {
            Ok(offset) => {
                let meta = &self.row_metas(coord.src_block)[offset];
                ShardView {
                    coord,
                    meta: Some(meta),
                    edges: self.edges_of(meta),
                }
            }
            Err(_) => ShardView {
                coord,
                meta: None,
                edges: &[],
            },
        }
    }

    /// Iterates over the occupied shards in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = ShardView<'_>> + '_ {
        self.metas.iter().map(move |meta| ShardView {
            coord: meta.coord,
            meta: Some(meta),
            edges: self.edges_of(meta),
        })
    }

    /// The contiguous range of node ids belonging to block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= grid_dim`.
    pub fn block_nodes(&self, block: usize) -> Range<NodeId> {
        assert!(block < self.grid_dim, "block {block} out of range");
        let start = (block * self.nodes_per_shard) as NodeId;
        let end = ((block + 1) * self.nodes_per_shard).min(self.num_nodes) as NodeId;
        start..end
    }

    /// Number of nodes in block `block`.
    pub fn block_len(&self, block: usize) -> usize {
        let r = self.block_nodes(block);
        (r.end - r.start) as usize
    }

    /// Fraction of shards that contain at least one edge.
    ///
    /// Real-world graphs sharded this way are sparse at the shard level too;
    /// this statistic feeds the report's locality section and quantifies how
    /// much work the occupancy-aware traversals skip.
    pub fn occupancy(&self) -> f64 {
        let cells = self.grid_dim * self.grid_dim;
        if cells == 0 {
            return 0.0;
        }
        self.metas.len() as f64 / cells as f64
    }

    /// Maximum number of edges in any single shard.
    pub fn max_shard_edges(&self) -> usize {
        self.metas
            .iter()
            .map(ShardMeta::num_edges)
            .max()
            .unwrap_or(0)
    }

    /// Returns every grid coordinate — occupied or not — in the S-pattern
    /// (serpentine) order for the given traversal.
    ///
    /// For [`TraversalOrder::DestinationStationary`] the walk proceeds column
    /// by column (destination block outer loop), alternating the direction of
    /// each column so consecutive shards share a source block boundary. For
    /// [`TraversalOrder::SourceStationary`] the walk proceeds row by row.
    ///
    /// The iterator is allocation-free: coordinates are computed from a
    /// linear index. For walks that should skip empty cells, use
    /// [`ShardGrid::occupied_traversal`].
    pub fn traversal(&self, order: TraversalOrder) -> SerpentineCoords {
        SerpentineCoords {
            grid_dim: self.grid_dim,
            order,
            next: 0,
            total: self.grid_dim * self.grid_dim,
        }
    }

    /// Returns the *occupied* shards in the same S-pattern order as
    /// [`ShardGrid::traversal`], skipping empty cells via the sparse index.
    ///
    /// This is the subsequence of the full serpentine walk restricted to
    /// shards that actually contain edges, so any consumer for whom empty
    /// shards are no-ops (the timing simulator, the functional executor)
    /// observes an identical processing order at `O(occupied + S)` cost
    /// instead of `O(S²)`.
    pub fn occupied_traversal(&self, order: TraversalOrder) -> OccupiedTraversal<'_> {
        OccupiedTraversal {
            grid: self,
            order,
            outer: 0,
            group: 0..0,
            reverse: false,
        }
    }
}

/// Allocation-free serpentine coordinate iterator returned by
/// [`ShardGrid::traversal`].
#[derive(Debug, Clone)]
pub struct SerpentineCoords {
    grid_dim: usize,
    order: TraversalOrder,
    next: usize,
    total: usize,
}

impl Iterator for SerpentineCoords {
    type Item = ShardCoord;

    fn next(&mut self) -> Option<ShardCoord> {
        if self.next >= self.total {
            return None;
        }
        let s = self.grid_dim;
        let outer = self.next / s;
        let raw = self.next % s;
        let inner = if outer % 2 == 0 { raw } else { s - 1 - raw };
        self.next += 1;
        Some(match self.order {
            TraversalOrder::DestinationStationary => ShardCoord::new(inner, outer),
            TraversalOrder::SourceStationary => ShardCoord::new(outer, inner),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SerpentineCoords {}

/// Occupied-only serpentine shard iterator returned by
/// [`ShardGrid::occupied_traversal`].
///
/// Walks the sparse row/column index group by group, reversing every other
/// group to follow the S-pattern, and yields a [`ShardView`] per occupied
/// shard.
#[derive(Debug, Clone)]
pub struct OccupiedTraversal<'a> {
    grid: &'a ShardGrid,
    order: TraversalOrder,
    /// Next outer row/column group to open.
    outer: usize,
    /// Remaining entry range of the currently open group.
    group: Range<usize>,
    /// Whether the open group is consumed back to front.
    reverse: bool,
}

impl<'a> OccupiedTraversal<'a> {
    fn meta_at(&self, entry: usize) -> &'a ShardMeta {
        match self.order {
            TraversalOrder::SourceStationary => &self.grid.metas[entry],
            TraversalOrder::DestinationStationary => &self.grid.metas[self.grid.col_entries[entry]],
        }
    }
}

impl<'a> Iterator for OccupiedTraversal<'a> {
    type Item = ShardView<'a>;

    fn next(&mut self) -> Option<ShardView<'a>> {
        loop {
            if !self.group.is_empty() {
                let entry = if self.reverse {
                    self.group.end -= 1;
                    self.group.end
                } else {
                    let e = self.group.start;
                    self.group.start += 1;
                    e
                };
                let meta = self.meta_at(entry);
                return Some(ShardView {
                    coord: meta.coord,
                    meta: Some(meta),
                    edges: self.grid.edges_of(meta),
                });
            }
            if self.outer >= self.grid.grid_dim {
                return None;
            }
            let offsets = match self.order {
                TraversalOrder::SourceStationary => &self.grid.row_offsets,
                TraversalOrder::DestinationStationary => &self.grid.col_offsets,
            };
            self.group = offsets[self.outer]..offsets[self.outer + 1];
            self.reverse = self.outer % 2 == 1;
            self.outer += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> EdgeList {
        EdgeList::from_pairs(
            8,
            &[
                (0, 1),
                (0, 7),
                (1, 4),
                (2, 3),
                (3, 6),
                (4, 0),
                (5, 2),
                (6, 5),
                (7, 7),
                (7, 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_rejects_bad_parameters() {
        let edges = sample_edges();
        assert!(ShardGrid::build(&edges, 0).is_err());
        let empty = EdgeList::new(0);
        assert!(ShardGrid::build(&empty, 4).is_err());
    }

    #[test]
    fn streamed_build_is_bit_identical_to_in_memory() {
        let mut sorted: Vec<Edge> = sample_edges().iter().copied().collect();
        sorted.sort_unstable();
        let edges = EdgeList::from_edges(8, sorted).unwrap();
        for nps in [1, 2, 3, 4, 8, 16] {
            let built = ShardGrid::build(&edges, nps).unwrap();
            let streamed =
                ShardGrid::build_streamed(edges.num_nodes(), nps, edges.iter().copied()).unwrap();
            assert_eq!(streamed, built, "nps={nps}");
        }
        // An empty sorted stream matches the edgeless build.
        let empty = EdgeList::new(5);
        assert_eq!(
            ShardGrid::build_streamed(5, 2, std::iter::empty()).unwrap(),
            ShardGrid::build(&empty, 2).unwrap()
        );
    }

    #[test]
    fn streamed_build_rejects_bad_input() {
        assert!(ShardGrid::build_streamed(8, 0, std::iter::empty()).is_err());
        assert!(ShardGrid::build_streamed(0, 4, std::iter::empty()).is_err());
        // Out-of-range endpoint.
        assert!(matches!(
            ShardGrid::build_streamed(4, 2, [Edge::new(0, 4)].into_iter()),
            Err(GraphError::NodeOutOfRange { node: 4, .. })
        ));
        // Unsorted stream.
        let err = ShardGrid::build_streamed(4, 2, [Edge::new(2, 0), Edge::new(1, 3)])
            .unwrap_err();
        assert!(err.to_string().contains("sorted"), "{err}");
    }

    #[test]
    fn grid_dimensions() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        assert_eq!(grid.grid_dim(), 2);
        assert_eq!(grid.num_nodes(), 8);
        assert_eq!(grid.nodes_per_shard(), 4);
        let grid3 = ShardGrid::build(&edges, 3).unwrap();
        assert_eq!(grid3.grid_dim(), 3);
    }

    #[test]
    fn every_edge_lands_in_exactly_one_shard() {
        let edges = sample_edges();
        for nps in [1, 2, 3, 4, 8, 16] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            assert_eq!(
                grid.total_edges(),
                edges.num_edges(),
                "nodes_per_shard={nps}"
            );
            let from_shards: usize = grid.iter().map(|s| s.num_edges()).sum();
            assert_eq!(from_shards, edges.num_edges(), "nodes_per_shard={nps}");
        }
    }

    #[test]
    fn edges_are_placed_in_the_correct_shard() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        for shard in grid.iter() {
            assert!(!shard.is_empty(), "iter() yields only occupied shards");
            for e in shard.edges() {
                assert_eq!(e.src as usize / 4, shard.coord().src_block);
                assert_eq!(e.dst as usize / 4, shard.coord().dst_block);
            }
        }
    }

    #[test]
    fn arena_is_sorted_and_shards_are_contiguous_slices() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        let mut offset = 0;
        for meta in grid.metas() {
            let slice = grid.edges_of(meta);
            assert_eq!(slice.as_ptr(), grid.edges()[offset..].as_ptr());
            offset += slice.len();
            // Within a shard, edges are sorted by (src, dst).
            assert!(slice.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(offset, grid.total_edges());
    }

    #[test]
    fn shard_edge_count_is_bounded_by_n_squared() {
        let edges = sample_edges();
        for nps in [1, 2, 4] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            assert!(grid.max_shard_edges() <= nps * nps);
        }
    }

    #[test]
    fn unique_endpoint_counts() {
        let edges = EdgeList::from_pairs(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        let shard = grid.shard(ShardCoord::new(0, 1));
        assert_eq!(shard.unique_source_count(), 2);
        assert_eq!(shard.unique_destination_count(), 2);
        assert_eq!(shard.num_edges(), 3);
        // The other three cells of the 2x2 grid are empty views.
        let empty = grid.shard(ShardCoord::new(1, 0));
        assert!(empty.is_empty());
        assert!(empty.meta().is_none());
        assert_eq!(empty.unique_source_count(), 0);
        assert_eq!(empty.unique_destination_count(), 0);
        assert_eq!(grid.occupied_shards(), 1);
    }

    #[test]
    fn meta_fetch_byte_costs() {
        let edges = EdgeList::from_pairs(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        let meta = *grid.shard(ShardCoord::new(0, 1)).meta().unwrap();
        assert_eq!(meta.edge_fetch_bytes(), 3 * BYTES_PER_EDGE);
        assert_eq!(
            meta.source_feature_bytes(64),
            2 * 64 * BYTES_PER_FEATURE_ELEMENT
        );
        assert_eq!(
            meta.destination_feature_bytes(16),
            2 * 16 * BYTES_PER_FEATURE_ELEMENT
        );
    }

    #[test]
    fn block_nodes_last_block_may_be_short() {
        let edges = EdgeList::from_pairs(7, &[(0, 6)]).unwrap();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        assert_eq!(grid.grid_dim(), 3);
        assert_eq!(grid.block_nodes(0), 0..3);
        assert_eq!(grid.block_nodes(2), 6..7);
        assert_eq!(grid.block_len(2), 1);
    }

    #[test]
    fn traversal_visits_every_shard_once() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        for order in [
            TraversalOrder::SourceStationary,
            TraversalOrder::DestinationStationary,
        ] {
            let coords: Vec<ShardCoord> = grid.traversal(order).collect();
            assert_eq!(coords.len(), 9);
            assert_eq!(grid.traversal(order).len(), 9);
            let mut sorted = coords.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 9, "every coordinate visited exactly once");
        }
    }

    #[test]
    fn dst_stationary_traversal_is_column_major_serpentine() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let coords: Vec<ShardCoord> = grid
            .traversal(TraversalOrder::DestinationStationary)
            .collect();
        assert_eq!(
            coords,
            vec![
                ShardCoord::new(0, 0),
                ShardCoord::new(1, 0),
                ShardCoord::new(1, 1),
                ShardCoord::new(0, 1),
            ]
        );
    }

    #[test]
    fn src_stationary_traversal_is_row_major_serpentine() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 4).unwrap();
        let coords: Vec<ShardCoord> = grid.traversal(TraversalOrder::SourceStationary).collect();
        assert_eq!(
            coords,
            vec![
                ShardCoord::new(0, 0),
                ShardCoord::new(0, 1),
                ShardCoord::new(1, 1),
                ShardCoord::new(1, 0),
            ]
        );
    }

    #[test]
    fn occupied_traversal_is_the_serpentine_subsequence() {
        let edges = sample_edges();
        for nps in [1, 2, 3, 4] {
            let grid = ShardGrid::build(&edges, nps).unwrap();
            for order in [
                TraversalOrder::SourceStationary,
                TraversalOrder::DestinationStationary,
            ] {
                let expected: Vec<ShardCoord> = grid
                    .traversal(order)
                    .filter(|&c| !grid.shard(c).is_empty())
                    .collect();
                let occupied: Vec<ShardCoord> =
                    grid.occupied_traversal(order).map(|s| s.coord()).collect();
                assert_eq!(occupied, expected, "nps={nps} {order}");
            }
        }
    }

    #[test]
    fn rows_and_columns_index_occupied_shards() {
        let edges = sample_edges();
        let grid = ShardGrid::build(&edges, 3).unwrap();
        let mut row_total = 0;
        for src in 0..grid.grid_dim() {
            let mut prev = None;
            for meta in grid.row_metas(src) {
                assert_eq!(meta.coord().src_block, src);
                if let Some(p) = prev {
                    assert!(p < meta.coord().dst_block);
                }
                prev = Some(meta.coord().dst_block);
                row_total += meta.num_edges();
            }
        }
        assert_eq!(row_total, grid.total_edges());
        let mut col_total = 0;
        for dst in 0..grid.grid_dim() {
            let mut prev = None;
            for meta in grid.column_metas(dst) {
                assert_eq!(meta.coord().dst_block, dst);
                if let Some(p) = prev {
                    assert!(p < meta.coord().src_block);
                }
                prev = Some(meta.coord().src_block);
                col_total += meta.num_edges();
            }
        }
        assert_eq!(col_total, grid.total_edges());
    }

    #[test]
    fn occupancy_counts_non_empty_shards() {
        let edges = EdgeList::from_pairs(4, &[(0, 0), (0, 1)]).unwrap();
        let grid = ShardGrid::build(&edges, 2).unwrap();
        // Only shard (0, 0) has edges out of 4 shards.
        assert!((grid.occupancy() - 0.25).abs() < 1e-9);
        assert_eq!(grid.occupied_shards(), 1);
    }

    #[test]
    fn edgeless_graph_builds_an_empty_grid() {
        let edges = EdgeList::new(5);
        let grid = ShardGrid::build(&edges, 2).unwrap();
        assert_eq!(grid.grid_dim(), 3);
        assert_eq!(grid.occupied_shards(), 0);
        assert_eq!(grid.occupancy(), 0.0);
        assert_eq!(grid.max_shard_edges(), 0);
        assert_eq!(
            grid.occupied_traversal(TraversalOrder::default()).count(),
            0
        );
        assert_eq!(grid.traversal(TraversalOrder::default()).count(), 9);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ShardCoord::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(
            TraversalOrder::SourceStationary.to_string(),
            "src-stationary"
        );
        assert_eq!(
            TraversalOrder::DestinationStationary.to_string(),
            "dst-stationary"
        );
    }

    #[test]
    fn default_order_is_destination_stationary() {
        assert_eq!(
            TraversalOrder::default(),
            TraversalOrder::DestinationStationary
        );
    }
}
