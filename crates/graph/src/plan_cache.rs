//! Shard-plan caching for compile-once, run-many simulation sessions.
//!
//! Sharding an edge list into a [`ShardGrid`](crate::ShardGrid) is the
//! expensive part of compiling a workload, and its inputs are only the edge
//! list, the nodes-per-shard parameter `n` and whether self-loop edges are
//! added. A [`ShardPlanCache`] pins one edge list and memoises every grid
//! built from it, so sweeping many `(config, dataflow)` scenarios over the
//! same graph reshards only when `n` actually changes.

use crate::{EdgeList, GraphError, ShardGrid};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Cache key: the two parameters that determine a shard grid for a fixed
/// edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Maximum nodes per shard (the paper's `n`).
    pub nodes_per_shard: usize,
    /// Whether self-loop edges are added before sharding (self-inclusive
    /// aggregation).
    pub include_self_loops: bool,
}

/// A memoising sharder over one immutable edge list.
///
/// Thread-safe: scenario sweeps shard from many worker threads at once, and
/// every caller asking for the same `(n, self-loops)` pair receives the same
/// [`Arc<ShardGrid>`].
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{generators, ShardPlanCache};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = generators::rmat(128, 512, 3)?;
/// let cache = ShardPlanCache::new(edges);
/// let a = cache.plan(32, false)?;
/// let b = cache.plan(32, false)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // cached, not rebuilt
/// assert_eq!(cache.cached_plans(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardPlanCache {
    edges: EdgeList,
    with_self_loops: OnceLock<EdgeList>,
    plans: Mutex<HashMap<PlanKey, Arc<ShardGrid>>>,
    /// Cumulative wall-clock seconds spent inside [`ShardGrid::build`]
    /// (cache hits cost nothing; racing duplicate builds both count, since
    /// both actually burned the time).
    build_seconds: Mutex<f64>,
}

impl ShardPlanCache {
    /// Creates a cache over `edges`.
    pub fn new(edges: EdgeList) -> Self {
        Self {
            edges,
            with_self_loops: OnceLock::new(),
            plans: Mutex::new(HashMap::new()),
            build_seconds: Mutex::new(0.0),
        }
    }

    /// The edge list the cache shards (without self-loops).
    pub fn edges(&self) -> &EdgeList {
        &self.edges
    }

    /// The edge list with one self-loop per node, built on first use.
    pub fn edges_with_self_loops(&self) -> &EdgeList {
        self.with_self_loops.get_or_init(|| {
            let mut with_self = self.edges.clone();
            with_self.add_self_loops();
            with_self
        })
    }

    /// Returns the shard grid for `(nodes_per_shard, include_self_loops)`,
    /// building and caching it on first request.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardGrid::build`] errors (zero `nodes_per_shard`, empty
    /// node set).
    pub fn plan(
        &self,
        nodes_per_shard: usize,
        include_self_loops: bool,
    ) -> Result<Arc<ShardGrid>, GraphError> {
        let key = PlanKey {
            nodes_per_shard,
            include_self_loops,
        };
        if let Some(hit) = self.plans.lock().expect("plan cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock so concurrent misses on *different* keys
        // shard in parallel; a racing duplicate build of the same key is
        // harmless and the first insert wins.
        let edges = if include_self_loops {
            self.edges_with_self_loops()
        } else {
            &self.edges
        };
        let build_start = Instant::now();
        let grid = Arc::new(ShardGrid::build(edges, nodes_per_shard)?);
        *self.build_seconds.lock().expect("build timer poisoned") +=
            build_start.elapsed().as_secs_f64();
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Ok(Arc::clone(plans.entry(key).or_insert(grid)))
    }

    /// Number of distinct shard grids currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Cumulative wall-clock seconds this cache has spent building shard
    /// grids (cache hits are free).
    pub fn build_seconds(&self) -> f64 {
        *self.build_seconds.lock().expect("build timer poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn cache() -> ShardPlanCache {
        ShardPlanCache::new(generators::rmat(100, 400, 1).unwrap())
    }

    #[test]
    fn identical_keys_share_one_grid() {
        let cache = cache();
        let a = cache.plan(16, true).unwrap();
        let b = cache.plan(16, true).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.cached_plans(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_grids() {
        let cache = cache();
        let plain = cache.plan(16, false).unwrap();
        let with_self = cache.plan(16, true).unwrap();
        let coarser = cache.plan(64, false).unwrap();
        assert_eq!(cache.cached_plans(), 3);
        // Self-loops add one edge per node.
        assert_eq!(with_self.total_edges(), plain.total_edges() + 100);
        assert!(coarser.grid_dim() < plain.grid_dim());
    }

    #[test]
    fn cached_grid_matches_a_fresh_build() {
        let edges = generators::rmat(100, 400, 1).unwrap();
        let cache = ShardPlanCache::new(edges.clone());
        let cached = cache.plan(16, false).unwrap();
        let fresh = ShardGrid::build(&edges, 16).unwrap();
        assert_eq!(*cached, fresh);
    }

    #[test]
    fn build_seconds_accumulate_only_on_misses() {
        let cache = cache();
        assert_eq!(cache.build_seconds(), 0.0);
        cache.plan(16, false).unwrap();
        let after_first = cache.build_seconds();
        assert!(after_first > 0.0);
        cache.plan(16, false).unwrap();
        assert_eq!(cache.build_seconds(), after_first, "hits are free");
        cache.plan(64, false).unwrap();
        assert!(cache.build_seconds() > after_first);
    }

    #[test]
    fn invalid_parameters_error_without_caching() {
        let cache = cache();
        assert!(cache.plan(0, false).is_err());
        assert_eq!(cache.cached_plans(), 0);
    }

    #[test]
    fn plan_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardPlanCache>();
    }
}
