//! Shard-plan caching for compile-once, run-many simulation sessions.
//!
//! Sharding an edge list into a [`ShardGrid`](crate::ShardGrid) is the
//! expensive part of compiling a workload, and its inputs are only the edge
//! list, the nodes-per-shard parameter `n` and whether self-loop edges are
//! added. A [`ShardPlanCache`] pins one edge list and memoises every grid
//! built from it, so sweeping many `(config, dataflow)` scenarios over the
//! same graph reshards only when `n` actually changes.
//!
//! When the cache is constructed with a disk backing
//! ([`ShardPlanCache::with_disk_cache`]), in-memory misses consult the
//! persistent [`ArtifactCache`] before building: repeated harness runs over
//! the same dataset skip re-sharding entirely, loading the sorted arena and
//! shard metadata straight from disk. Corrupt or stale artifacts are treated
//! as misses (the grid is rebuilt and the artifact overwritten), never as
//! failures.

use crate::{
    ArtifactCache, EdgeList, GraphError, GridResidency, MemoryBudget, ShardGrid, WindowPool,
    BYTES_PER_EDGE,
};
use gnnerator_faults::lock_recover;
use gnnerator_observe::Recorder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Cache key: the two parameters that determine a shard grid for a fixed
/// edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Maximum nodes per shard (the paper's `n`).
    pub nodes_per_shard: usize,
    /// Whether self-loop edges are added before sharding (self-inclusive
    /// aggregation).
    pub include_self_loops: bool,
}

/// A memoising sharder over one immutable edge list.
///
/// Thread-safe: scenario sweeps shard from many worker threads at once, and
/// every caller asking for the same `(n, self-loops)` pair receives the same
/// [`Arc<ShardGrid>`].
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{generators, ShardPlanCache};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = generators::rmat(128, 512, 3)?;
/// let cache = ShardPlanCache::new(edges);
/// let a = cache.plan(32, false)?;
/// let b = cache.plan(32, false)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // cached, not rebuilt
/// assert_eq!(cache.cached_plans(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardPlanCache {
    edges: EdgeList,
    with_self_loops: OnceLock<EdgeList>,
    plans: Mutex<HashMap<PlanKey, Arc<ShardGrid>>>,
    /// Cumulative wall-clock seconds spent inside [`ShardGrid::build`]
    /// (cache hits cost nothing; racing duplicate builds both count, since
    /// both actually burned the time).
    build_seconds: Mutex<f64>,
    /// Persistent backing: the artifact cache plus this edge list's stable
    /// graph identity (a dataset key). `None` for anonymous edge lists.
    disk: Option<(Arc<ArtifactCache>, String)>,
    /// Number of grids built from scratch (in-memory *and* disk misses).
    grids_built: AtomicUsize,
    /// Number of grids loaded from the persistent cache.
    grids_loaded: AtomicUsize,
    /// Memory budget for disk loads (segmented vs. wholesale) and for
    /// choosing the streaming shard build over the sort-in-place one.
    budget: MemoryBudget,
    /// How grid edge arenas are kept resident: fully in memory, faulted
    /// through a bounded [`ShardWindow`](crate::ShardWindow), or decided by
    /// the memory budget.
    residency: GridResidency,
    /// One residency pool shared by every windowed grid this cache
    /// materialises, so several shardings of the same graph (one per
    /// derived nodes-per-shard) split a single window budget instead of
    /// each claiming the full budget. Created on the first windowed load.
    window_pool: OnceLock<Arc<WindowPool>>,
    /// Telemetry sink threaded into the shared window pool. Defaults to the
    /// process global; a scoped recorder attributes this cache's window
    /// traffic to its scope (one session, typically).
    recorder: Recorder,
}

impl ShardPlanCache {
    /// Creates a purely in-memory cache over `edges`.
    pub fn new(edges: EdgeList) -> Self {
        Self {
            edges,
            with_self_loops: OnceLock::new(),
            plans: Mutex::new(HashMap::new()),
            build_seconds: Mutex::new(0.0),
            disk: None,
            grids_built: AtomicUsize::new(0),
            grids_loaded: AtomicUsize::new(0),
            budget: MemoryBudget::from_env(),
            residency: GridResidency::from_env(),
            window_pool: OnceLock::new(),
            recorder: Recorder::default(),
        }
    }

    /// Overrides the telemetry sink this cache's window pool records into
    /// (the default is the process-global recorder). Must be set before the
    /// first windowed load — the shared pool is created lazily and keeps
    /// the recorder it was born with.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The telemetry sink this cache records into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Overrides the memory budget governing disk grid loads and build
    /// strategy (the default comes from `GNNERATOR_MEM_BUDGET`).
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The memory budget this cache plans under.
    pub fn memory_budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Overrides the grid residency policy (the default comes from
    /// `GNNERATOR_GRID_RESIDENCY`, falling back to budget-driven `auto`).
    pub fn with_residency(mut self, residency: GridResidency) -> Self {
        self.residency = residency;
        self
    }

    /// The grid residency policy this cache materialises grids under.
    pub fn residency(&self) -> GridResidency {
        self.residency
    }

    /// Creates a cache over `edges` backed by a persistent [`ArtifactCache`].
    ///
    /// `graph_key` is the stable identity of the edge list's source (e.g.
    /// [`ArtifactCache::dataset_key`]); grids are stored under
    /// `graph_key/nps../loops..`. Two processes that materialise the same
    /// `(spec, seed)` dataset therefore share shard grids across runs.
    pub fn with_disk_cache(
        edges: EdgeList,
        cache: Arc<ArtifactCache>,
        graph_key: impl Into<String>,
    ) -> Self {
        let mut this = Self::new(edges);
        if cache.is_enabled() {
            this.disk = Some((cache, graph_key.into()));
        }
        this
    }

    /// The edge list the cache shards (without self-loops).
    pub fn edges(&self) -> &EdgeList {
        &self.edges
    }

    /// The edge list with one self-loop per node, built on first use.
    pub fn edges_with_self_loops(&self) -> &EdgeList {
        self.with_self_loops.get_or_init(|| {
            let mut with_self = self.edges.clone();
            with_self.add_self_loops();
            with_self
        })
    }

    /// Returns the shard grid for `(nodes_per_shard, include_self_loops)`,
    /// building and caching it on first request.
    ///
    /// With a disk backing, an in-memory miss first tries the persistent
    /// artifact; only a disk miss (or an unusable artifact) pays for a fresh
    /// [`ShardGrid::build`], whose result is stored back for future runs.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardGrid::build`] errors (zero `nodes_per_shard`, empty
    /// node set).
    pub fn plan(
        &self,
        nodes_per_shard: usize,
        include_self_loops: bool,
    ) -> Result<Arc<ShardGrid>, GraphError> {
        let key = PlanKey {
            nodes_per_shard,
            include_self_loops,
        };
        if let Some(hit) = lock_recover(&self.plans).get(&key) {
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock so concurrent misses on *different* keys
        // shard in parallel; a racing duplicate build of the same key is
        // harmless and the first insert wins.
        let edges = if include_self_loops {
            self.edges_with_self_loops()
        } else {
            &self.edges
        };
        let grid = Arc::new(self.materialize(edges, nodes_per_shard, include_self_loops)?);
        let mut plans = lock_recover(&self.plans);
        Ok(Arc::clone(plans.entry(key).or_insert(grid)))
    }

    /// Loads the grid from disk or builds it fresh, maintaining the
    /// telemetry counters.
    fn materialize(
        &self,
        edges: &EdgeList,
        nodes_per_shard: usize,
        include_self_loops: bool,
    ) -> Result<ShardGrid, GraphError> {
        if nodes_per_shard == 0 {
            // Surface the parameter error before touching the disk so an
            // invalid request can never be "answered" by a stale artifact.
            return ShardGrid::build(edges, nodes_per_shard);
        }
        if let Some((cache, graph_key)) = &self.disk {
            let key = ArtifactCache::grid_key(graph_key, nodes_per_shard, include_self_loops);
            // The windowed (out-of-core) path only exists when the finished
            // arena would overflow the budget — or the residency policy
            // demands it — and needs a disk artifact to fault from.
            let arena_bytes = edges.num_edges() as u64 * BYTES_PER_EDGE;
            let windowed = self.residency.wants_window(self.budget, arena_bytes);
            let load = if windowed {
                cache.load_grid_windowed_in(&key, self.shared_window_pool())
            } else {
                cache.load_grid_budgeted(&key, self.budget)
            };
            match load {
                Ok(Some(grid))
                    if grid.num_nodes() == edges.num_nodes()
                        && grid.total_edges() == edges.num_edges()
                        && grid.nodes_per_shard() == nodes_per_shard =>
                {
                    self.grids_loaded.fetch_add(1, Ordering::Relaxed);
                    return Ok(grid);
                }
                // A clean miss, a shape mismatch (key reuse across different
                // graphs) or a corrupt/stale artifact: rebuild and overwrite.
                Ok(_) | Err(GraphError::CacheArtifact { .. }) => {}
                Err(other) => return Err(other),
            }
            let grid = self.build_timed(edges, nodes_per_shard)?;
            if cache.store_grid(&key, &grid).is_ok() && windowed {
                // The freshly written artifact lets the resident build be
                // dropped and re-opened through the bounded window. Any
                // hiccup falls back to serving the resident grid — the
                // result is bit-identical either way.
                if let Ok(Some(rewound)) =
                    cache.load_grid_windowed_in(&key, self.shared_window_pool())
                {
                    if rewound.num_nodes() == grid.num_nodes()
                        && rewound.total_edges() == grid.total_edges()
                        && rewound.nodes_per_shard() == grid.nodes_per_shard()
                    {
                        return Ok(rewound);
                    }
                }
            }
            return Ok(grid);
        }
        self.build_timed(edges, nodes_per_shard)
    }

    /// The pool every windowed grid of this cache draws residency from,
    /// created on first use with the budget-derived window size.
    fn shared_window_pool(&self) -> Arc<WindowPool> {
        Arc::clone(self.window_pool.get_or_init(|| {
            WindowPool::with_recorder(
                GridResidency::window_bytes(self.budget),
                self.recorder.clone(),
            )
        }))
    }

    fn build_timed(
        &self,
        edges: &EdgeList,
        nodes_per_shard: usize,
    ) -> Result<ShardGrid, GraphError> {
        let build_start = Instant::now();
        // A sorted edge list (the generators' normal output) can feed the
        // streaming build, which writes the arena in shard order without the
        // full-arena sort — same grid bit for bit, without the second copy
        // `ShardGrid::build`'s sort materialises.
        let grid = if edges.is_sorted() && nodes_per_shard > 0 && edges.num_nodes() > 0 {
            ShardGrid::build_streamed(edges.num_nodes(), nodes_per_shard, edges.iter().copied())?
        } else {
            ShardGrid::build(edges, nodes_per_shard)?
        };
        *lock_recover(&self.build_seconds) += build_start.elapsed().as_secs_f64();
        self.grids_built.fetch_add(1, Ordering::Relaxed);
        Ok(grid)
    }

    /// Number of distinct shard grids currently cached.
    pub fn cached_plans(&self) -> usize {
        lock_recover(&self.plans).len()
    }

    /// Cumulative wall-clock seconds this cache has spent building shard
    /// grids (cache hits — in-memory or disk — are free).
    pub fn build_seconds(&self) -> f64 {
        *lock_recover(&self.build_seconds)
    }

    /// Number of shard grids built from scratch by this cache.
    pub fn grids_built(&self) -> usize {
        self.grids_built.load(Ordering::Relaxed)
    }

    /// Number of shard grids loaded from the persistent artifact cache.
    pub fn grids_loaded(&self) -> usize {
        self.grids_loaded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::path::PathBuf;

    fn cache() -> ShardPlanCache {
        ShardPlanCache::new(generators::rmat(100, 400, 1).unwrap())
    }

    fn temp_dir(label: &str) -> PathBuf {
        static NONCE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gnnerator-plan-cache-{}-{label}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn identical_keys_share_one_grid() {
        let cache = cache();
        let a = cache.plan(16, true).unwrap();
        let b = cache.plan(16, true).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.cached_plans(), 1);
        assert_eq!(cache.grids_built(), 1);
        assert_eq!(cache.grids_loaded(), 0);
    }

    #[test]
    fn distinct_keys_build_distinct_grids() {
        let cache = cache();
        let plain = cache.plan(16, false).unwrap();
        let with_self = cache.plan(16, true).unwrap();
        let coarser = cache.plan(64, false).unwrap();
        assert_eq!(cache.cached_plans(), 3);
        // Self-loops add one edge per node.
        assert_eq!(with_self.total_edges(), plain.total_edges() + 100);
        assert!(coarser.grid_dim() < plain.grid_dim());
    }

    #[test]
    fn cached_grid_matches_a_fresh_build() {
        let edges = generators::rmat(100, 400, 1).unwrap();
        let cache = ShardPlanCache::new(edges.clone());
        let cached = cache.plan(16, false).unwrap();
        let fresh = ShardGrid::build(&edges, 16).unwrap();
        assert_eq!(*cached, fresh);
    }

    #[test]
    fn build_seconds_accumulate_only_on_misses() {
        let cache = cache();
        assert_eq!(cache.build_seconds(), 0.0);
        cache.plan(16, false).unwrap();
        let after_first = cache.build_seconds();
        assert!(after_first > 0.0);
        cache.plan(16, false).unwrap();
        assert_eq!(cache.build_seconds(), after_first, "hits are free");
        cache.plan(64, false).unwrap();
        assert!(cache.build_seconds() > after_first);
    }

    #[test]
    fn invalid_parameters_error_without_caching() {
        let cache = cache();
        assert!(cache.plan(0, false).is_err());
        assert_eq!(cache.cached_plans(), 0);
        assert_eq!(cache.grids_built(), 0);
    }

    #[test]
    fn plan_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardPlanCache>();
    }

    #[test]
    fn disk_backing_shares_grids_across_cache_instances() {
        let dir = temp_dir("share");
        let artifact = Arc::new(ArtifactCache::new(&dir));
        let edges = generators::rmat(100, 400, 1).unwrap();

        let first = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1");
        let built = first.plan(16, true).unwrap();
        assert_eq!(first.grids_built(), 1);
        assert_eq!(first.grids_loaded(), 0);

        // A second cache (a later process, in effect) loads instead of
        // building — bit-identically.
        let second = ShardPlanCache::with_disk_cache(edges.clone(), artifact, "g1");
        let loaded = second.plan(16, true).unwrap();
        assert_eq!(second.grids_built(), 0);
        assert_eq!(second.grids_loaded(), 1);
        assert_eq!(*loaded, *built);
        assert_eq!(second.build_seconds(), 0.0, "disk hits are free");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_artifact_falls_back_to_a_fresh_build() {
        let dir = temp_dir("corrupt");
        let artifact = Arc::new(ArtifactCache::new(&dir));
        let edges = generators::rmat(100, 400, 1).unwrap();
        let first = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1");
        let built = first.plan(16, false).unwrap();

        // Corrupt every artifact on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
        }
        // The typed error is observable at the ArtifactCache layer...
        let key = ArtifactCache::grid_key("g1", 16, false);
        assert!(matches!(
            artifact.load_grid(&key),
            Err(GraphError::CacheArtifact { .. })
        ));
        // ...and the plan cache silently rebuilds (and re-publishes).
        let second = ShardPlanCache::with_disk_cache(edges, Arc::clone(&artifact), "g1");
        let rebuilt = second.plan(16, false).unwrap();
        assert_eq!(second.grids_built(), 1);
        assert_eq!(second.grids_loaded(), 0);
        assert_eq!(*rebuilt, *built);
        // The overwritten artifact is valid again.
        assert!(artifact.load_grid(&key).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_graph_shape_is_not_served_from_disk() {
        // Two different graphs wrongly sharing a key must not cross-serve.
        let dir = temp_dir("mismatch");
        let artifact = Arc::new(ArtifactCache::new(&dir));
        let small = generators::rmat(100, 400, 1).unwrap();
        let big = generators::rmat(150, 700, 2).unwrap();
        let first = ShardPlanCache::with_disk_cache(small, Arc::clone(&artifact), "same-key");
        first.plan(16, false).unwrap();
        let second = ShardPlanCache::with_disk_cache(big.clone(), artifact, "same-key");
        let grid = second.plan(16, false).unwrap();
        assert_eq!(second.grids_loaded(), 0, "shape mismatch rejected");
        assert_eq!(grid.num_nodes(), big.num_nodes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forced_windowed_residency_is_bit_identical_to_resident() {
        let dir = temp_dir("windowed");
        let artifact = Arc::new(ArtifactCache::new(&dir));
        let edges = generators::rmat(100, 400, 1).unwrap();

        let resident = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1");
        let built = resident.plan(16, false).unwrap();
        assert!(!built.is_windowed());

        let windowed = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1")
            .with_residency(GridResidency::Windowed)
            .with_memory_budget(MemoryBudget::bytes(1 << 10));
        let faulted = windowed.plan(16, false).unwrap();
        assert!(faulted.is_windowed());
        assert_eq!(windowed.grids_loaded(), 1);
        assert_eq!(windowed.grids_built(), 0);
        assert_eq!(*faulted, *built, "windowed grid must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_cold_miss_builds_stores_and_reopens_through_the_window() {
        let dir = temp_dir("windowed-cold");
        let artifact = Arc::new(ArtifactCache::new(&dir));
        let edges = generators::rmat(100, 400, 1).unwrap();
        let cache = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1")
            .with_residency(GridResidency::Windowed);
        let grid = cache.plan(16, false).unwrap();
        assert_eq!(cache.grids_built(), 1, "cold cache pays one build");
        assert_eq!(cache.grids_loaded(), 0, "the reopen is not a load hit");
        assert!(
            grid.is_windowed(),
            "the fresh build is immediately re-opened through the window"
        );
        assert_eq!(*grid, ShardGrid::build(&edges, 16).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_residency_windows_only_when_the_budget_demands_it() {
        let dir = temp_dir("auto");
        let artifact = Arc::new(ArtifactCache::new(&dir));
        let edges = generators::rmat(100, 400, 1).unwrap();

        // A roomy budget keeps the arena resident.
        let roomy = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1")
            .with_residency(GridResidency::Auto)
            .with_memory_budget(MemoryBudget::bytes(1 << 30));
        assert!(!roomy.plan(16, false).unwrap().is_windowed());

        // A budget smaller than the arena forces the window.
        let tight = ShardPlanCache::with_disk_cache(edges.clone(), Arc::clone(&artifact), "g1")
            .with_residency(GridResidency::Auto)
            .with_memory_budget(MemoryBudget::bytes(256));
        let grid = tight.plan(16, false).unwrap();
        assert!(grid.is_windowed());
        assert_eq!(grid.window().unwrap().window_bytes(), 256);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_residency_without_disk_backing_stays_resident() {
        // There is no artifact to fault from, so the policy degrades to a
        // resident build rather than failing.
        let cache = ShardPlanCache::new(generators::rmat(100, 400, 1).unwrap())
            .with_residency(GridResidency::Windowed);
        let grid = cache.plan(16, false).unwrap();
        assert!(!grid.is_windowed());
        assert_eq!(cache.grids_built(), 1);
    }

    #[test]
    fn disabled_artifact_cache_degrades_to_in_memory() {
        let edges = generators::rmat(100, 400, 1).unwrap();
        let cache = ShardPlanCache::with_disk_cache(
            edges,
            Arc::new(ArtifactCache::disabled()),
            "irrelevant",
        );
        cache.plan(16, false).unwrap();
        assert_eq!(cache.grids_built(), 1);
        assert_eq!(cache.grids_loaded(), 0);
    }
}
