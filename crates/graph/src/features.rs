use crate::{CsrGraph, GraphError};
use gnnerator_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Dense per-node feature table.
///
/// Row `v` holds the feature vector of node `v`. The paper's datasets attach
/// high-dimensional features to every node (up to 3703 dimensions for
/// Citeseer), which is what makes the aggregation stage memory-bound and the
/// feature-blocking dataflow worthwhile.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::NodeFeatures;
///
/// let feats = NodeFeatures::zeros(10, 16);
/// assert_eq!(feats.num_nodes(), 10);
/// assert_eq!(feats.dim(), 16);
/// assert_eq!(feats.size_bytes(), 10 * 16 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFeatures {
    matrix: Matrix,
}

impl NodeFeatures {
    /// Creates an all-zero feature table for `num_nodes` nodes of dimension `dim`.
    pub fn zeros(num_nodes: usize, dim: usize) -> Self {
        Self {
            matrix: Matrix::zeros(num_nodes, dim),
        }
    }

    /// Wraps an existing matrix as a feature table.
    pub fn from_matrix(matrix: Matrix) -> Self {
        Self { matrix }
    }

    /// Creates a feature table where entry `(v, d)` is `f(v, d)`.
    pub fn from_fn<F>(num_nodes: usize, dim: usize, f: F) -> Self
    where
        F: FnMut(usize, usize) -> f32,
    {
        Self {
            matrix: Matrix::from_fn(num_nodes, dim, f),
        }
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.matrix.rows()
    }

    /// Feature dimension (columns).
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Total storage footprint in bytes, assuming 4-byte (f32/fp32) features.
    ///
    /// This is the quantity Table II reports as "Size" and the quantity the
    /// DRAM traffic model charges when streaming features on and off chip.
    pub fn size_bytes(&self) -> usize {
        self.num_nodes() * self.dim() * std::mem::size_of::<f32>()
    }

    /// Storage footprint of a single node's feature vector in bytes.
    pub fn bytes_per_node(&self) -> usize {
        self.dim() * std::mem::size_of::<f32>()
    }

    /// The feature vector of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn feature(&self, v: usize) -> &[f32] {
        self.matrix.row(v)
    }

    /// Borrows the underlying matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Consumes the table and returns the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// Checks that this table is compatible with `graph` (same node count).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::FeatureShapeMismatch`] if the row count differs
    /// from the graph's node count.
    pub fn check_compatible(&self, graph: &CsrGraph) -> Result<(), GraphError> {
        if self.num_nodes() != graph.num_nodes() {
            return Err(GraphError::FeatureShapeMismatch {
                graph_nodes: graph.num_nodes(),
                feature_rows: self.num_nodes(),
            });
        }
        Ok(())
    }
}

impl From<Matrix> for NodeFeatures {
    fn from(matrix: Matrix) -> Self {
        Self { matrix }
    }
}

impl AsRef<Matrix> for NodeFeatures {
    fn as_ref(&self) -> &Matrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn zeros_shape_and_size() {
        let f = NodeFeatures::zeros(100, 32);
        assert_eq!(f.num_nodes(), 100);
        assert_eq!(f.dim(), 32);
        assert_eq!(f.size_bytes(), 100 * 32 * 4);
        assert_eq!(f.bytes_per_node(), 128);
    }

    #[test]
    fn from_fn_populates_rows() {
        let f = NodeFeatures::from_fn(4, 2, |v, d| (v * 10 + d) as f32);
        assert_eq!(f.feature(2), &[20.0, 21.0]);
    }

    #[test]
    fn compatible_with_matching_graph() {
        let g = CsrGraph::from_pairs(3, &[(0, 1)]).unwrap();
        let good = NodeFeatures::zeros(3, 8);
        let bad = NodeFeatures::zeros(4, 8);
        assert!(good.check_compatible(&g).is_ok());
        assert!(bad.check_compatible(&g).is_err());
    }

    #[test]
    fn conversions_roundtrip() {
        let m = Matrix::filled(2, 3, 1.0);
        let f = NodeFeatures::from(m.clone());
        assert_eq!(f.as_matrix(), &m);
        assert_eq!(f.as_ref(), &m);
        assert_eq!(f.into_matrix(), m);
    }

    #[test]
    fn table_ii_sizes_are_of_the_right_order() {
        // Table II: Cora 2708 x 1433 ~ 15.6 MB (the paper counts fp32 features).
        let cora = NodeFeatures::zeros(2708, 1433);
        let mb = cora.size_bytes() as f64 / 1e6;
        assert!(mb > 14.0 && mb < 17.0, "Cora feature table is {mb:.1} MB");
    }
}
