use crate::{Edge, EdgeList, GraphError, NodeId};
use serde::{Deserialize, Serialize};

/// A directed graph in compressed-sparse-row (CSR) form, indexed by
/// destination node.
///
/// `neighbors(v)` returns the *in-neighbourhood* of `v` — the set of source
/// nodes whose features `v` aggregates — because the aggregation stage of a
/// GNN is a gather over incoming edges. The reference executor, the
/// functional accelerator model and the statistics module all consume this
/// form; the timing model consumes the sharded edge list instead.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{CsrGraph, EdgeList};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let edges = EdgeList::from_pairs(3, &[(0, 2), (1, 2), (2, 0)])?;
/// let graph = CsrGraph::from_edge_list(&edges);
/// assert_eq!(graph.neighbors(2), &[0, 1]);
/// assert_eq!(graph.in_degree(2), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: usize,
    /// Offset of node `v`'s neighbour slice in `sources`; length `num_nodes + 1`.
    offsets: Vec<usize>,
    /// Concatenated, per-destination sorted source-node lists.
    sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list, grouping edges by destination.
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let num_nodes = edges.num_nodes();
        let mut counts = vec![0usize; num_nodes + 1];
        for e in edges.iter() {
            counts[e.dst as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut sources = vec![0 as NodeId; edges.num_edges()];
        for e in edges.iter() {
            let slot = cursor[e.dst as usize];
            sources[slot] = e.src;
            cursor[e.dst as usize] += 1;
        }
        // Sort each neighbour list for deterministic iteration.
        let mut graph = Self {
            num_nodes,
            offsets,
            sources,
        };
        for v in 0..num_nodes {
            let (start, end) = (graph.offsets[v], graph.offsets[v + 1]);
            graph.sources[start..end].sort_unstable();
        }
        graph
    }

    /// Builds a CSR graph directly from `(src, dst)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is out of range.
    pub fn from_pairs(num_nodes: usize, pairs: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let edges = EdgeList::from_pairs(num_nodes, pairs)?;
        Ok(Self::from_edge_list(&edges))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.sources.len()
    }

    /// In-neighbours (sources aggregated by) of node `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        assert!(v < self.num_nodes, "node {v} out of range");
        &self.sources[self.offsets[v]..self.offsets[v + 1]]
    }

    /// In-degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Average in-degree over all nodes.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Maximum in-degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes as NodeId)
            .map(|v| self.in_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all edges as `Edge { src, dst }` in destination-major order.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes as NodeId).flat_map(move |dst| {
            self.neighbors(dst)
                .iter()
                .map(move |&src| Edge::new(src, dst))
        })
    }

    /// Converts back to an edge list (destination-major order).
    pub fn to_edge_list(&self) -> EdgeList {
        let edges: Vec<Edge> = self.iter_edges().collect();
        EdgeList::from_edges(self.num_nodes, edges).expect("CSR edges are in range by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_pairs(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn neighbors_are_grouped_by_destination() {
        let g = triangle();
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn counts_match_edge_list() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_pairs_rejects_out_of_range() {
        assert!(CsrGraph::from_pairs(2, &[(0, 2)]).is_err());
    }

    #[test]
    fn roundtrip_through_edge_list() {
        let g = triangle();
        let list = g.to_edge_list();
        assert_eq!(list.num_edges(), g.num_edges());
        let g2 = CsrGraph::from_edge_list(&list);
        assert_eq!(g, g2);
    }

    #[test]
    fn iter_edges_yields_every_edge() {
        let g = triangle();
        let edges: Vec<Edge> = g.iter_edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&Edge::new(0, 2)));
        assert!(edges.contains(&Edge::new(1, 2)));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_pairs(0, &[]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_neighbourhoods() {
        let g = CsrGraph::from_pairs(4, &[(0, 1)]).unwrap();
        assert!(g.neighbors(2).is_empty());
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbors_panics_out_of_range() {
        let g = triangle();
        let _ = g.neighbors(3);
    }
}
