//! Memory budgeting for the out-of-core graph pipeline.
//!
//! A [`MemoryBudget`] caps how many bytes the graph path may keep resident
//! while building edge lists ([`EdgeListBuilder`](crate::EdgeListBuilder)
//! spills sealed chunks to disk run-files beyond the cap) and while loading
//! cached shard grids ([`ArtifactCache`](crate::ArtifactCache) switches from
//! wholesale deserialisation to bounded chunk reads). The budget is a
//! *pipeline* cap: the finished [`EdgeList`](crate::EdgeList) and
//! [`ShardGrid`](crate::ShardGrid) the simulator consumes are still fully
//! materialised — what the budget bounds is the transient working set on top
//! of them (unsorted chunks, merge buffers, whole-file deserialisation
//! copies), which is where the unbudgeted path's peak lives.
//!
//! The process-wide default comes from the [`MEM_BUDGET_ENV_VAR`]
//! environment variable; explicit configuration (session, sweep runner,
//! serve config) overrides it. This module also owns the process-wide
//! out-of-core telemetry counters (peak resident bytes, spilled chunks,
//! segmented vs. full grid loads) that `BENCH_sweep.json` and the serving
//! `/stats` endpoint report.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable holding the process-wide default memory budget.
///
/// Accepted values: a byte count with an optional binary suffix
/// (`67108864`, `64m`, `64mib`, `1g`), or `off`/`none`/`unbounded`/empty
/// for no budget. Unparseable values fall back to unbounded rather than
/// aborting the process.
pub const MEM_BUDGET_ENV_VAR: &str = "GNNERATOR_MEM_BUDGET";

/// A cap on the transient bytes the graph pipeline may keep resident.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::MemoryBudget;
///
/// let unbounded = MemoryBudget::unbounded();
/// assert!(!unbounded.is_bounded());
///
/// let tight = MemoryBudget::bytes(1 << 20);
/// assert_eq!(tight.limit_bytes(), Some(1 << 20));
/// assert!(tight.is_bounded());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemoryBudget {
    limit: Option<u64>,
}

impl MemoryBudget {
    /// No cap: the pipeline keeps everything in memory (the historical
    /// behaviour). This is the default when [`MEM_BUDGET_ENV_VAR`] is unset.
    pub fn unbounded() -> Self {
        MemoryBudget { limit: None }
    }

    /// Caps resident pipeline bytes at `limit`. A budget of `0` forces the
    /// maximally out-of-core path: every sealed chunk spills and every grid
    /// load streams.
    pub fn bytes(limit: u64) -> Self {
        MemoryBudget { limit: Some(limit) }
    }

    /// Reads the process-wide default from [`MEM_BUDGET_ENV_VAR`].
    pub fn from_env() -> Self {
        match std::env::var(MEM_BUDGET_ENV_VAR) {
            Ok(value) => Self::parse(&value),
            Err(_) => Self::unbounded(),
        }
    }

    /// Parses a budget string as documented on [`MEM_BUDGET_ENV_VAR`].
    /// Unparseable input yields an unbounded budget.
    pub fn parse(value: &str) -> Self {
        let value = value.trim().to_ascii_lowercase();
        if value.is_empty() || value == "off" || value == "none" || value == "unbounded" {
            return Self::unbounded();
        }
        let digits_end = value
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(value.len());
        let (digits, suffix) = value.split_at(digits_end);
        let multiplier: u64 = match suffix.trim() {
            "" | "b" => 1,
            "k" | "kb" | "kib" => 1 << 10,
            "m" | "mb" | "mib" => 1 << 20,
            "g" | "gb" | "gib" => 1 << 30,
            _ => return Self::unbounded(),
        };
        match digits.parse::<u64>() {
            Ok(n) => Self::bytes(n.saturating_mul(multiplier)),
            Err(_) => Self::unbounded(),
        }
    }

    /// The cap in bytes, or `None` when unbounded.
    pub fn limit_bytes(self) -> Option<u64> {
        self.limit
    }

    /// Whether a cap is in force.
    pub fn is_bounded(self) -> bool {
        self.limit.is_some()
    }

    /// `true` when keeping `resident` bytes plus `additional` more would
    /// exceed the cap. Always `false` for an unbounded budget.
    pub fn would_exceed(self, resident: u64, additional: u64) -> bool {
        match self.limit {
            Some(limit) => resident.saturating_add(additional) > limit,
            None => false,
        }
    }

    /// A sensible per-stream I/O buffer size under this budget: a bounded
    /// budget split across `streams` concurrent readers/writers, clamped to
    /// `[4 KiB, 1 MiB]`; 64 KiB when unbounded.
    pub fn io_buffer_bytes(self, streams: usize) -> usize {
        match self.limit {
            Some(limit) => {
                let share = limit / streams.max(1) as u64;
                share.clamp(4 << 10, 1 << 20) as usize
            }
            None => 64 << 10,
        }
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.limit {
            Some(limit) => write!(f, "{limit} bytes"),
            None => f.write_str("unbounded"),
        }
    }
}

// Process-wide out-of-core telemetry. Counters are monotonic for the life
// of the process; consumers report snapshots or deltas.
static PEAK_RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);
static SPILLED_CHUNKS: AtomicU64 = AtomicU64::new(0);
static GRID_SEGMENT_LOADS: AtomicU64 = AtomicU64::new(0);
static GRID_FULL_LOADS: AtomicU64 = AtomicU64::new(0);

/// Records an observed resident-bytes high-water mark for the graph
/// pipeline. The process-wide peak is the max over all observations.
pub fn note_resident_bytes(bytes: u64) {
    PEAK_RESIDENT_BYTES.fetch_max(bytes, Ordering::Relaxed);
}

/// Records one sealed chunk spilled to a disk run-file.
pub fn note_spilled_chunks(count: u64) {
    SPILLED_CHUNKS.fetch_add(count, Ordering::Relaxed);
}

/// Records one shard-grid artifact loaded via the bounded segmented path.
pub fn note_grid_segment_load() {
    GRID_SEGMENT_LOADS.fetch_add(1, Ordering::Relaxed);
}

/// Records one shard-grid artifact deserialised wholesale.
pub fn note_grid_full_load() {
    GRID_FULL_LOADS.fetch_add(1, Ordering::Relaxed);
}

/// Peak resident pipeline bytes observed so far in this process.
pub fn peak_resident_bytes() -> u64 {
    PEAK_RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// Total sealed chunks spilled to disk so far in this process.
pub fn spilled_chunk_count() -> u64 {
    SPILLED_CHUNKS.load(Ordering::Relaxed)
}

/// Total segmented (chunked) shard-grid loads so far in this process.
pub fn grid_segment_loads() -> u64 {
    GRID_SEGMENT_LOADS.load(Ordering::Relaxed)
}

/// Total wholesale shard-grid loads so far in this process.
pub fn grid_full_loads() -> u64 {
    GRID_FULL_LOADS.load(Ordering::Relaxed)
}

/// A point-in-time snapshot of the out-of-core telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryTelemetry {
    /// Peak resident pipeline bytes observed.
    pub peak_resident_bytes: u64,
    /// Sealed chunks spilled to disk run-files.
    pub spilled_chunk_count: u64,
    /// Shard grids loaded via the bounded segmented path.
    pub grid_segment_loads: u64,
    /// Shard grids deserialised wholesale.
    pub grid_full_loads: u64,
}

/// Snapshots the process-wide out-of-core telemetry counters.
pub fn memory_telemetry() -> MemoryTelemetry {
    MemoryTelemetry {
        peak_resident_bytes: peak_resident_bytes(),
        spilled_chunk_count: spilled_chunk_count(),
        grid_segment_loads: grid_segment_loads(),
        grid_full_loads: grid_full_loads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_plain_bytes_and_binary_suffixes() {
        assert_eq!(MemoryBudget::parse("4096").limit_bytes(), Some(4096));
        assert_eq!(MemoryBudget::parse("64k").limit_bytes(), Some(64 << 10));
        assert_eq!(MemoryBudget::parse("64KiB").limit_bytes(), Some(64 << 10));
        assert_eq!(MemoryBudget::parse("3m").limit_bytes(), Some(3 << 20));
        assert_eq!(MemoryBudget::parse("3MB").limit_bytes(), Some(3 << 20));
        assert_eq!(MemoryBudget::parse("2g").limit_bytes(), Some(2 << 30));
        assert_eq!(MemoryBudget::parse(" 128 ").limit_bytes(), Some(128));
        assert_eq!(MemoryBudget::parse("0").limit_bytes(), Some(0));
    }

    #[test]
    fn parse_treats_off_and_garbage_as_unbounded() {
        for s in ["", "off", "OFF", "none", "unbounded", "lots", "12q", "-5"] {
            assert!(!MemoryBudget::parse(s).is_bounded(), "{s:?}");
        }
    }

    #[test]
    fn would_exceed_respects_the_cap() {
        let b = MemoryBudget::bytes(100);
        assert!(!b.would_exceed(40, 60));
        assert!(b.would_exceed(41, 60));
        assert!(b.would_exceed(0, 101));
        assert!(MemoryBudget::bytes(0).would_exceed(0, 1));
        assert!(!MemoryBudget::bytes(0).would_exceed(0, 0));
        assert!(!MemoryBudget::unbounded().would_exceed(u64::MAX, u64::MAX));
    }

    #[test]
    fn io_buffer_bytes_is_clamped() {
        assert_eq!(MemoryBudget::unbounded().io_buffer_bytes(3), 64 << 10);
        assert_eq!(MemoryBudget::bytes(0).io_buffer_bytes(4), 4 << 10);
        assert_eq!(MemoryBudget::bytes(1 << 30).io_buffer_bytes(2), 1 << 20);
        assert_eq!(MemoryBudget::bytes(64 << 10).io_buffer_bytes(4), 16 << 10);
        assert_eq!(MemoryBudget::bytes(1 << 20).io_buffer_bytes(0), 1 << 20);
    }

    #[test]
    fn display_names_the_cap() {
        assert_eq!(MemoryBudget::unbounded().to_string(), "unbounded");
        assert_eq!(MemoryBudget::bytes(64).to_string(), "64 bytes");
    }

    #[test]
    fn peak_resident_is_a_running_max() {
        note_resident_bytes(10);
        let peak = peak_resident_bytes();
        note_resident_bytes(peak.saturating_sub(1));
        assert!(peak_resident_bytes() >= peak);
        note_resident_bytes(peak + 5);
        assert!(peak_resident_bytes() >= peak + 5);
    }

    #[test]
    fn telemetry_snapshot_is_coherent() {
        note_spilled_chunks(2);
        note_grid_segment_load();
        note_grid_full_load();
        let t = memory_telemetry();
        assert!(t.spilled_chunk_count >= 2);
        assert!(t.grid_segment_loads >= 1);
        assert!(t.grid_full_loads >= 1);
    }
}
