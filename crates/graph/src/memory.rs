//! Memory budgeting for the out-of-core graph pipeline.
//!
//! A [`MemoryBudget`] caps how many bytes the graph path may keep resident
//! while building edge lists ([`EdgeListBuilder`](crate::EdgeListBuilder)
//! spills sealed chunks to disk run-files beyond the cap) and while loading
//! cached shard grids ([`ArtifactCache`](crate::ArtifactCache) switches from
//! wholesale deserialisation to bounded chunk reads). The budget is a
//! *pipeline* cap: the finished [`EdgeList`](crate::EdgeList) and
//! [`ShardGrid`](crate::ShardGrid) the simulator consumes are still fully
//! materialised — what the budget bounds is the transient working set on top
//! of them (unsorted chunks, merge buffers, whole-file deserialisation
//! copies), which is where the unbudgeted path's peak lives.
//!
//! The process-wide default comes from the [`MEM_BUDGET_ENV_VAR`]
//! environment variable; explicit configuration (session, sweep runner,
//! serve config) overrides it. The out-of-core telemetry counters (peak
//! resident bytes, spilled chunks, segmented vs. full grid loads) that
//! `BENCH_sweep.json` and the serving `/stats` endpoint report live on
//! [`gnnerator_observe::Recorder`] instances; the free functions in this
//! module are thin compatibility views over the process-global recorder
//! ([`Recorder::global`]). Components that want per-scope counts accept a
//! scoped recorder via their `with_recorder` builders instead.

use gnnerator_observe::Recorder;
use std::fmt;

/// Environment variable holding the process-wide default memory budget.
///
/// Accepted values: a byte count with an optional binary suffix
/// (`67108864`, `64m`, `64mib`, `1g`), or `off`/`none`/`unbounded`/empty
/// for no budget. Unparseable values fall back to unbounded rather than
/// aborting the process.
pub const MEM_BUDGET_ENV_VAR: &str = "GNNERATOR_MEM_BUDGET";

/// Environment variable selecting the process-wide default grid residency
/// policy (see [`GridResidency`]).
///
/// Accepted values: `auto` (default — window a grid only when its arena
/// would exceed the memory budget), `resident` (always materialise the
/// arena), `windowed` (always simulate through a bounded shard window).
/// Unparseable values fall back to `auto`.
pub const GRID_RESIDENCY_ENV_VAR: &str = "GNNERATOR_GRID_RESIDENCY";

/// Window capacity used when a windowed grid is requested under an
/// *unbounded* memory budget (there is no cap to derive the window from).
const DEFAULT_WINDOW_BYTES: u64 = 64 << 20;

/// How a finished [`ShardGrid`](crate::ShardGrid) keeps its edge arena
/// resident.
///
/// * [`GridResidency::Resident`] — the whole sorted arena lives in memory
///   (the historical behaviour).
/// * [`GridResidency::Windowed`] — the grid is backed by the segmented
///   artifact file and shard extents are `pread` into a budget-sized LRU
///   window on demand; cold segments are evicted as the serpentine walk
///   moves past them.
/// * [`GridResidency::Auto`] — windowed exactly when the arena's bytes
///   would exceed the [`MemoryBudget`]; resident otherwise. This is the
///   default, so setting `GNNERATOR_MEM_BUDGET` below a graph's arena size
///   is all it takes to simulate that graph from disk.
///
/// Every residency mode produces bit-identical simulation results; the
/// modes trade memory for (re-)read bandwidth only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GridResidency {
    /// Window only when the arena would exceed the memory budget.
    #[default]
    Auto,
    /// Always keep the whole edge arena in memory.
    Resident,
    /// Always walk the arena through a bounded shard window.
    Windowed,
}

impl GridResidency {
    /// Reads the process-wide default from [`GRID_RESIDENCY_ENV_VAR`].
    pub fn from_env() -> Self {
        match std::env::var(GRID_RESIDENCY_ENV_VAR) {
            Ok(value) => Self::parse(&value),
            Err(_) => Self::Auto,
        }
    }

    /// Parses a residency string as documented on
    /// [`GRID_RESIDENCY_ENV_VAR`]. Unparseable input yields `Auto`.
    pub fn parse(value: &str) -> Self {
        match value.trim().to_ascii_lowercase().as_str() {
            "resident" | "full" => Self::Resident,
            "windowed" | "window" => Self::Windowed,
            _ => Self::Auto,
        }
    }

    /// Whether a grid whose arena occupies `arena_bytes` should be windowed
    /// under `budget`.
    pub fn wants_window(self, budget: MemoryBudget, arena_bytes: u64) -> bool {
        match self {
            Self::Resident => false,
            Self::Windowed => true,
            Self::Auto => budget.would_exceed(0, arena_bytes),
        }
    }

    /// The shard-window capacity to use under `budget`: the budget's cap
    /// when bounded, a fixed default otherwise (a forced-`Windowed` grid
    /// under an unbounded budget still needs *some* capacity).
    pub fn window_bytes(budget: MemoryBudget) -> u64 {
        budget.limit_bytes().unwrap_or(DEFAULT_WINDOW_BYTES)
    }
}

impl fmt::Display for GridResidency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Auto => f.write_str("auto"),
            Self::Resident => f.write_str("resident"),
            Self::Windowed => f.write_str("windowed"),
        }
    }
}

/// A cap on the transient bytes the graph pipeline may keep resident.
///
/// # Examples
///
/// ```
/// use gnnerator_graph::MemoryBudget;
///
/// let unbounded = MemoryBudget::unbounded();
/// assert!(!unbounded.is_bounded());
///
/// let tight = MemoryBudget::bytes(1 << 20);
/// assert_eq!(tight.limit_bytes(), Some(1 << 20));
/// assert!(tight.is_bounded());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemoryBudget {
    limit: Option<u64>,
}

impl MemoryBudget {
    /// No cap: the pipeline keeps everything in memory (the historical
    /// behaviour). This is the default when [`MEM_BUDGET_ENV_VAR`] is unset.
    pub fn unbounded() -> Self {
        MemoryBudget { limit: None }
    }

    /// Caps resident pipeline bytes at `limit`. A budget of `0` forces the
    /// maximally out-of-core path: every sealed chunk spills and every grid
    /// load streams.
    pub fn bytes(limit: u64) -> Self {
        MemoryBudget { limit: Some(limit) }
    }

    /// Reads the process-wide default from [`MEM_BUDGET_ENV_VAR`].
    pub fn from_env() -> Self {
        match std::env::var(MEM_BUDGET_ENV_VAR) {
            Ok(value) => Self::parse(&value),
            Err(_) => Self::unbounded(),
        }
    }

    /// Parses a budget string as documented on [`MEM_BUDGET_ENV_VAR`].
    /// Unparseable input yields an unbounded budget.
    pub fn parse(value: &str) -> Self {
        let value = value.trim().to_ascii_lowercase();
        if value.is_empty() || value == "off" || value == "none" || value == "unbounded" {
            return Self::unbounded();
        }
        let digits_end = value
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(value.len());
        let (digits, suffix) = value.split_at(digits_end);
        let multiplier: u64 = match suffix.trim() {
            "" | "b" => 1,
            "k" | "kb" | "kib" => 1 << 10,
            "m" | "mb" | "mib" => 1 << 20,
            "g" | "gb" | "gib" => 1 << 30,
            _ => return Self::unbounded(),
        };
        match digits.parse::<u64>() {
            Ok(n) => Self::bytes(n.saturating_mul(multiplier)),
            Err(_) => Self::unbounded(),
        }
    }

    /// The cap in bytes, or `None` when unbounded.
    pub fn limit_bytes(self) -> Option<u64> {
        self.limit
    }

    /// Whether a cap is in force.
    pub fn is_bounded(self) -> bool {
        self.limit.is_some()
    }

    /// `true` when keeping `resident` bytes plus `additional` more would
    /// exceed the cap. Always `false` for an unbounded budget.
    pub fn would_exceed(self, resident: u64, additional: u64) -> bool {
        match self.limit {
            Some(limit) => resident.saturating_add(additional) > limit,
            None => false,
        }
    }

    /// A sensible per-stream I/O buffer size under this budget: a bounded
    /// budget split across `streams` concurrent readers/writers, clamped to
    /// `[4 KiB, 1 MiB]`; 64 KiB when unbounded.
    pub fn io_buffer_bytes(self, streams: usize) -> usize {
        match self.limit {
            Some(limit) => {
                let share = limit / streams.max(1) as u64;
                share.clamp(4 << 10, 1 << 20) as usize
            }
            None => 64 << 10,
        }
    }
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.limit {
            Some(limit) => write!(f, "{limit} bytes"),
            None => f.write_str("unbounded"),
        }
    }
}

// Process-wide out-of-core telemetry: thin compatibility views over the
// global `gnnerator_observe::Recorder`. Counters are monotonic for the
// life of the process; consumers report snapshots or deltas
// (`gnnerator_observe::MemoryStats::delta_since`) rather than resetting.

/// Records an observed resident-bytes high-water mark for the graph
/// pipeline. The process-wide peak is the max over all observations.
pub fn note_resident_bytes(bytes: u64) {
    Recorder::global().note_resident_bytes(bytes);
}

/// Records one sealed chunk spilled to a disk run-file.
pub fn note_spilled_chunks(count: u64) {
    Recorder::global().note_spilled_chunks(count);
}

/// Records one shard-grid artifact loaded via the bounded segmented path.
pub fn note_grid_segment_load() {
    Recorder::global().note_grid_segment_load();
}

/// Records one shard-grid artifact deserialised wholesale.
pub fn note_grid_full_load() {
    Recorder::global().note_grid_full_load();
}

/// Records one shard extent served from an already-resident window segment.
pub fn note_window_hit() {
    Recorder::global().note_window_hit();
}

/// Records one shard extent that had to be faulted in from disk.
pub fn note_window_miss() {
    Recorder::global().note_window_miss();
}

/// Records one segment evicted from a shard window to stay under capacity.
pub fn note_window_eviction() {
    Recorder::global().note_window_eviction();
}

/// Records `bytes` read from disk to satisfy a window miss.
pub fn note_window_faulted_bytes(bytes: u64) {
    Recorder::global().note_window_faulted_bytes(bytes);
}

/// Adds `bytes` to the live gauge of window-cached bytes and returns the new
/// total, which also feeds the resident-bytes peak.
pub fn window_resident_add(bytes: u64) -> u64 {
    Recorder::global().window_resident_add(bytes)
}

/// Subtracts `bytes` from the live gauge of window-cached bytes (eviction or
/// window drop).
pub fn window_resident_sub(bytes: u64) {
    Recorder::global().window_resident_sub(bytes);
}

/// Peak resident pipeline bytes observed so far in this process.
pub fn peak_resident_bytes() -> u64 {
    Recorder::global().memory().peak_resident_bytes.get()
}

/// Total sealed chunks spilled to disk so far in this process.
pub fn spilled_chunk_count() -> u64 {
    Recorder::global().memory().spilled_chunks.get()
}

/// Total segmented (chunked) shard-grid loads so far in this process.
pub fn grid_segment_loads() -> u64 {
    Recorder::global().memory().grid_segment_loads.get()
}

/// Total wholesale shard-grid loads so far in this process.
pub fn grid_full_loads() -> u64 {
    Recorder::global().memory().grid_full_loads.get()
}

/// Total shard extents served from resident window segments so far.
pub fn window_hits() -> u64 {
    Recorder::global().memory().window_hits.get()
}

/// Total shard extents faulted in from disk so far.
pub fn window_misses() -> u64 {
    Recorder::global().memory().window_misses.get()
}

/// Total window segments evicted so far.
pub fn window_evictions() -> u64 {
    Recorder::global().memory().window_evictions.get()
}

/// Total bytes faulted in to satisfy window misses so far.
pub fn window_faulted_bytes() -> u64 {
    Recorder::global().memory().window_faulted_bytes.get()
}

/// Bytes currently cached across all live shard windows. Returns to its
/// prior value once every windowed grid has been dropped.
pub fn window_resident_bytes() -> u64 {
    Recorder::global().memory().window_resident_bytes.get()
}

/// A point-in-time snapshot of the out-of-core telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryTelemetry {
    /// Peak resident pipeline bytes observed.
    pub peak_resident_bytes: u64,
    /// Sealed chunks spilled to disk run-files.
    pub spilled_chunk_count: u64,
    /// Shard grids loaded via the bounded segmented path.
    pub grid_segment_loads: u64,
    /// Shard grids deserialised wholesale.
    pub grid_full_loads: u64,
    /// Shard extents served from resident window segments.
    pub window_hits: u64,
    /// Shard extents faulted in from disk.
    pub window_misses: u64,
    /// Window segments evicted to stay under capacity.
    pub window_evictions: u64,
    /// Bytes read from disk to satisfy window misses.
    pub window_faulted_bytes: u64,
}

/// Snapshots the process-wide out-of-core telemetry counters.
pub fn memory_telemetry() -> MemoryTelemetry {
    MemoryTelemetry::from_stats(&Recorder::global().memory_stats())
}

impl MemoryTelemetry {
    /// The compatibility view of a recorder snapshot (drops the live
    /// window-resident gauge, which [`window_resident_bytes`] reports).
    pub fn from_stats(stats: &gnnerator_observe::MemoryStats) -> Self {
        MemoryTelemetry {
            peak_resident_bytes: stats.peak_resident_bytes,
            spilled_chunk_count: stats.spilled_chunks,
            grid_segment_loads: stats.grid_segment_loads,
            grid_full_loads: stats.grid_full_loads,
            window_hits: stats.window_hits,
            window_misses: stats.window_misses,
            window_evictions: stats.window_evictions,
            window_faulted_bytes: stats.window_faulted_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_plain_bytes_and_binary_suffixes() {
        assert_eq!(MemoryBudget::parse("4096").limit_bytes(), Some(4096));
        assert_eq!(MemoryBudget::parse("64k").limit_bytes(), Some(64 << 10));
        assert_eq!(MemoryBudget::parse("64KiB").limit_bytes(), Some(64 << 10));
        assert_eq!(MemoryBudget::parse("3m").limit_bytes(), Some(3 << 20));
        assert_eq!(MemoryBudget::parse("3MB").limit_bytes(), Some(3 << 20));
        assert_eq!(MemoryBudget::parse("2g").limit_bytes(), Some(2 << 30));
        assert_eq!(MemoryBudget::parse(" 128 ").limit_bytes(), Some(128));
        assert_eq!(MemoryBudget::parse("0").limit_bytes(), Some(0));
    }

    #[test]
    fn parse_treats_off_and_garbage_as_unbounded() {
        for s in ["", "off", "OFF", "none", "unbounded", "lots", "12q", "-5"] {
            assert!(!MemoryBudget::parse(s).is_bounded(), "{s:?}");
        }
    }

    #[test]
    fn would_exceed_respects_the_cap() {
        let b = MemoryBudget::bytes(100);
        assert!(!b.would_exceed(40, 60));
        assert!(b.would_exceed(41, 60));
        assert!(b.would_exceed(0, 101));
        assert!(MemoryBudget::bytes(0).would_exceed(0, 1));
        assert!(!MemoryBudget::bytes(0).would_exceed(0, 0));
        assert!(!MemoryBudget::unbounded().would_exceed(u64::MAX, u64::MAX));
    }

    #[test]
    fn io_buffer_bytes_is_clamped() {
        assert_eq!(MemoryBudget::unbounded().io_buffer_bytes(3), 64 << 10);
        assert_eq!(MemoryBudget::bytes(0).io_buffer_bytes(4), 4 << 10);
        assert_eq!(MemoryBudget::bytes(1 << 30).io_buffer_bytes(2), 1 << 20);
        assert_eq!(MemoryBudget::bytes(64 << 10).io_buffer_bytes(4), 16 << 10);
        assert_eq!(MemoryBudget::bytes(1 << 20).io_buffer_bytes(0), 1 << 20);
    }

    #[test]
    fn display_names_the_cap() {
        assert_eq!(MemoryBudget::unbounded().to_string(), "unbounded");
        assert_eq!(MemoryBudget::bytes(64).to_string(), "64 bytes");
    }

    #[test]
    fn peak_resident_is_a_running_max() {
        note_resident_bytes(10);
        let peak = peak_resident_bytes();
        note_resident_bytes(peak.saturating_sub(1));
        assert!(peak_resident_bytes() >= peak);
        note_resident_bytes(peak + 5);
        assert!(peak_resident_bytes() >= peak + 5);
    }

    #[test]
    fn residency_parse_accepts_the_documented_spellings() {
        assert_eq!(GridResidency::parse("resident"), GridResidency::Resident);
        assert_eq!(GridResidency::parse(" FULL "), GridResidency::Resident);
        assert_eq!(GridResidency::parse("windowed"), GridResidency::Windowed);
        assert_eq!(GridResidency::parse("Window"), GridResidency::Windowed);
        for s in ["", "auto", "garbage", "12"] {
            assert_eq!(GridResidency::parse(s), GridResidency::Auto, "{s:?}");
        }
    }

    #[test]
    fn auto_residency_windows_only_past_the_budget() {
        let tight = MemoryBudget::bytes(100);
        assert!(!GridResidency::Auto.wants_window(tight, 100));
        assert!(GridResidency::Auto.wants_window(tight, 101));
        assert!(!GridResidency::Auto.wants_window(MemoryBudget::unbounded(), u64::MAX));
        assert!(GridResidency::Windowed.wants_window(MemoryBudget::unbounded(), 1));
        assert!(!GridResidency::Resident.wants_window(tight, u64::MAX));
    }

    #[test]
    fn window_bytes_follows_the_budget_cap() {
        assert_eq!(GridResidency::window_bytes(MemoryBudget::bytes(4096)), 4096);
        assert_eq!(
            GridResidency::window_bytes(MemoryBudget::unbounded()),
            DEFAULT_WINDOW_BYTES
        );
    }

    #[test]
    fn window_gauge_add_and_sub_round_trip() {
        let before = window_resident_bytes();
        let now = window_resident_add(128);
        assert!(now >= 128);
        assert!(peak_resident_bytes() >= now);
        window_resident_sub(128);
        // Other tests may touch the gauge concurrently; it must at least not
        // retain our 128 bytes.
        assert!(window_resident_bytes() <= before + 128);
    }

    #[test]
    fn telemetry_snapshot_is_coherent() {
        note_spilled_chunks(2);
        note_grid_segment_load();
        note_grid_full_load();
        let t = memory_telemetry();
        assert!(t.spilled_chunk_count >= 2);
        assert!(t.grid_segment_loads >= 1);
        assert!(t.grid_full_loads >= 1);
    }
}
