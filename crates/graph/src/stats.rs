use crate::CsrGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a graph's structure.
///
/// The reports produced by the simulator and benchmark harness print these
/// numbers so results can be interpreted next to the dataset description
/// (Table II in the paper).
///
/// # Examples
///
/// ```
/// use gnnerator_graph::{CsrGraph, GraphStats};
///
/// # fn main() -> Result<(), gnnerator_graph::GraphError> {
/// let g = CsrGraph::from_pairs(4, &[(0, 1), (2, 1), (3, 1), (1, 0)])?;
/// let stats = GraphStats::compute(&g);
/// assert_eq!(stats.num_nodes, 4);
/// assert_eq!(stats.max_in_degree, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Mean in-degree.
    pub average_in_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Median in-degree.
    pub median_in_degree: usize,
    /// 99th-percentile in-degree.
    pub p99_in_degree: usize,
    /// Number of nodes with no incoming edges.
    pub isolated_destinations: usize,
    /// Degree skew: max degree divided by mean degree (1.0 for regular graphs,
    /// much larger for power-law graphs).
    pub degree_skew: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let mut degrees: Vec<usize> = (0..n).map(|v| graph.in_degree(v as u32)).collect();
        degrees.sort_unstable();
        let num_edges = graph.num_edges();
        let average = if n == 0 {
            0.0
        } else {
            num_edges as f64 / n as f64
        };
        let max = degrees.last().copied().unwrap_or(0);
        let median = percentile(&degrees, 0.5);
        let p99 = percentile(&degrees, 0.99);
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let skew = if average > 0.0 {
            max as f64 / average
        } else {
            0.0
        };
        Self {
            num_nodes: n,
            num_edges,
            average_in_degree: average,
            max_in_degree: max,
            median_in_degree: median,
            p99_in_degree: p99,
            isolated_destinations: isolated,
            degree_skew: skew,
        }
    }
}

/// Returns the `q`-quantile of a sorted slice (nearest-rank method).
fn percentile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, avg deg {:.2}, max deg {}, p99 deg {}, skew {:.1}",
            self.num_nodes,
            self.num_edges,
            self.average_in_degree,
            self.max_in_degree,
            self.p99_in_degree,
            self.degree_skew
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_star_graph() {
        // Every node points at node 0.
        let pairs: Vec<(u32, u32)> = (1..10u32).map(|v| (v, 0)).collect();
        let g = CsrGraph::from_pairs(10, &pairs).unwrap();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.num_nodes, 10);
        assert_eq!(stats.num_edges, 9);
        assert_eq!(stats.max_in_degree, 9);
        assert_eq!(stats.isolated_destinations, 9);
        assert!(stats.degree_skew > 5.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = CsrGraph::from_pairs(0, &[]).unwrap();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.num_nodes, 0);
        assert_eq!(stats.average_in_degree, 0.0);
        assert_eq!(stats.max_in_degree, 0);
        assert_eq!(stats.degree_skew, 0.0);
    }

    #[test]
    fn stats_of_ring_graph_are_regular() {
        let pairs: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let g = CsrGraph::from_pairs(8, &pairs).unwrap();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.max_in_degree, 1);
        assert_eq!(stats.median_in_degree, 1);
        assert!((stats.degree_skew - 1.0).abs() < 1e-9);
        assert_eq!(stats.isolated_destinations, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&sorted, 0.5), 5);
        assert_eq!(percentile(&sorted, 0.99), 10);
        assert_eq!(percentile(&sorted, 0.1), 1);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn rmat_graphs_are_more_skewed_than_erdos_renyi() {
        let er = CsrGraph::from_edge_list(&generators::erdos_renyi(400, 0.02, 1).unwrap());
        let pl = CsrGraph::from_edge_list(&generators::rmat(400, 3200, 1).unwrap());
        let er_stats = GraphStats::compute(&er);
        let pl_stats = GraphStats::compute(&pl);
        assert!(
            pl_stats.degree_skew > er_stats.degree_skew,
            "rmat skew {} should exceed ER skew {}",
            pl_stats.degree_skew,
            er_stats.degree_skew
        );
    }

    #[test]
    fn display_contains_key_numbers() {
        let g = CsrGraph::from_pairs(3, &[(0, 1), (2, 1)]).unwrap();
        let s = GraphStats::compute(&g).to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("2 edges"));
    }
}
