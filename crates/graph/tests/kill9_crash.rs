//! SIGKILL crash-safety for artifact writes: a writer killed mid-
//! `store_grid` must never leave a torn artifact visible to a fresh
//! [`ArtifactCache`].
//!
//! The write discipline under test is temp-file + atomic rename: payload
//! bytes stream into `<artifact>.tmp.<pid>.<nonce>` and only a fully
//! written, checksummed file is renamed over the final path. A `kill -9` at
//! any instant therefore leaves either the previous complete artifact, no
//! artifact, or an orphaned temp file the next cache open sweeps — never a
//! half-written file under the artifact's name.

use gnnerator_graph::{generators, ArtifactCache, EdgeList, GraphError, ShardGrid};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const NODES_PER_SHARD: usize = 64;
const KILL_ROUNDS: usize = 5;

fn victim_edges() -> EdgeList {
    generators::rmat(2_000, 120_000, 17).unwrap()
}

fn victim_key() -> String {
    ArtifactCache::grid_key("kill9-victim", NODES_PER_SHARD, false)
}

/// Helper body for the crash test: loops `store_grid` forever until the
/// parent SIGKILLs this process. Guarded by an environment variable so a
/// plain `cargo test` run never enters the loop; the parent invokes it as
/// `<this binary> kill9_child_writes_forever --exact --ignored`.
#[test]
#[ignore = "helper: spawned (and SIGKILLed) by kill9_mid_write_leaves_no_torn_artifact"]
fn kill9_child_writes_forever() {
    let Ok(dir) = std::env::var("GNNERATOR_KILL9_DIR") else {
        return;
    };
    let cache = ArtifactCache::new(dir);
    let grid = ShardGrid::build(&victim_edges(), NODES_PER_SHARD).unwrap();
    let key = victim_key();
    loop {
        cache.store_grid(&key, &grid).unwrap();
    }
}

#[test]
fn kill9_mid_write_leaves_no_torn_artifact() {
    let dir: PathBuf = std::env::temp_dir().join(format!("gnnerator-kill9-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let reference = ShardGrid::build(&victim_edges(), NODES_PER_SHARD).unwrap();
    let exe = std::env::current_exe().unwrap();

    for round in 0..KILL_ROUNDS {
        let mut child = Command::new(&exe)
            .args(["kill9_child_writes_forever", "--exact", "--ignored"])
            .env("GNNERATOR_KILL9_DIR", &dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();

        // Wait for write activity (a temp file or the finished artifact),
        // then stagger the kill a little differently each round so it lands
        // at different points of the write.
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline && !writes_visible(&dir) {
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(writes_visible(&dir), "child never started writing");
        std::thread::sleep(Duration::from_micros(137 * round as u64));
        child.kill().unwrap(); // SIGKILL on Unix: no destructors, no flush
        child.wait().unwrap();

        // A fresh cache over the crashed state must see either no artifact
        // yet or the complete, checksum-valid grid — never an error, never
        // a quarantine.
        let cache = ArtifactCache::new(&dir);
        match cache.load_grid(&victim_key()) {
            Ok(None) => {}
            Ok(Some(grid)) => assert_eq!(grid, reference, "round {round}"),
            Err(GraphError::CacheArtifact { .. }) => {
                panic!("round {round}: torn artifact became visible")
            }
            Err(other) => panic!("round {round}: {other}"),
        }
        assert_eq!(cache.corrupt_artifacts(), 0, "round {round}");
        let corrupt: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
            .collect();
        assert!(corrupt.is_empty(), "round {round}: {corrupt:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Whether the child has visibly started writing: any `*.tmp.*` file or the
/// finished artifact exists under `dir`.
fn writes_visible(dir: &PathBuf) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.filter_map(|e| e.ok()).any(|e| {
        let name = e.file_name();
        let name = name.to_string_lossy();
        name.contains(".tmp.") || name.starts_with("grid-")
    })
}
