//! Shard-window residency accounting: dropping a windowed grid returns
//! every byte it held to the process-wide gauge.
//!
//! This lives in its own integration binary (one `#[test]`, one process) so
//! the exact-equality assertions on the global gauge cannot race other
//! windowed tests.

use gnnerator_graph::{generators, memory, ArtifactCache, ShardGrid, TraversalOrder};

#[test]
fn dropping_windowed_grids_returns_the_gauge_to_baseline() {
    assert_eq!(
        memory::window_resident_bytes(),
        0,
        "fresh process starts with an empty gauge"
    );

    let dir = std::env::temp_dir().join(format!("gnnerator-window-leak-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = ArtifactCache::new(&dir);
    let edges = generators::rmat(400, 3_000, 11).unwrap();
    let resident = ShardGrid::build(&edges, 32).unwrap();
    let key = ArtifactCache::grid_key("leak", 32, false);
    cache.store_grid(&key, &resident).unwrap();

    // Two independent windows resident at once, both fully drained.
    let a = cache.load_grid_windowed(&key, 1 << 30).unwrap().unwrap();
    let b = cache.load_grid_windowed(&key, 1 << 30).unwrap().unwrap();
    for grid in [&a, &b] {
        for _ in grid.occupied_traversal(TraversalOrder::DestinationStationary) {}
    }
    let a_bytes = a.window().unwrap().resident_bytes();
    let b_bytes = b.window().unwrap().resident_bytes();
    assert!(a_bytes > 0 && b_bytes > 0, "drained windows hold extents");
    assert_eq!(memory::window_resident_bytes(), a_bytes + b_bytes);

    // Clones share the window: dropping a clone releases nothing.
    let a_clone = a.clone();
    drop(a_clone);
    assert_eq!(memory::window_resident_bytes(), a_bytes + b_bytes);

    // Dropping the last owner of each grid returns its bytes exactly.
    drop(a);
    assert_eq!(memory::window_resident_bytes(), b_bytes);
    drop(b);
    assert_eq!(
        memory::window_resident_bytes(),
        0,
        "no leaked window state after the last grid drops"
    );
    std::fs::remove_dir_all(&dir).ok();
}
