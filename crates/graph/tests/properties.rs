//! Property-based tests for the graph substrate.
//!
//! These check the invariants the accelerator model relies on: sharding is a
//! partition of the edge set, CSR conversion preserves edges, and the
//! synthetic generators respect their advertised statistics.

use gnnerator_graph::{
    generators, ArtifactCache, CsrGraph, Edge, EdgeList, EdgeListBuilder, MemoryBudget, ShardCoord,
    ShardGrid, TraversalOrder,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A naive dense reference sharder: one `Vec<Edge>` bucket per grid cell,
/// the way the pre-sparse `ShardGrid` stored shards. The property tests
/// check the sparse arena/index representation against this.
struct DenseReference {
    grid_dim: usize,
    /// Row-major `grid_dim x grid_dim` buckets, each sorted by `(src, dst)`.
    buckets: Vec<Vec<Edge>>,
}

impl DenseReference {
    fn build(edges: &EdgeList, nps: usize) -> Self {
        let grid_dim = edges.num_nodes().div_ceil(nps);
        let mut buckets: Vec<Vec<Edge>> = vec![Vec::new(); grid_dim * grid_dim];
        for e in edges.iter() {
            buckets[(e.src as usize / nps) * grid_dim + e.dst as usize / nps].push(*e);
        }
        for bucket in &mut buckets {
            bucket.sort_unstable();
        }
        Self { grid_dim, buckets }
    }

    fn bucket(&self, coord: ShardCoord) -> &[Edge] {
        &self.buckets[coord.src_block * self.grid_dim + coord.dst_block]
    }

    fn unique_sources(&self, coord: ShardCoord) -> usize {
        let set: HashSet<_> = self.bucket(coord).iter().map(|e| e.src).collect();
        set.len()
    }

    fn unique_destinations(&self, coord: ShardCoord) -> usize {
        let set: HashSet<_> = self.bucket(coord).iter().map(|e| e.dst).collect();
        set.len()
    }

    /// Serpentine coordinates the way the dense implementation enumerated
    /// them: outer loop over columns (dst-stationary) or rows
    /// (src-stationary), inner direction alternating.
    fn serpentine(&self, order: TraversalOrder) -> Vec<ShardCoord> {
        let s = self.grid_dim;
        let mut coords = Vec::with_capacity(s * s);
        for outer in 0..s {
            let inner: Vec<usize> = if outer % 2 == 0 {
                (0..s).collect()
            } else {
                (0..s).rev().collect()
            };
            for i in inner {
                coords.push(match order {
                    TraversalOrder::DestinationStationary => ShardCoord::new(i, outer),
                    TraversalOrder::SourceStationary => ShardCoord::new(outer, i),
                });
            }
        }
        coords
    }
}

/// Strategy for a small random edge list.
fn edge_list() -> impl Strategy<Value = EdgeList> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |pairs| EdgeList::from_pairs(n, &pairs).expect("endpoints in range"))
    })
}

proptest! {
    #[test]
    fn sharding_partitions_the_edge_set(edges in edge_list(), nps in 1usize..10) {
        let grid = ShardGrid::build(&edges, nps);
        prop_assume!(edges.num_nodes() > 0);
        let grid = grid.unwrap();
        // Total edge count is preserved.
        prop_assert_eq!(grid.total_edges(), edges.num_edges());
        // Every edge appears in exactly the shard its endpoints dictate.
        let mut from_shards: Vec<Edge> = Vec::new();
        for shard in grid.iter() {
            for e in shard.edges() {
                prop_assert_eq!(e.src as usize / nps, shard.coord().src_block);
                prop_assert_eq!(e.dst as usize / nps, shard.coord().dst_block);
                from_shards.push(*e);
            }
        }
        let mut original: Vec<Edge> = edges.iter().copied().collect();
        original.sort_unstable();
        from_shards.sort_unstable();
        prop_assert_eq!(original, from_shards);
    }

    #[test]
    fn shard_capacity_bound_holds(edges in edge_list(), nps in 1usize..10) {
        // The paper's "at most n² edges per shard" bound assumes a simple
        // graph (no duplicate edges), so deduplicate first.
        let mut edges = edges;
        edges.dedup();
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        prop_assert!(grid.max_shard_edges() <= nps * nps);
    }

    #[test]
    fn traversals_cover_the_grid(edges in edge_list(), nps in 1usize..10) {
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let s = grid.grid_dim();
        for order in [TraversalOrder::SourceStationary, TraversalOrder::DestinationStationary] {
            let coords: HashSet<_> = grid.traversal(order).collect();
            prop_assert_eq!(coords.len(), s * s);
        }
    }

    #[test]
    fn src_stationary_changes_src_block_rarely(edges in edge_list(), nps in 1usize..10) {
        // In an S-pattern row-major walk the source block changes exactly
        // S - 1 times over the full traversal.
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let coords: Vec<_> = grid.traversal(TraversalOrder::SourceStationary).collect();
        let changes = coords
            .windows(2)
            .filter(|w| w[0].src_block != w[1].src_block)
            .count();
        prop_assert_eq!(changes, grid.grid_dim() - 1);
    }

    #[test]
    fn sparse_grid_matches_the_dense_reference(edges in edge_list(), nps in 1usize..10) {
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let reference = DenseReference::build(&edges, nps);
        prop_assert_eq!(grid.grid_dim(), reference.grid_dim);

        // Per-cell agreement: edges, metadata and the `shard()` lookup all
        // match the naive buckets — occupied or not.
        let mut occupied = 0usize;
        for src in 0..grid.grid_dim() {
            for dst in 0..grid.grid_dim() {
                let coord = ShardCoord::new(src, dst);
                let view = grid.shard(coord);
                let expected = reference.bucket(coord);
                prop_assert_eq!(view.edges(), expected, "{}", coord);
                prop_assert_eq!(view.coord(), coord);
                prop_assert_eq!(
                    view.unique_source_count(),
                    reference.unique_sources(coord),
                    "{}", coord
                );
                prop_assert_eq!(
                    view.unique_destination_count(),
                    reference.unique_destinations(coord),
                    "{}", coord
                );
                if let Some(meta) = view.meta() {
                    occupied += 1;
                    prop_assert_eq!(meta.num_edges(), expected.len());
                    prop_assert_eq!(grid.edges_of(meta), expected);
                } else {
                    prop_assert!(expected.is_empty());
                }
            }
        }
        prop_assert_eq!(grid.occupied_shards(), occupied);
        let cells = grid.grid_dim() * grid.grid_dim();
        prop_assert!((grid.occupancy() - occupied as f64 / cells as f64).abs() < 1e-12);
    }

    #[test]
    fn traversals_match_the_dense_reference(edges in edge_list(), nps in 1usize..10) {
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let reference = DenseReference::build(&edges, nps);
        for order in [TraversalOrder::SourceStationary, TraversalOrder::DestinationStationary] {
            // The full serpentine walk enumerates exactly the dense order.
            let dense: Vec<ShardCoord> = reference.serpentine(order);
            let sparse: Vec<ShardCoord> = grid.traversal(order).collect();
            prop_assert_eq!(&sparse, &dense, "{}", order);
            // The occupied walk is its non-empty subsequence, edges intact.
            let expected: Vec<ShardCoord> = dense
                .into_iter()
                .filter(|&c| !reference.bucket(c).is_empty())
                .collect();
            let occupied: Vec<ShardCoord> =
                grid.occupied_traversal(order).map(|s| s.coord()).collect();
            prop_assert_eq!(&occupied, &expected, "{}", order);
            for shard in grid.occupied_traversal(order) {
                prop_assert_eq!(shard.edges(), reference.bucket(shard.coord()));
            }
        }
        // Row/column index walks agree with the reference too.
        for src in 0..grid.grid_dim() {
            for meta in grid.row_metas(src) {
                prop_assert_eq!(meta.coord().src_block, src);
                prop_assert_eq!(meta.num_edges(), reference.bucket(meta.coord()).len());
            }
        }
        for dst in 0..grid.grid_dim() {
            for meta in grid.column_metas(dst) {
                prop_assert_eq!(meta.coord().dst_block, dst);
                prop_assert_eq!(meta.num_edges(), reference.bucket(meta.coord()).len());
            }
        }
    }

    #[test]
    fn csr_preserves_edges(edges in edge_list()) {
        prop_assume!(edges.num_nodes() > 0);
        let csr = CsrGraph::from_edge_list(&edges);
        prop_assert_eq!(csr.num_edges(), edges.num_edges());
        // In-degree sums to edge count.
        let total: usize = (0..csr.num_nodes() as u32).map(|v| csr.in_degree(v)).sum();
        prop_assert_eq!(total, edges.num_edges());
        // Every original edge is present in the CSR neighbour lists.
        for e in edges.iter() {
            prop_assert!(csr.neighbors(e.dst).contains(&e.src));
        }
    }

    #[test]
    fn symmetrize_is_idempotent(edges in edge_list()) {
        let mut once = edges.clone();
        once.symmetrize();
        let mut twice = once.clone();
        twice.symmetrize();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn symmetrized_graph_has_matching_in_and_out_degrees(edges in edge_list()) {
        let mut sym = edges;
        sym.symmetrize();
        prop_assert_eq!(sym.in_degrees(), sym.out_degrees());
    }

    #[test]
    fn rmat_exact_always_hits_target(n in 32usize..200, seed in 0u64..50) {
        let target = (n * 4).min(n * (n - 1));
        let g = generators::rmat_exact(n, target, seed).unwrap();
        prop_assert_eq!(g.num_edges(), target);
        for e in g.iter() {
            prop_assert!((e.src as usize) < n && (e.dst as usize) < n);
            prop_assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn erdos_renyi_respects_node_bound(n in 2usize..60, seed in 0u64..20) {
        let g = generators::erdos_renyi(n, 0.1, seed).unwrap();
        for e in g.iter() {
            prop_assert!((e.src as usize) < n);
            prop_assert!((e.dst as usize) < n);
            prop_assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn block_nodes_partition_the_node_space(edges in edge_list(), nps in 1usize..10) {
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let mut covered = 0usize;
        for b in 0..grid.grid_dim() {
            let r = grid.block_nodes(b);
            covered += (r.end - r.start) as usize;
            prop_assert!(grid.block_len(b) <= nps);
        }
        prop_assert_eq!(covered, edges.num_nodes());
    }

    #[test]
    fn chunked_builder_is_bit_identical_to_the_in_memory_path(
        edges in edge_list(),
        capacity in 1usize..64,
    ) {
        // Any chunk capacity (forcing anywhere from one to hundreds of
        // chunk merges) must reproduce collect → sort → dedup exactly.
        let mut builder = EdgeListBuilder::with_chunk_capacity(edges.num_nodes(), capacity);
        for e in edges.iter() {
            builder.push(*e).unwrap();
        }
        let built = builder.finish();
        let mut reference: Vec<Edge> = edges.iter().copied().collect();
        reference.sort_unstable();
        reference.dedup();
        prop_assert_eq!(built.as_slice(), reference.as_slice());
        prop_assert!(built.is_sorted());
    }

    #[test]
    fn spilled_builder_is_bit_identical_at_budget_boundaries(
        edges in edge_list(),
        capacity in 1usize..32,
    ) {
        // The out-of-core merge must reproduce the in-memory path exactly at
        // every budget regime: spill-everything, budgets straddling the
        // chunk-size edge (one chunk resident / one byte short of it), an
        // exact fit for the whole input, and unbounded.
        let edge_bytes = std::mem::size_of::<Edge>() as u64;
        let chunk_bytes = capacity as u64 * edge_bytes;
        let total_bytes = edges.iter().count() as u64 * edge_bytes;
        let budgets = [
            MemoryBudget::bytes(0),
            MemoryBudget::bytes(chunk_bytes.saturating_sub(1)),
            MemoryBudget::bytes(chunk_bytes),
            MemoryBudget::bytes(total_bytes),
            MemoryBudget::unbounded(),
        ];
        let mut reference: Vec<Edge> = edges.iter().copied().collect();
        reference.sort_unstable();
        reference.dedup();
        let dir = unique_cache_dir();
        for budget in budgets {
            let mut builder = EdgeListBuilder::with_chunk_capacity(edges.num_nodes(), capacity)
                .with_memory_budget(budget)
                .with_spill_dir(&dir);
            for e in edges.iter() {
                builder.push(*e).unwrap();
            }
            let built = builder.try_finish().unwrap();
            prop_assert_eq!(built.as_slice(), reference.as_slice());
            prop_assert!(built.is_sorted());
        }
        // Every spill run file is reclaimed once its merge completes.
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                prop_assert!(
                    !name.to_string_lossy().ends_with(".run"),
                    "leaked spill run file: {:?}",
                    name
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_shard_build_matches_the_in_memory_build(
        edges in edge_list(),
        nps in 1usize..10,
    ) {
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let mut sorted: Vec<Edge> = edges.iter().copied().collect();
        sorted.sort_unstable();
        let streamed =
            ShardGrid::build_streamed(edges.num_nodes(), nps, sorted.into_iter()).unwrap();
        prop_assert_eq!(streamed, grid);
    }

    #[test]
    fn merge_based_canonical_ops_match_the_resort_reference(edges in edge_list()) {
        // dedup → symmetrize → add_self_loops down the sorted fast paths
        // must equal the historical always-resort pipeline.
        let mut fast = edges.clone();
        fast.dedup();
        fast.symmetrize();
        fast.add_self_loops();

        let mut reference: Vec<Edge> = edges
            .iter()
            .copied()
            .filter(|e| e.src != e.dst)
            .collect();
        reference.sort_unstable();
        reference.dedup();
        let reversed: Vec<Edge> = reference.iter().map(|e| e.reversed()).collect();
        reference.extend(reversed);
        reference.sort_unstable();
        reference.dedup();
        reference.extend((0..edges.num_nodes() as u32).map(|v| Edge::new(v, v)));
        reference.sort_unstable();
        reference.dedup();
        prop_assert_eq!(fast.as_slice(), reference.as_slice());
        prop_assert!(fast.is_sorted());
    }

    #[test]
    fn grid_cache_round_trip_is_bit_identical(edges in edge_list(), nps in 1usize..10) {
        prop_assume!(edges.num_nodes() > 0);
        let grid = ShardGrid::build(&edges, nps).unwrap();
        let dir = unique_cache_dir();
        let cache = ArtifactCache::new(&dir);
        let key = ArtifactCache::grid_key("prop-graph", nps, false);
        cache.store_grid(&key, &grid).unwrap();
        let loaded = cache.load_grid(&key).unwrap().expect("stored artifact");
        // A budget small enough to force many arena chunks through the
        // segmented reader must reconstruct the identical grid.
        let budgeted = ArtifactCache::new(&dir).with_memory_budget(MemoryBudget::bytes(64));
        let segmented = budgeted.load_grid(&key).unwrap().expect("stored artifact");
        std::fs::remove_dir_all(&dir).ok();
        // Same arena, same metas, same indexes — full structural equality.
        prop_assert_eq!(&loaded, &grid);
        prop_assert_eq!(&segmented, &grid);
    }
}

/// A fresh scratch directory per proptest case (cases run sequentially but
/// test binaries run in parallel, so include the pid).
fn unique_cache_dir() -> std::path::PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "gnnerator-prop-cache-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ))
}
