//! Windowed-vs-resident bit-identity for the bounded shard window.
//!
//! A grid re-opened through [`ArtifactCache::load_grid_windowed`] must be
//! indistinguishable from the fully-resident build at every window size the
//! LRU can be squeezed to: zero (every fetch uncached), one shard, one
//! serpentine row, the exact arena size, and effectively unbounded. The
//! properties walk the full shard surface — per-cell lookups and both
//! serpentine traversal orders — against the resident reference.

use gnnerator_graph::{
    ArtifactCache, EdgeList, ShardCoord, ShardGrid, TraversalOrder, BYTES_PER_EDGE,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch_dir(label: &str) -> PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gnnerator-shard-window-{}-{label}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Stores `grid` and re-opens it through a `window_bytes`-bounded window.
fn reopened(grid: &ShardGrid, dir: &PathBuf, window_bytes: u64) -> ShardGrid {
    let cache = ArtifactCache::new(dir);
    let key = ArtifactCache::grid_key("window-prop", grid.nodes_per_shard(), false);
    cache.store_grid(&key, grid).unwrap();
    let windowed = cache
        .load_grid_windowed(&key, window_bytes)
        .unwrap()
        .unwrap();
    assert!(windowed.is_windowed());
    windowed
}

/// The window sizes the bit-identity property is squeezed through: zero
/// (nothing cacheable), the largest single shard, the largest serpentine
/// row, the exact arena, and effectively unbounded.
fn window_sizes(grid: &ShardGrid) -> Vec<u64> {
    let shard = grid
        .metas()
        .iter()
        .map(|m| m.num_edges() as u64 * BYTES_PER_EDGE)
        .max()
        .unwrap_or(0);
    let row = (0..grid.grid_dim())
        .map(|src| {
            grid.row_metas(src)
                .iter()
                .map(|m| m.num_edges() as u64 * BYTES_PER_EDGE)
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    let arena = grid.total_edges() as u64 * BYTES_PER_EDGE;
    vec![0, shard, row, arena, 1 << 40]
}

/// Strategy for a small random edge list (mirrors `properties.rs`).
fn edge_list() -> impl Strategy<Value = EdgeList> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |pairs| EdgeList::from_pairs(n, &pairs).expect("endpoints in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn windowed_grids_are_bit_identical_at_every_window_size(
        edges in edge_list(),
        nps in 1usize..10,
    ) {
        prop_assume!(edges.num_nodes() > 0);
        let resident = ShardGrid::build(&edges, nps).unwrap();
        let dir = scratch_dir("identity");
        for window_bytes in window_sizes(&resident) {
            let windowed = reopened(&resident, &dir, window_bytes);
            // Structural equality (walks every occupied shard's edges).
            prop_assert_eq!(&windowed, &resident, "window {}", window_bytes);
            // Every cell — occupied or not — serves identical edges.
            for src in 0..resident.grid_dim() {
                for dst in 0..resident.grid_dim() {
                    let coord = ShardCoord::new(src, dst);
                    prop_assert_eq!(
                        windowed.shard(coord).edges(),
                        resident.shard(coord).edges(),
                        "window {} cell {}", window_bytes, coord
                    );
                }
            }
            // Both serpentine walks (the traversal directions the simulator
            // consumes) stream identical extents in identical order.
            for order in [
                TraversalOrder::SourceStationary,
                TraversalOrder::DestinationStationary,
            ] {
                let walked: Vec<_> = windowed
                    .occupied_traversal(order)
                    .map(|s| (s.coord(), s.edges().to_vec()))
                    .collect();
                let expected: Vec<_> = resident
                    .occupied_traversal(order)
                    .map(|s| (s.coord(), s.edges().to_vec()))
                    .collect();
                prop_assert_eq!(walked, expected, "window {} {}", window_bytes, order);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_stats_account_for_every_fetch(edges in edge_list(), nps in 1usize..10) {
        prop_assume!(edges.num_nodes() > 0);
        let resident = ShardGrid::build(&edges, nps).unwrap();
        prop_assume!(resident.occupied_shards() > 0);
        let dir = scratch_dir("stats");

        // An unbounded window faults each occupied shard exactly once per
        // serpentine pass and serves the second pass entirely from cache.
        let windowed = reopened(&resident, &dir, 1 << 40);
        for _ in windowed.occupied_traversal(TraversalOrder::DestinationStationary) {}
        for _ in windowed.occupied_traversal(TraversalOrder::DestinationStationary) {}
        let stats = windowed.window().unwrap().stats();
        prop_assert_eq!(stats.misses, resident.occupied_shards() as u64);
        prop_assert_eq!(stats.hits, resident.occupied_shards() as u64);
        prop_assert_eq!(stats.evictions, 0);

        // A zero-byte window caches nothing: every fetch is a miss, nothing
        // is ever resident, and the results are still identical.
        let uncached = reopened(&resident, &dir, 0);
        prop_assert_eq!(&uncached, &resident);
        let stats = uncached.window().unwrap().stats();
        prop_assert!(stats.misses >= resident.occupied_shards() as u64);
        prop_assert_eq!(stats.hits, 0);
        prop_assert_eq!(uncached.window().unwrap().resident_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
