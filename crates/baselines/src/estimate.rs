use serde::{Deserialize, Serialize};
use std::fmt;

/// Ratio `baseline_seconds / other_seconds`, guarded against non-positive
/// denominators: a zero or negative `other_seconds` cannot describe a real
/// run, so the comparison degenerates to "infinitely faster" instead of
/// silently dividing into a negative or NaN speedup.
///
/// This is the one guard policy every speedup in the workspace shares —
/// [`BaselineEstimate::speedup_of`], `BackendEvaluation::speedup_of` and the
/// sweep engine's speedup columns all route through it.
pub fn guarded_speedup(baseline_seconds: f64, other_seconds: f64) -> f64 {
    if other_seconds > 0.0 {
        baseline_seconds / other_seconds
    } else {
        f64::INFINITY
    }
}

/// A baseline platform's estimated execution time for one model on one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineEstimate {
    /// Platform name (e.g. `rtx-2080-ti`, `hygcn`).
    pub platform: String,
    /// Model name.
    pub model_name: String,
    /// Estimated end-to-end execution time in seconds.
    pub seconds: f64,
    /// Per-layer breakdown in seconds.
    pub layer_seconds: Vec<f64>,
}

impl BaselineEstimate {
    /// Estimated execution time in milliseconds.
    pub fn milliseconds(&self) -> f64 {
        self.seconds * 1e3
    }

    /// Speedup of a run that took `other_seconds` relative to this baseline
    /// (i.e. `self.seconds / other_seconds`).
    ///
    /// A zero or negative `other_seconds` cannot describe a real run, so the
    /// comparison returns [`f64::INFINITY`] instead of silently dividing
    /// into a negative or undefined speedup.
    pub fn speedup_of(&self, other_seconds: f64) -> f64 {
        guarded_speedup(self.seconds, other_seconds)
    }
}

impl fmt::Display for BaselineEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} running {}: {:.3} ms",
            self.platform,
            self.model_name,
            self.milliseconds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate() -> BaselineEstimate {
        BaselineEstimate {
            platform: "gpu".into(),
            model_name: "gcn".into(),
            seconds: 2.0e-3,
            layer_seconds: vec![1.5e-3, 0.5e-3],
        }
    }

    #[test]
    fn milliseconds_conversion() {
        assert!((estimate().milliseconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_of_faster_run() {
        // A run that takes 0.5 ms is 4x faster than this 2 ms baseline.
        assert!((estimate().speedup_of(0.5e-3) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_of_zero_seconds_is_infinite_not_nan() {
        assert_eq!(estimate().speedup_of(0.0), f64::INFINITY);
        // Even a degenerate zero-second baseline must not produce 0/0 = NaN.
        let mut zero_baseline = estimate();
        zero_baseline.seconds = 0.0;
        assert_eq!(zero_baseline.speedup_of(0.0), f64::INFINITY);
    }

    #[test]
    fn speedup_of_negative_seconds_is_infinite_not_negative() {
        assert_eq!(estimate().speedup_of(-1.0), f64::INFINITY);
        assert_eq!(estimate().speedup_of(-0.0), f64::INFINITY);
    }

    #[test]
    fn speedup_of_positive_seconds_still_divides() {
        assert!((estimate().speedup_of(2.0e-3) - 1.0).abs() < 1e-12);
        assert!(estimate().speedup_of(f64::MIN_POSITIVE).is_finite());
    }

    #[test]
    fn display_mentions_platform_and_model() {
        let s = estimate().to_string();
        assert!(s.contains("gpu"));
        assert!(s.contains("gcn"));
    }
}
