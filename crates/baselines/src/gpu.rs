use crate::{BaselineEstimate, FEATURE_BYTES};
use gnnerator_gnn::{Aggregator, GnnModel, Stage};
use serde::{Deserialize, Serialize};

/// Roofline-style performance model of a GPU running GNN layers through a
/// framework such as DGL + PyTorch.
///
/// GNN inference on a GPU is famously far from peak: the dense layers are
/// small, skinny GEMMs; the aggregation is a sparse gather whose achieved
/// bandwidth is a fraction of the pin bandwidth; max-pooling aggregators
/// (GraphSAGE-Pool) force the framework to materialise a per-edge message
/// tensor before reducing it; and every stage pays a kernel-launch overhead.
/// Each of those effects is a parameter of [`GpuConfig`] so the model can be
/// recalibrated without touching code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Platform name used in reports.
    pub name: String,
    /// Peak arithmetic throughput in TFLOP/s (13 for the RTX 2080 Ti).
    pub peak_tflops: f64,
    /// Peak memory bandwidth in GB/s (616 for the RTX 2080 Ti).
    pub memory_bandwidth_gb_s: f64,
    /// Fraction of peak FLOP/s achieved on the small, skinny GEMMs of GNN
    /// feature extraction.
    pub dense_efficiency: f64,
    /// Fraction of peak bandwidth achieved by dense streaming kernels.
    pub dense_bandwidth_efficiency: f64,
    /// Fraction of peak bandwidth achieved by the sparse gather/scatter of
    /// the aggregation stage.
    pub gather_bandwidth_efficiency: f64,
    /// Traffic multiplier for aggregators that materialise per-edge messages
    /// (DGL's max/pool reducers write the gathered messages out and read them
    /// back for the segmented reduction).
    pub edge_materialisation_factor: f64,
    /// Fixed overhead per launched kernel, in seconds.
    pub kernel_launch_seconds: f64,
}

impl GpuConfig {
    /// The RTX 2080 Ti configuration of Table IV with efficiency factors
    /// calibrated so the relative accelerator-versus-GPU gap matches the
    /// magnitudes reported in the paper's Figure 3 (see `EXPERIMENTS.md`).
    pub fn rtx_2080_ti() -> Self {
        Self {
            name: "rtx-2080-ti".to_string(),
            peak_tflops: 13.0,
            memory_bandwidth_gb_s: 616.0,
            dense_efficiency: 0.08,
            dense_bandwidth_efficiency: 0.60,
            gather_bandwidth_efficiency: 0.22,
            edge_materialisation_factor: 6.0,
            kernel_launch_seconds: 15e-6,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::rtx_2080_ti()
    }
}

/// The GPU baseline model.
///
/// # Examples
///
/// ```
/// use gnnerator_baselines::{GpuConfig, GpuModel};
/// use gnnerator_gnn::NetworkKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gpu = GpuModel::new(GpuConfig::rtx_2080_ti());
/// let gcn = NetworkKind::Gcn.build_paper_config(1433, 7)?;
/// let pool = NetworkKind::GraphsagePool.build_paper_config(1433, 7)?;
/// // Max-pooling aggregation is far more expensive on the GPU.
/// assert!(gpu.estimate(&pool, 2708, 10556).seconds > gpu.estimate(&gcn, 2708, 10556).seconds);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    config: GpuConfig,
}

impl GpuModel {
    /// Creates a model from an explicit configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self { config }
    }

    /// The RTX 2080 Ti baseline used throughout the paper's evaluation.
    pub fn rtx_2080_ti() -> Self {
        Self::new(GpuConfig::rtx_2080_ti())
    }

    /// The model's configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Estimates the execution time of `model` on a graph with `num_nodes`
    /// nodes and `num_edges` edges.
    pub fn estimate(
        &self,
        model: &GnnModel,
        num_nodes: usize,
        num_edges: usize,
    ) -> BaselineEstimate {
        let mut layer_seconds = Vec::with_capacity(model.num_layers());
        for layer in model.layers() {
            let mut layer_time = 0.0;
            let mut current_dim = layer.in_dim();
            for stage in layer.stages() {
                layer_time += self.stage_seconds(stage, num_nodes, num_edges, layer.in_dim());
                current_dim = stage.out_dim().max(1);
            }
            let _ = current_dim;
            layer_seconds.push(layer_time);
        }
        BaselineEstimate {
            platform: self.config.name.clone(),
            model_name: model.name().to_string(),
            seconds: layer_seconds.iter().sum(),
            layer_seconds,
        }
    }

    fn stage_seconds(
        &self,
        stage: &Stage,
        num_nodes: usize,
        num_edges: usize,
        layer_in_dim: usize,
    ) -> f64 {
        let peak_flops = self.config.peak_tflops * 1e12;
        let bw = self.config.memory_bandwidth_gb_s * 1e9;
        match stage {
            Stage::Dense {
                in_dim,
                out_dim,
                concat_self,
                ..
            } => {
                let k = *in_dim as f64;
                let n = *out_dim as f64;
                let m = num_nodes as f64;
                let flops = 2.0 * m * k * n;
                let bytes = FEATURE_BYTES * (m * k + k * n + m * n);
                let _ = concat_self;
                let _ = layer_in_dim;
                let compute = flops / (peak_flops * self.config.dense_efficiency);
                let memory = bytes / (bw * self.config.dense_bandwidth_efficiency);
                compute.max(memory) + self.config.kernel_launch_seconds
            }
            Stage::Aggregate {
                dim,
                aggregator,
                include_self,
                ..
            } => {
                let d = *dim as f64;
                let e = if *include_self {
                    (num_edges + num_nodes) as f64
                } else {
                    num_edges as f64
                };
                let n = num_nodes as f64;
                // Gather traffic: one source-feature read per edge plus the
                // destination write.
                let mut bytes = FEATURE_BYTES * (e * d + n * d);
                if *aggregator == Aggregator::Max {
                    // Per-edge message materialisation (write + re-read).
                    bytes *= self.config.edge_materialisation_factor;
                }
                let flops = e * d;
                let compute = flops / (peak_flops * self.config.dense_efficiency);
                let memory = bytes / (bw * self.config.gather_bandwidth_efficiency);
                compute.max(memory) + self.config.kernel_launch_seconds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnerator_gnn::NetworkKind;

    fn cora_estimate(kind: NetworkKind) -> BaselineEstimate {
        let model = kind.build_paper_config(1433, 7).unwrap();
        GpuModel::rtx_2080_ti().estimate(&model, 2708, 10556)
    }

    #[test]
    fn estimates_are_positive_and_layered() {
        for kind in NetworkKind::ALL {
            let est = cora_estimate(kind);
            assert!(est.seconds > 0.0, "{kind}");
            assert_eq!(est.layer_seconds.len(), 2);
            assert!((est.layer_seconds.iter().sum::<f64>() - est.seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn cora_gcn_runtime_is_of_millisecond_order() {
        // DGL GCN inference on Cora on a 2080 Ti is around a millisecond; the
        // calibrated model should land in that ballpark (0.1 ms - 10 ms).
        let est = cora_estimate(NetworkKind::Gcn);
        assert!(
            est.seconds > 1e-4 && est.seconds < 1e-2,
            "estimated {} s",
            est.seconds
        );
    }

    #[test]
    fn max_pool_aggregation_is_much_slower_than_mean() {
        let gcn = cora_estimate(NetworkKind::Gcn);
        let pool = cora_estimate(NetworkKind::GraphsagePool);
        assert!(pool.seconds > 2.0 * gcn.seconds);
    }

    #[test]
    fn first_layer_dominates_for_high_dimensional_inputs() {
        let est = cora_estimate(NetworkKind::Gcn);
        assert!(est.layer_seconds[0] > est.layer_seconds[1]);
    }

    #[test]
    fn larger_graphs_take_longer() {
        let model = NetworkKind::Gcn.build_paper_config(500, 3).unwrap();
        let gpu = GpuModel::rtx_2080_ti();
        let small = gpu.estimate(&model, 2708, 10556);
        let large = gpu.estimate(&model, 19717, 88648);
        assert!(large.seconds > small.seconds);
    }

    #[test]
    fn doubling_bandwidth_helps_memory_bound_workloads() {
        let model = NetworkKind::Gcn.build_paper_config(3703, 6).unwrap();
        let mut fast_cfg = GpuConfig::rtx_2080_ti();
        fast_cfg.memory_bandwidth_gb_s *= 4.0;
        let base = GpuModel::rtx_2080_ti().estimate(&model, 3327, 9104);
        let fast = GpuModel::new(fast_cfg).estimate(&model, 3327, 9104);
        assert!(fast.seconds < base.seconds);
    }

    #[test]
    fn config_accessors_and_default() {
        let gpu = GpuModel::rtx_2080_ti();
        assert_eq!(gpu.config().peak_tflops, 13.0);
        assert_eq!(GpuConfig::default(), GpuConfig::rtx_2080_ti());
    }
}
