//! The platform abstraction every compute platform plugs into.
//!
//! A [`Backend`] evaluates one scenario point — a GNN model on a graph of a
//! given shape — and returns a [`BackendEvaluation`]: end-to-end seconds, a
//! per-layer breakdown and whatever cycle-level telemetry the platform can
//! provide. The sweep engine in the core crate dispatches every
//! `ScenarioSpec` through this trait, so accelerator simulations and
//! analytical baseline estimates flow through one code path and land in one
//! result table.
//!
//! This crate provides the two reference baselines of Table IV as backends:
//!
//! * [`GpuRooflineBackend`] — the RTX 2080 Ti roofline model,
//! * [`HygcnBackend`] — the HyGCN analytical model (with the paper's
//!   dataset-specific window-sparsity factors via
//!   [`HygcnBackend::for_dataset`]).
//!
//! The cycle-simulated `GnneratorBackend` lives in the core crate (it wraps a
//! compiled `SimSession`) and implements the same trait. Adding a fourth
//! platform means implementing [`Backend`] and giving the sweep path a way to
//! construct it.

use crate::{BaselineEstimate, GpuConfig, GpuModel, HygcnConfig, HygcnModel};
use gnnerator_gnn::GnnModel;
use std::error::Error;

/// Boxed error returned by backend evaluations.
///
/// Analytical baselines are infallible, but cycle-simulated backends
/// propagate compilation/simulation failures; the alias keeps the trait free
/// of any one platform's concrete error type.
pub type BackendError = Box<dyn Error + Send + Sync + 'static>;

/// The unified result of evaluating one scenario point on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendEvaluation {
    /// Platform label stamped into reports (e.g. `gnnerator`, `rtx-2080-ti`,
    /// `hygcn`).
    pub platform: String,
    /// Estimated or simulated end-to-end execution time in seconds.
    pub seconds: f64,
    /// Per-layer breakdown in seconds.
    pub layer_seconds: Vec<f64>,
    /// Total cycles when the platform is cycle-simulated (`None` for
    /// analytical models that work directly in seconds).
    pub total_cycles: Option<u64>,
    /// Modelled off-chip DRAM traffic in bytes, when the platform tracks it.
    pub dram_bytes: Option<u64>,
}

impl BackendEvaluation {
    /// Execution time in milliseconds.
    pub fn milliseconds(&self) -> f64 {
        self.seconds * 1e3
    }

    /// Speedup of a run that took `other_seconds` relative to this
    /// evaluation, guarding against non-positive denominators.
    pub fn speedup_of(&self, other_seconds: f64) -> f64 {
        crate::estimate::guarded_speedup(self.seconds, other_seconds)
    }
}

impl From<BaselineEstimate> for BackendEvaluation {
    fn from(estimate: BaselineEstimate) -> Self {
        Self {
            platform: estimate.platform,
            seconds: estimate.seconds,
            layer_seconds: estimate.layer_seconds,
            total_cycles: None,
            dram_bytes: None,
        }
    }
}

/// A compute platform that can evaluate one (model, graph) scenario point.
///
/// Implementations must be thread-safe: the sweep engine evaluates points in
/// parallel and shares backend instances across worker threads.
pub trait Backend: Send + Sync {
    /// Stable platform label for reports and result tables.
    fn platform(&self) -> &str;

    /// Evaluates `model` on a graph with `num_nodes` nodes and `num_edges`
    /// edges.
    ///
    /// # Errors
    ///
    /// Propagates platform-specific evaluation failures (analytical models
    /// never fail; simulated backends can).
    fn evaluate(
        &self,
        model: &GnnModel,
        num_nodes: usize,
        num_edges: usize,
    ) -> Result<BackendEvaluation, BackendError>;
}

/// The RTX 2080 Ti roofline baseline as a [`Backend`].
///
/// # Examples
///
/// ```
/// use gnnerator_baselines::{Backend, GpuRooflineBackend};
/// use gnnerator_gnn::NetworkKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
/// let backend = GpuRooflineBackend::rtx_2080_ti();
/// let model = NetworkKind::Gcn.build_paper_config(1433, 7)?;
/// let eval = backend.evaluate(&model, 2708, 10556)?;
/// assert!(eval.seconds > 0.0);
/// assert!(eval.total_cycles.is_none(), "roofline models are not cycle-simulated");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRooflineBackend {
    model: GpuModel,
}

impl GpuRooflineBackend {
    /// Creates a backend from an explicit GPU configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self {
            model: GpuModel::new(config),
        }
    }

    /// The RTX 2080 Ti configuration used throughout the paper.
    pub fn rtx_2080_ti() -> Self {
        Self {
            model: GpuModel::rtx_2080_ti(),
        }
    }

    /// The underlying roofline model.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }
}

impl Backend for GpuRooflineBackend {
    fn platform(&self) -> &str {
        &self.model.config().name
    }

    fn evaluate(
        &self,
        model: &GnnModel,
        num_nodes: usize,
        num_edges: usize,
    ) -> Result<BackendEvaluation, BackendError> {
        Ok(self.model.estimate(model, num_nodes, num_edges).into())
    }
}

/// The HyGCN analytical baseline as a [`Backend`].
///
/// # Examples
///
/// ```
/// use gnnerator_baselines::{Backend, HygcnBackend};
/// use gnnerator_gnn::NetworkKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
/// // Citeseer gets the paper's 3x window-sparsity factor automatically.
/// let backend = HygcnBackend::for_dataset("citeseer");
/// let model = NetworkKind::Gcn.build_paper_config(3703, 6)?;
/// let eval = backend.evaluate(&model, 3327, 9104)?;
/// assert!(eval.seconds > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HygcnBackend {
    model: HygcnModel,
}

impl HygcnBackend {
    /// Creates a backend from an explicit HyGCN configuration.
    pub fn new(config: HygcnConfig) -> Self {
        Self {
            model: HygcnModel::new(config),
        }
    }

    /// The Table IV configuration without sparsity elimination.
    pub fn paper_default() -> Self {
        Self {
            model: HygcnModel::paper_default(),
        }
    }

    /// The Table IV configuration with the paper's quoted window-sparsity
    /// speedup for `dataset` applied
    /// (see [`HygcnConfig::paper_sparsity_for`]).
    pub fn for_dataset(dataset: &str) -> Self {
        Self::new(
            HygcnConfig::paper_default()
                .with_sparsity_speedup(HygcnConfig::paper_sparsity_for(dataset)),
        )
    }

    /// The underlying analytical model.
    pub fn model(&self) -> &HygcnModel {
        &self.model
    }
}

impl Backend for HygcnBackend {
    fn platform(&self) -> &str {
        &self.model.config().name
    }

    fn evaluate(
        &self,
        model: &GnnModel,
        num_nodes: usize,
        num_edges: usize,
    ) -> Result<BackendEvaluation, BackendError> {
        Ok(self.model.estimate(model, num_nodes, num_edges).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnerator_gnn::NetworkKind;

    fn gcn() -> GnnModel {
        NetworkKind::Gcn.build_paper_config(1433, 7).unwrap()
    }

    #[test]
    fn gpu_backend_matches_the_raw_model() {
        let backend = GpuRooflineBackend::rtx_2080_ti();
        let eval = backend.evaluate(&gcn(), 2708, 10556).unwrap();
        let raw = GpuModel::rtx_2080_ti().estimate(&gcn(), 2708, 10556);
        assert_eq!(eval.seconds, raw.seconds);
        assert_eq!(eval.layer_seconds, raw.layer_seconds);
        assert_eq!(backend.platform(), "rtx-2080-ti");
        assert!(eval.total_cycles.is_none());
        assert!(eval.dram_bytes.is_none());
    }

    #[test]
    fn hygcn_backend_applies_dataset_sparsity() {
        let plain = HygcnBackend::paper_default()
            .evaluate(&gcn(), 2708, 10556)
            .unwrap();
        let cora = HygcnBackend::for_dataset("cora")
            .evaluate(&gcn(), 2708, 10556)
            .unwrap();
        // Cora gets a 1.1x factor, so the optimised estimate is faster.
        assert!(cora.seconds < plain.seconds);
        assert_eq!(
            HygcnBackend::for_dataset("unknown")
                .model()
                .config()
                .sparsity_speedup,
            1.0
        );
    }

    #[test]
    fn evaluations_convert_from_estimates() {
        let estimate = BaselineEstimate {
            platform: "p".into(),
            model_name: "m".into(),
            seconds: 2.0e-3,
            layer_seconds: vec![1.0e-3, 1.0e-3],
        };
        let eval = BackendEvaluation::from(estimate);
        assert_eq!(eval.platform, "p");
        assert!((eval.milliseconds() - 2.0).abs() < 1e-9);
        assert!((eval.speedup_of(1.0e-3) - 2.0).abs() < 1e-9);
        assert_eq!(eval.speedup_of(0.0), f64::INFINITY);
    }

    #[test]
    fn backends_are_object_safe_and_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Box<dyn Backend>>();
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(GpuRooflineBackend::rtx_2080_ti()),
            Box::new(HygcnBackend::paper_default()),
        ];
        for backend in &backends {
            let eval = backend.evaluate(&gcn(), 1000, 5000).unwrap();
            assert!(eval.seconds > 0.0, "{}", backend.platform());
            assert_eq!(eval.layer_seconds.len(), 2);
        }
    }
}
