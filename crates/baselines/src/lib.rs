//! Baseline performance models for the GNNerator reproduction.
//!
//! The paper compares GNNerator against two baselines (Table IV):
//!
//! * an **NVIDIA RTX 2080 Ti** running the benchmarks through DGL + PyTorch
//!   (13 TFLOP/s peak, 616 GB/s), and
//! * **HyGCN**, a prior hybrid-architecture GNN accelerator (1 TFLOP
//!   aggregation engine + 8 TFLOP combination engine, 24 MiB on-chip,
//!   256 GB/s) whose published results the paper compares against.
//!
//! Neither platform is available to a hermetic Rust build, so this crate
//! provides calibrated analytical models of both:
//!
//! * [`GpuModel`] — a roofline model with per-kernel efficiency factors that
//!   capture why GNN layers run far below a GPU's peak (tiny GEMMs, sparse
//!   gathers, per-edge message materialisation for max-pooling aggregators),
//! * [`HygcnModel`] — an analytical model of a conventional-dataflow hybrid
//!   accelerator that processes one node's full feature at a time, including
//!   its window-based sparsity-elimination optimisation.
//!
//! Both models plug into the sweep path through the [`Backend`] trait — the
//! platform abstraction every compute platform (including the simulated
//! accelerator in the core crate) implements — as [`GpuRooflineBackend`] and
//! [`HygcnBackend`]. Sweeps enumerate platform × dataset × configuration
//! grids through that one interface rather than calling the models directly.
//!
//! The absolute times are estimates; the benchmark harness only relies on the
//! *relative* ordering and rough magnitudes, which is the level at which the
//! paper's figures are reproduced (see `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! ```
//! use gnnerator_baselines::GpuModel;
//! use gnnerator_gnn::NetworkKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = NetworkKind::Gcn.build_paper_config(1433, 7)?;
//! let gpu = GpuModel::rtx_2080_ti();
//! let estimate = gpu.estimate(&model, 2708, 10556);
//! assert!(estimate.seconds > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod backend;
mod estimate;
mod gpu;
mod hygcn;

pub use backend::{Backend, BackendError, BackendEvaluation, GpuRooflineBackend, HygcnBackend};
pub use estimate::{guarded_speedup, BaselineEstimate};
pub use gpu::{GpuConfig, GpuModel};
pub use hygcn::{HygcnConfig, HygcnModel};

/// Bytes per feature element, shared with the sharder's fetch-cost model so
/// the baselines and the accelerator price traffic identically.
pub(crate) const FEATURE_BYTES: f64 = gnnerator_graph::BYTES_PER_FEATURE_ELEMENT as f64;

/// Bytes per packed edge record, shared with the sharder's fetch-cost model.
pub(crate) const EDGE_BYTES: f64 = gnnerator_graph::BYTES_PER_EDGE as f64;
